"""Small statistics helpers used by the monitoring system and the
benchmark harness.  Kept dependency-light (no scipy) because they run in
hot monitoring loops."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Iterable[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


@dataclass(frozen=True)
class Summary:
    count: int
    mean: float
    stdev: float
    min: float
    max: float
    p50: float
    p95: float


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(values),
        mean=mean(values),
        stdev=stdev(values),
        min=min(values),
        max=max(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
    )


def ewma(previous: float | None, sample: float, alpha: float = 0.3) -> float:
    """Exponentially weighted moving average step."""
    if previous is None:
        return sample
    return alpha * sample + (1.0 - alpha) * previous
