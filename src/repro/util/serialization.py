"""Serialization with byte accounting.

JavaSymphony rides on Java object serialization; every remote interaction
pays a cost proportional to the serialized size.  We use :mod:`pickle` and
measure real sizes, with one escape hatch: :class:`Payload` lets benchmark
workloads declare *nominal* sizes and flop counts so that a simulated
N=2000 matrix multiplication does not have to allocate 32 MB per message.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

#: Fixed per-message envelope overhead in bytes (headers, method name,
#: RMI bookkeeping).  Java RMI-era envelopes were a few hundred bytes.
ENVELOPE_BYTES = 256


@dataclass(frozen=True)
class Payload:
    """A value annotated with nominal transfer/compute costs.

    ``data`` travels for real (pickled) while ``nbytes``/``flops`` drive the
    simulator's cost model.  When ``nbytes`` is ``None`` the real pickled
    size is used, so a plain ``Payload(data)`` behaves like the raw value.
    """

    data: Any = None
    nbytes: int | None = None
    flops: float = 0.0
    meta: dict = field(default_factory=dict)


def dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def loads(blob: bytes) -> Any:
    return pickle.loads(blob)


def deep_copy_via_pickle(value: Any) -> Any:
    """Round-trip a value through pickle.

    Remote invocations must exhibit copy semantics: mutating an argument on
    the callee must not be visible to the caller.  A pickle round-trip is
    exactly what a real wire transfer would do.
    """
    return loads(dumps(value))


def _payload_nbytes(payload: Payload) -> int:
    if payload.nbytes is not None:
        return int(payload.nbytes)
    return len(dumps(payload.data))


def _contains_payload(value: Any, depth: int = 4) -> bool:
    if isinstance(value, Payload):
        return True
    if depth > 0 and isinstance(value, (tuple, list)):
        return any(_contains_payload(item, depth - 1) for item in value)
    return False


def _wire_size(value: Any, depth: int = 4) -> int:
    if isinstance(value, Payload):
        return _payload_nbytes(value)
    if (
        depth > 0
        and isinstance(value, (tuple, list))
        and _contains_payload(value, depth)
    ):
        return sum(_wire_size(item, depth - 1) for item in value)
    return len(dumps(value))


def sizeof(value: Any) -> int:
    """Wire size in bytes for *value*, honoring nominal Payload sizes.

    Payloads are found through (nested) tuples/lists — invocation messages
    travel as ``(obj_id, method, [params...])`` and a nominal matrix inside
    the params must drive the cost."""
    return _wire_size(value) + ENVELOPE_BYTES


def flops_of(value: Any, depth: int = 4) -> float:
    """Total nominal flops declared by Payloads inside *value* (nested
    tuples/lists included)."""
    if isinstance(value, Payload):
        return float(value.flops)
    if depth > 0 and isinstance(value, (tuple, list)):
        return float(
            sum(flops_of(item, depth - 1) for item in value)
        )
    return 0.0


def unwrap(value: Any) -> Any:
    """Strip Payload wrappers, producing the plain arguments a method sees."""
    if isinstance(value, Payload):
        return value.data
    if isinstance(value, tuple):
        return tuple(unwrap(item) for item in value)
    if isinstance(value, list):
        return [unwrap(item) for item in value]
    return value
