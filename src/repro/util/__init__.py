"""Shared utilities: id generation, serialization with size measurement,
basic statistics, and ASCII table rendering for benchmark harnesses."""

from repro.util.ids import IdGenerator, fresh_id
from repro.util.serialization import (
    Payload,
    deep_copy_via_pickle,
    dumps,
    loads,
    sizeof,
)
from repro.util.stats import mean, stdev, percentile, summarize
from repro.util.tables import render_table

__all__ = [
    "IdGenerator",
    "fresh_id",
    "Payload",
    "deep_copy_via_pickle",
    "dumps",
    "loads",
    "sizeof",
    "mean",
    "stdev",
    "percentile",
    "summarize",
    "render_table",
]
