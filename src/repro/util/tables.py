"""ASCII table rendering for the benchmark harness.

The harness prints the same rows/series the paper reports (Figure 5 in
particular), so the output needs to be stable and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table.  Columns auto-size to content."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(fill: str = "-", joint: str = "+") -> str:
        return joint + joint.join(fill * (w + 2) for w in widths) + joint

    def render_row(values: Sequence[str]) -> str:
        return (
            "|"
            + "|".join(f" {v:>{w}} " for v, w in zip(values, widths))
            + "|"
        )

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line())
    out.append(render_row(list(headers)))
    out.append(line("="))
    for row in cells:
        out.append(render_row(row))
    out.append(line())
    return "\n".join(out)
