"""Deterministic unique-id generation.

The kernel is deterministic under a seed, so ids must not depend on global
mutable state shared across simulations.  Each simulation owns an
:class:`IdGenerator`; the module-level :func:`fresh_id` exists only for
contexts that genuinely do not care about reproducibility (e.g. naming a
throwaway thread).
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Monotonic per-prefix counters producing ids like ``obj-17``."""

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}
        self._lock = threading.Lock()

    def next(self, prefix: str) -> str:
        with self._lock:
            counter = self._counters.setdefault(prefix, itertools.count(1))
            return f"{prefix}-{next(counter)}"

    def next_int(self, prefix: str) -> int:
        with self._lock:
            counter = self._counters.setdefault(prefix, itertools.count(1))
            return next(counter)


_global = IdGenerator()


def fresh_id(prefix: str) -> str:
    """Process-global id; fine for diagnostics, not for simulation state."""
    return _global.next(prefix)
