"""``JSConstraints``: conjunctions of relational constraints over system
parameters (paper Section 4.2).

The paper's canonical example::

    JSConstraints constr = new JSConstraints();
    constr.setConstraints(JSConstants.NODE_NAME, "!=", "milena");
    constr.setConstraints(JSConstants.CPU_SYS_LOAD, "<=", 10);
    constr.setConstraints(JSConstants.IDLE, ">=", 50);
    constr.setConstraints(JSConstants.AVAIL_MEM, ">=", 50);
    constr.setConstraints(JSConstants.SWAP_SPACE_RATIO, ">=", 0.3);

maps one-to-one onto::

    constr = JSConstraints()
    constr.set_constraint(SysParam.NODE_NAME, "!=", "milena")
    ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.constraints.ops import apply_op, normalize_op
from repro.errors import ConstraintError
from repro.sysmon.params import SysParam
from repro.sysmon.sampler import Snapshot


@dataclass(frozen=True)
class Constraint:
    param: SysParam
    op: str
    value: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", normalize_op(self.op))
        if self.param.is_numeric:
            # Validate coercibility eagerly so bad constraints fail at
            # definition time, not deep inside the allocator.
            from repro.constraints.ops import coerce_number

            coerce_number(self.value)

    def holds(self, snapshot: Snapshot) -> bool:
        if self.param not in snapshot:
            raise ConstraintError(
                f"snapshot lacks parameter {self.param.name}"
            )
        return apply_op(
            self.op,
            snapshot[self.param],
            self.value,
            numeric=self.param.is_numeric,
        )

    def __str__(self) -> str:
        return f"{self.param.name} {self.op} {self.value}"


def _resolve_param(param: SysParam | str) -> SysParam:
    if isinstance(param, SysParam):
        return param
    try:
        return SysParam.by_key(param)
    except KeyError as err:
        raise ConstraintError(str(err)) from None


class JSConstraints:
    """An AND-combined set of constraints.

    Mirrors the paper's class of the same name; also accepts an initial
    list of ``(param, op, value)`` triples for brevity.
    """

    def __init__(
        self, triples: list[tuple[SysParam | str, str, Any]] | None = None
    ) -> None:
        self._constraints: list[Constraint] = []
        for param, op, value in triples or []:
            self.set_constraint(param, op, value)

    # Paper-style camelCase alias.
    def setConstraints(
        self, param: SysParam | str, op: str, value: Any
    ) -> "JSConstraints":
        return self.set_constraint(param, op, value)

    def set_constraint(
        self, param: SysParam | str, op: str, value: Any
    ) -> "JSConstraints":
        self._constraints.append(
            Constraint(_resolve_param(param), op, value)
        )
        return self

    def holds(self, snapshot: Snapshot) -> bool:
        """True iff every constraint holds for the snapshot."""
        return all(c.holds(snapshot) for c in self._constraints)

    def failing(self, snapshot: Snapshot) -> list[Constraint]:
        """The subset of constraints the snapshot violates."""
        return [c for c in self._constraints if not c.holds(snapshot)]

    def merged_with(self, other: "JSConstraints | None") -> "JSConstraints":
        merged = JSConstraints()
        merged._constraints = list(self._constraints)
        if other is not None:
            merged._constraints.extend(other._constraints)
        return merged

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __str__(self) -> str:
        return " AND ".join(str(c) for c in self._constraints) or "<empty>"
