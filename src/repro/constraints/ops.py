"""Relational operators for constraints.

A constraint is ``system_parameter  relational_operator  number_or_string``
(paper Section 4.2).  Numeric parameters compare numerically (string
literals like ``"10"`` are coerced); string parameters support equality
and lexicographic ordering.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from repro.errors import ConstraintError

OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: single '=' tolerated as an alias for '=='
ALIASES = {"=": "=="}


def normalize_op(op: str) -> str:
    op = op.strip()
    op = ALIASES.get(op, op)
    if op not in OPS:
        raise ConstraintError(
            f"unknown relational operator {op!r}; expected one of "
            f"{sorted(OPS)}"
        )
    return op


def coerce_number(value: Any) -> float:
    if isinstance(value, bool):
        raise ConstraintError("booleans are not valid constraint values")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise ConstraintError(
                f"numeric parameter compared against non-number {value!r}"
            ) from None
    raise ConstraintError(f"cannot coerce {value!r} to a number")


def apply_op(op: str, left: Any, right: Any, numeric: bool) -> bool:
    fn = OPS[normalize_op(op)]
    if numeric:
        return fn(coerce_number(left), coerce_number(right))
    return fn(str(left), str(right))
