"""Parsing constraints from strings.

The JS-Shell configures default constraints as text; ``parse_constraint``
turns ``"IDLE >= 50"`` into a :class:`Constraint`, and
``parse_constraints`` handles ``;``/newline-separated lists.
"""

from __future__ import annotations

import re

from repro.constraints.constraint import Constraint, JSConstraints
from repro.errors import ConstraintError
from repro.sysmon.params import SysParam

_PATTERN = re.compile(
    r"^\s*(?P<param>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?P<op>==|!=|<=|>=|<|>|=)\s*"
    r"(?P<value>.+?)\s*$"
)


def parse_constraint(text: str) -> Constraint:
    match = _PATTERN.match(text)
    if match is None:
        raise ConstraintError(
            f"cannot parse constraint {text!r}; expected "
            "'PARAM op value' (e.g. 'IDLE >= 50')"
        )
    try:
        param = SysParam.by_key(match.group("param"))
    except KeyError as err:
        raise ConstraintError(str(err)) from None
    raw = match.group("value").strip().strip("'\"")
    value: object = raw
    if param.is_numeric:
        try:
            value = float(raw)
        except ValueError:
            raise ConstraintError(
                f"parameter {param.name} is numeric but value {raw!r} is not"
            ) from None
    return Constraint(param, match.group("op"), value)


def parse_constraints(text: str) -> JSConstraints:
    constraints = JSConstraints()
    for chunk in re.split(r"[;\n]", text):
        chunk = chunk.strip()
        if not chunk or chunk.startswith("#"):
            continue
        parsed = parse_constraint(chunk)
        constraints.set_constraint(parsed.param, parsed.op, parsed.value)
    return constraints
