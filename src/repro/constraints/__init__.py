"""Constraint system over monitored system parameters (Section 4.2)."""

from repro.constraints.constraint import Constraint, JSConstraints
from repro.constraints.ops import OPS, apply_op, coerce_number, normalize_op
from repro.constraints.parser import parse_constraint, parse_constraints

__all__ = [
    "Constraint",
    "JSConstraints",
    "OPS",
    "apply_op",
    "coerce_number",
    "normalize_op",
    "parse_constraint",
    "parse_constraints",
]
