"""Per-host runtime state: the ground truth the monitoring system samples.

A :class:`Machine` combines a static :class:`HostSpec` with a background
:class:`LoadModel` and the dynamic state imposed by PySymphony itself
(active computations, object memory, loaded codebases).  The effective
compute rate available to one PySymphony task is::

    spec.flops × (1 − background_load) ÷ concurrent_js_tasks

which is what a nice-priority JVM thread would get on a time-shared
Solaris box.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NodeFailedError
from repro.simnet.host import HostSpec
from repro.simnet.load import ConstantLoad, LoadModel

#: A machine under 100% external load still makes *some* progress.
MIN_CPU_SHARE = 0.03

#: CPU share during a gray-failure stall: the machine is "up" (not
#: failed) but barely responsive — a swap storm, a GC pause, a wedged
#: NIC driver.  Progress is ~nil but nonzero, so stalled computations
#: resume instead of restarting once the stall heals.
STALL_CPU_SHARE = 0.001


@dataclass
class MachineCounters:
    """Cumulative activity counters (feed the synthetic dynamic params)."""

    invocations_served: int = 0
    objects_created: int = 0
    objects_hosted: int = 0
    migrations_in: int = 0
    migrations_out: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0


@dataclass
class Machine:
    spec: HostSpec
    load_model: LoadModel = field(default_factory=ConstantLoad)
    failed: bool = False
    #: number of PySymphony computations currently executing here
    active_tasks: int = 0
    #: MB held by PySymphony objects resident on this host
    js_mem_mb: float = 0.0
    #: MB held by codebases loaded to this host
    codebase_mem_mb: float = 0.0
    #: gray failure: until this sim time the host is up but ~unresponsive
    stalled_until: float = 0.0
    counters: MachineCounters = field(default_factory=MachineCounters)

    @property
    def name(self) -> str:
        return self.spec.name

    # -- CPU -----------------------------------------------------------------

    def background_load(self, t: float) -> float:
        return self.load_model.load_at(t)

    def cpu_share(self, t: float) -> float:
        """Fraction of the CPU available to PySymphony work at ``t``."""
        if t < self.stalled_until:
            return STALL_CPU_SHARE
        return max(MIN_CPU_SHARE, 1.0 - self.background_load(t))

    def stall(self, until: float) -> None:
        """Gray-fail the host until sim time ``until`` (still "alive")."""
        self.stalled_until = max(self.stalled_until, until)

    def effective_flops(self, t: float, concurrency: int | None = None) -> float:
        """FLOP/s one task gets, given ``concurrency`` JS tasks sharing."""
        if concurrency is None:
            concurrency = max(1, self.active_tasks)
        return self.spec.flops * self.cpu_share(t) / max(1, concurrency)

    def compute_time(
        self, flops: float, t: float, concurrency: int | None = None
    ) -> float:
        """Seconds to execute ``flops`` starting at ``t``."""
        if flops < 0:
            raise ValueError("negative flops")
        if flops == 0:
            return 0.0
        self.check_alive()
        return flops / self.effective_flops(t, concurrency)

    def begin_task(self) -> None:
        self.check_alive()
        self.active_tasks += 1

    def end_task(self) -> None:
        if self.active_tasks <= 0:
            raise RuntimeError(f"{self.name}: end_task without begin_task")
        self.active_tasks -= 1

    # -- memory --------------------------------------------------------------

    def background_mem_mb(self, t: float) -> float:
        """MB consumed by external users + OS at ``t``."""
        base_os = 0.18 * self.spec.total_mem_mb
        external = self.load_model.mem_pressure_at(t) * (
            0.6 * self.spec.total_mem_mb
        )
        return base_os + external

    def avail_mem_mb(self, t: float) -> float:
        used = self.background_mem_mb(t) + self.js_mem_mb + self.codebase_mem_mb
        return max(0.0, self.spec.total_mem_mb - used)

    def swap_ratio(self, t: float) -> float:
        """Used/available swap; grows once physical memory is tight."""
        pressure = 1.0 - self.avail_mem_mb(t) / self.spec.total_mem_mb
        return max(0.0, min(1.0, 1.6 * (pressure - 0.5)))

    # -- failure -------------------------------------------------------------

    def check_alive(self) -> None:
        if self.failed:
            raise NodeFailedError(f"host {self.name} has failed")

    def fail(self) -> None:
        self.failed = True

    def restore(self) -> None:
        self.failed = False

    def restart(self) -> None:
        """Bring a crashed machine back as a blank slate.

        Unlike :meth:`restore` (which pretends the failure never
        happened), a restart loses all runtime state: resident objects,
        loaded codebases, and in-flight tasks are gone.  The agents
        layer reacts through ``world.restart_listeners`` (fresh holder
        tables, NAS re-registration)."""
        self.failed = False
        self.active_tasks = 0
        self.js_mem_mb = 0.0
        self.codebase_mem_mb = 0.0
        self.stalled_until = 0.0
