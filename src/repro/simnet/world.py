"""The simulated world: kernel + machines + network in one handle.

``SimWorld`` is the substrate everything above (transport, agents, the
programming model) runs against.  It also works with a
:class:`repro.kernel.real.RealKernel`, in which case compute charges turn
into (dilated) real sleeps.
"""

from __future__ import annotations

from typing import Iterable

from typing import Callable

from repro.errors import TransportError
from repro.kernel import Kernel, RngStreams
from repro.kernel.virtual import VirtualKernel
from repro.obs import events as ev
from repro.obs.tracer import current_tracer
from repro.simnet.host import HostSpec
from repro.simnet.load import ConstantLoad, LoadModel
from repro.simnet.machine import Machine
from repro.simnet.topology import Segment, Topology


class SimWorld:
    def __init__(
        self,
        kernel: Kernel | None = None,
        topology: Topology | None = None,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel if kernel is not None else VirtualKernel()
        self.topology = topology if topology is not None else Topology()
        self.rng = RngStreams(seed)
        self.machines: dict[str, Machine] = {}
        #: the ambient tracer at construction time; everything built on
        #: this world (transport, agents) reads it from here.
        self.tracer = current_tracer()
        self.kernel.tracer = self.tracer
        #: called with the host name whenever :meth:`fail_host` fires, so
        #: components can shed per-host state (e.g. FIFO ordering floors).
        self.failure_listeners: list[Callable[[str], None]] = []
        #: called with the host name whenever :meth:`restart_host` fires,
        #: so the agents layer can rebuild fresh per-host state (holder
        #: tables, NAS registration, a new public object agent).
        self.restart_listeners: list[Callable[[str], None]] = []

    # -- construction --------------------------------------------------------

    def add_machine(
        self,
        spec: HostSpec,
        segment: str,
        load_model: LoadModel | None = None,
    ) -> Machine:
        if spec.name in self.machines:
            raise TransportError(f"duplicate machine {spec.name!r}")
        machine = Machine(
            spec=spec,
            load_model=load_model if load_model is not None else ConstantLoad(),
        )
        self.machines[spec.name] = machine
        self.topology.attach_host(spec.name, segment)
        return machine

    def add_segment(self, segment: Segment) -> None:
        self.topology.add_segment(segment)

    # -- queries -------------------------------------------------------------

    def machine(self, name: str) -> Machine:
        try:
            return self.machines[name]
        except KeyError:
            raise TransportError(f"unknown machine {name!r}") from None

    def host_names(self) -> list[str]:
        return sorted(self.machines)

    def now(self) -> float:
        return self.kernel.now()

    # -- compute charging ------------------------------------------------------

    #: long computations re-sample load/concurrency every this many seconds
    compute_resample = 5.0

    def compute(self, host: str, flops: float) -> float:
        """Execute ``flops`` of work on ``host``; blocks the calling process
        for the modelled duration and returns it.

        Effective speed (background load and JS-task sharing) is
        re-sampled every :attr:`compute_resample` seconds, so a task that
        starts during a load spike speeds back up when the spike passes —
        a time-shared CPU, not a locked-in rate.
        """
        if flops < 0:
            raise ValueError("negative flops")
        machine = self.machine(host)
        machine.begin_task()
        t0 = self.now()
        try:
            remaining = float(flops)
            while remaining > 0:
                machine.check_alive()
                rate = machine.effective_flops(
                    self.now(), machine.active_tasks
                )
                slice_time = remaining / rate
                if slice_time <= self.compute_resample:
                    self.kernel.sleep(slice_time)
                    break
                self.kernel.sleep(self.compute_resample)
                remaining -= rate * self.compute_resample
        finally:
            machine.end_task()
        elapsed = self.now() - t0
        if self.tracer.enabled:
            self.tracer.emit_span(ev.COMPUTE, ts=t0, host=host,
                                  actor=self.kernel.current_process_name(),
                                  dur=elapsed, flops=flops)
            self.tracer.count(f"compute.flops:{host}", flops, host=host)
        return elapsed

    # -- network -------------------------------------------------------------

    def transfer_delay(self, src: str, dst: str, nbytes: int) -> float:
        """Compute the delay for a message and account for contention.

        The crossed segments' active-transfer counters are incremented now
        and decremented when the transfer completes (scheduled on the
        kernel), so overlapping transfers on shared segments slow each
        other down.
        """
        self.machine(src).check_alive()
        self.machine(dst).check_alive()
        delay = self.topology.transfer_time(src, dst, nbytes)
        segs = self.topology.begin_transfer(src, dst)
        if segs:
            self.kernel.call_at(
                self.now() + delay, self.topology.end_transfer, segs
            )
        src_m, dst_m = self.machine(src), self.machine(dst)
        src_m.counters.bytes_sent += nbytes
        src_m.counters.messages_sent += 1
        dst_m.counters.bytes_received += nbytes
        dst_m.counters.messages_received += 1
        return delay

    # -- failures ------------------------------------------------------------

    def fail_host(self, name: str) -> None:
        self.machine(name).fail()
        if self.tracer.enabled:
            # Force-close the dead machine's open spans (marked, not
            # lost) before listeners start reacting to the failure.
            self.tracer.host_failed(name, self.now())
        for listener in list(self.failure_listeners):
            listener(name)

    def restore_host(self, name: str) -> None:
        self.machine(name).restore()

    def restart_host(self, name: str) -> None:
        """Crash-*restart*: the machine comes back as a blank slate.

        All runtime state is lost (:meth:`Machine.restart`); the tracer
        drops the ``host_failed`` taint so post-restart spans read clean,
        and ``restart_listeners`` rebuild the agents-layer state."""
        self.machine(name).restart()
        if self.tracer.enabled:
            self.tracer.host_restarted(name, self.now())
        for listener in list(self.restart_listeners):
            listener(name)

    def stall_host(self, name: str, duration: float) -> None:
        """Gray-fail ``name`` for ``duration`` sim seconds: still "up"
        (messages flow, NAS sees it) but making ~zero compute progress."""
        if duration < 0:
            raise ValueError("negative stall duration")
        self.machine(name).stall(self.now() + duration)

    def schedule_failure(self, name: str, at: float) -> None:
        self.kernel.call_at(at, self.fail_host, name)

    def schedule_restart(self, name: str, at: float) -> None:
        self.kernel.call_at(at, self.restart_host, name)

    def alive_hosts(self) -> list[str]:
        return [n for n, m in sorted(self.machines.items()) if not m.failed]


def build_lan(
    world: SimWorld,
    fast_hosts: Iterable[HostSpec] = (),
    slow_hosts: Iterable[HostSpec] = (),
    fast_mbits: float = 100.0,
    slow_mbits: float = 10.0,
    load_models: dict[str, LoadModel] | None = None,
) -> SimWorld:
    """Wire the paper's two-segment LAN: a switched fast segment and a
    shared slow segment, bridged."""
    load_models = load_models or {}
    world.add_segment(
        Segment("switch-100", bandwidth_mbits=fast_mbits, shared=False)
    )
    world.add_segment(
        Segment("hub-10", bandwidth_mbits=slow_mbits, shared=True)
    )
    world.topology.connect_segments("switch-100", "hub-10", latency_s=0.0004)
    for spec in fast_hosts:
        world.add_machine(spec, "switch-100", load_models.get(spec.name))
    for spec in slow_hosts:
        world.add_machine(spec, "hub-10", load_models.get(spec.name))
    return world
