"""Simulated physical testbed: hosts, background load, network topology.

This package substitutes for the paper's 13 non-dedicated Sun
workstations (see DESIGN.md, substitution table).
"""

from repro.simnet.host import SUN_MODELS, HostSpec, make_host
from repro.simnet.load import (
    ConstantLoad,
    LoadModel,
    SpikeLoad,
    StochasticLoad,
    TraceLoad,
)
from repro.simnet.machine import Machine, MachineCounters
from repro.simnet.topology import Segment, Topology
from repro.simnet.world import SimWorld, build_lan

__all__ = [
    "SUN_MODELS",
    "HostSpec",
    "make_host",
    "ConstantLoad",
    "LoadModel",
    "SpikeLoad",
    "StochasticLoad",
    "TraceLoad",
    "Machine",
    "MachineCounters",
    "Segment",
    "Topology",
    "SimWorld",
    "build_lan",
]
