"""Background-load models for non-dedicated workstations.

The paper ran Figure 5 twice on identical node sets: during the day (the
owners doing "program development, e-mailing, etc.") and at night ("very
little system load").  These models give each simulated host an external
CPU utilisation as a function of time:

* :class:`ConstantLoad` — fixed utilisation.
* :class:`StochasticLoad` — a mean-reverting AR(1) process sampled on a
  fixed tick; ``day()``/``night()`` provide the two calibrated profiles.
* :class:`TraceLoad` — piecewise-constant playback of a recorded trace.
* :class:`SpikeLoad` — a base model plus a rectangular load spike, used by
  the auto-migration ablation.

Values are utilisation fractions in [0, 1).  All models are deterministic
functions of (time, rng seed) regardless of query order.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np


class LoadModel(abc.ABC):
    @abc.abstractmethod
    def load_at(self, t: float) -> float:
        """External CPU utilisation in [0, 1) at time ``t``."""

    def mem_pressure_at(self, t: float) -> float:
        """Fraction of memory consumed by external users at ``t``.
        Defaults to tracking CPU load at half intensity."""
        return 0.5 * self.load_at(t)


class ConstantLoad(LoadModel):
    def __init__(self, load: float = 0.0) -> None:
        if not 0.0 <= load < 1.0:
            raise ValueError(f"load must be in [0, 1), got {load}")
        self._load = load

    def load_at(self, t: float) -> float:
        return self._load


class StochasticLoad(LoadModel):
    """Mean-reverting AR(1) load, piecewise constant over ``tick`` seconds.

    ``x[k+1] = mean + rho * (x[k] - mean) + sigma * noise``, clipped to
    [floor, ceil].  The sequence is generated lazily but depends only on
    the seed and tick index, never on query order.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean: float = 0.4,
        sigma: float = 0.1,
        rho: float = 0.8,
        tick: float = 10.0,
        floor: float = 0.0,
        ceil: float = 0.97,
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        self._rng = rng
        self.mean = mean
        self.sigma = sigma
        self.rho = rho
        self.tick = tick
        self.floor = floor
        self.ceil = ceil
        self._values: list[float] = [
            float(np.clip(rng.normal(mean, sigma), floor, ceil))
        ]

    @classmethod
    def day(cls, rng: np.random.Generator, **overrides) -> "StochasticLoad":
        """Workstations in active interactive use."""
        params = dict(mean=0.45, sigma=0.18, rho=0.85, tick=10.0)
        params.update(overrides)
        return cls(rng, **params)

    @classmethod
    def night(cls, rng: np.random.Generator, **overrides) -> "StochasticLoad":
        """Nearly idle machines (cron jobs, daemons)."""
        params = dict(mean=0.03, sigma=0.02, rho=0.7, tick=10.0)
        params.update(overrides)
        return cls(rng, **params)

    def _extend_to(self, k: int) -> None:
        while len(self._values) <= k:
            prev = self._values[-1]
            nxt = (
                self.mean
                + self.rho * (prev - self.mean)
                + self.sigma * float(self._rng.normal())
            )
            self._values.append(float(np.clip(nxt, self.floor, self.ceil)))

    def load_at(self, t: float) -> float:
        if t < 0:
            raise ValueError("negative time")
        k = int(math.floor(t / self.tick))
        self._extend_to(k)
        return self._values[k]


class TraceLoad(LoadModel):
    """Piecewise-constant playback: value ``samples[i]`` holds during
    ``[i * interval, (i+1) * interval)``; the last sample holds forever."""

    def __init__(self, samples: Sequence[float], interval: float) -> None:
        if not samples:
            raise ValueError("empty trace")
        if interval <= 0:
            raise ValueError("interval must be positive")
        bad = [s for s in samples if not 0.0 <= s < 1.0]
        if bad:
            raise ValueError(f"trace samples outside [0, 1): {bad[:3]}")
        self._samples = list(samples)
        self._interval = interval

    def load_at(self, t: float) -> float:
        if t < 0:
            raise ValueError("negative time")
        idx = min(int(t / self._interval), len(self._samples) - 1)
        return self._samples[idx]


class SpikeLoad(LoadModel):
    """``base`` load plus an additive rectangular spike in
    ``[start, start + duration)`` — the "somebody started a big compile"
    scenario used for migration experiments."""

    def __init__(
        self,
        base: LoadModel,
        start: float,
        duration: float,
        magnitude: float = 0.85,
    ) -> None:
        self._base = base
        self.start = start
        self.duration = duration
        self.magnitude = magnitude

    def load_at(self, t: float) -> float:
        load = self._base.load_at(t)
        if self.start <= t < self.start + self.duration:
            load = min(0.99, load + self.magnitude)
        return load
