"""Physical network topology and transfer-cost model.

The paper's testbed: all Ultras on a 100 Mbit/s switch, all other
workstations on 10 Mbit/s shared Ethernet, bridged into one LAN.  We model
the network as *segments* (switch/hub domains) connected by a backbone
graph (networkx).  A transfer pays:

    software overhead + sum(latency of segments crossed)
    + bytes / (min bandwidth along path × fair share)

Shared (hub) segments divide bandwidth among concurrent transfers — the
fair share is computed from the number of active transfers when this one
starts (a processor-sharing approximation that avoids re-scheduling every
in-flight transfer on each arrival).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import TransportError

#: Per-message software overhead in seconds (RMI dispatch, serialization
#: setup).  Java RMI on JDK 1.2 cost around a millisecond per call on a
#: LAN before any payload bytes moved.
DEFAULT_SW_OVERHEAD = 0.0012
#: Fraction of nominal bandwidth achievable in practice.
DEFAULT_EFFICIENCY = 0.7


@dataclass
class Segment:
    """One collision/switch domain."""

    name: str
    bandwidth_mbits: float
    latency_s: float = 0.0005
    #: shared=True models hub Ethernet: concurrent transfers split the
    #: medium.  Switched segments only share per-endpoint, which we fold
    #: into efficiency.
    shared: bool = False
    active_transfers: int = field(default=0, compare=False)

    @property
    def bytes_per_s(self) -> float:
        return self.bandwidth_mbits * 1e6 / 8.0


class Topology:
    """Hosts attached to segments; segments joined by backbone edges."""

    def __init__(
        self,
        sw_overhead: float = DEFAULT_SW_OVERHEAD,
        efficiency: float = DEFAULT_EFFICIENCY,
        loopback_bytes_per_s: float = 200e6,
    ) -> None:
        self.sw_overhead = sw_overhead
        self.efficiency = efficiency
        self.loopback_bytes_per_s = loopback_bytes_per_s
        self._segments: dict[str, Segment] = {}
        self._host_segment: dict[str, str] = {}
        self._graph = nx.Graph()

    # -- construction --------------------------------------------------------

    def add_segment(self, segment: Segment) -> None:
        if segment.name in self._segments:
            raise TransportError(f"duplicate segment {segment.name!r}")
        self._segments[segment.name] = segment
        self._graph.add_node(segment.name)

    def connect_segments(
        self, a: str, b: str, latency_s: float = 0.0005
    ) -> None:
        for name in (a, b):
            if name not in self._segments:
                raise TransportError(f"unknown segment {name!r}")
        self._graph.add_edge(a, b, latency=latency_s)

    def attach_host(self, host: str, segment: str) -> None:
        if segment not in self._segments:
            raise TransportError(f"unknown segment {segment!r}")
        self._host_segment[host] = segment

    # -- queries -------------------------------------------------------------

    def segment_of(self, host: str) -> Segment:
        try:
            return self._segments[self._host_segment[host]]
        except KeyError:
            raise TransportError(f"host {host!r} not attached") from None

    def segments_between(self, src: str, dst: str) -> list[Segment]:
        """Segments a (src -> dst) transfer crosses, in order."""
        seg_a = self.segment_of(src).name
        seg_b = self.segment_of(dst).name
        if seg_a == seg_b:
            return [self._segments[seg_a]]
        try:
            path = nx.shortest_path(self._graph, seg_a, seg_b)
        except nx.NetworkXNoPath:
            raise TransportError(
                f"no route between segments {seg_a!r} and {seg_b!r}"
            ) from None
        return [self._segments[name] for name in path]

    def path_latency(self, src: str, dst: str) -> float:
        segs = self.segments_between(src, dst)
        latency = sum(seg.latency_s for seg in segs)
        for a, b in zip(segs, segs[1:]):
            latency += self._graph.edges[a.name, b.name]["latency"]
        return latency

    # -- cost model ----------------------------------------------------------

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dst`` given current
        contention.  Same-host messages pay loopback cost only."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if src == dst:
            return self.sw_overhead + nbytes / self.loopback_bytes_per_s
        segs = self.segments_between(src, dst)
        # Bottleneck bandwidth with fair sharing on hub segments.
        rate = float("inf")
        for seg in segs:
            share = 1.0
            if seg.shared:
                share = 1.0 / (1 + seg.active_transfers)
            rate = min(rate, seg.bytes_per_s * self.efficiency * share)
        return self.sw_overhead + self.path_latency(src, dst) + nbytes / rate

    def begin_transfer(self, src: str, dst: str) -> list[Segment]:
        """Mark a transfer active on the crossed segments; the caller must
        pass the returned list to :meth:`end_transfer` when it completes."""
        if src == dst:
            return []
        segs = self.segments_between(src, dst)
        for seg in segs:
            seg.active_transfers += 1
        return segs

    def end_transfer(self, segs: list[Segment]) -> None:
        for seg in segs:
            if seg.active_transfers <= 0:
                raise TransportError(
                    f"end_transfer without begin on segment {seg.name!r}"
                )
            seg.active_transfers -= 1

    @property
    def hosts(self) -> list[str]:
        return sorted(self._host_segment)
