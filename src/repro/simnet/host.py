"""Physical host specifications.

The paper's testbed is a non-dedicated heterogeneous cluster of 13 Sun
workstations (Sparcstation 4/110, 10/40, 5/70; Ultra 1/170, 10/300,
10/440) under Solaris 7, JDK 1.2.1 + JIT.  ``SUN_MODELS`` captures those
six models.  ``mflops`` is the *effective Java matrix-multiply throughput*
of the era (JIT-compiled triple loop), not the marketing peak — that is
the number the cost model divides by, so it is calibrated to make
sequential runtimes land in the right ballpark for 2000-era hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class HostSpec:
    """Static description of one physical machine."""

    name: str
    model: str
    arch: str = "sparc"
    cpu_type: str = "UltraSPARC"
    cpu_mhz: float = 300.0
    num_cpus: int = 1
    #: effective double-precision MFLOP/s for JIT-compiled Java numeric code
    mflops: float = 40.0
    total_mem_mb: float = 128.0
    total_swap_mb: float = 256.0
    os_name: str = "SunOS"
    os_version: str = "5.7"
    jvm_version: str = "1.2.1"
    #: network interface speed in Mbit/s (10 or 100 on the paper's testbed)
    net_mbits: float = 100.0
    ip_address: str = "0.0.0.0"
    extra: dict = field(default_factory=dict)

    @property
    def flops(self) -> float:
        """Effective FLOP/s."""
        return self.mflops * 1e6


#: The six Sun workstation models of the paper's testbed: model key ->
#: (cpu_type, cpu_mhz, effective Java MFLOPS, memory MB, net Mbit/s).
SUN_MODELS: dict[str, dict] = {
    "SS4/110": dict(
        cpu_type="microSPARC-II", cpu_mhz=110.0, mflops=5.5,
        total_mem_mb=64.0, net_mbits=10.0,
    ),
    "SS10/40": dict(
        cpu_type="SuperSPARC", cpu_mhz=40.0, mflops=3.5,
        total_mem_mb=96.0, net_mbits=10.0,
    ),
    "SS5/70": dict(
        cpu_type="microSPARC-II", cpu_mhz=70.0, mflops=4.5,
        total_mem_mb=64.0, net_mbits=10.0,
    ),
    "Ultra1/170": dict(
        cpu_type="UltraSPARC-I", cpu_mhz=167.0, mflops=22.0,
        total_mem_mb=128.0, net_mbits=100.0,
    ),
    "Ultra10/300": dict(
        cpu_type="UltraSPARC-IIi", cpu_mhz=300.0, mflops=42.0,
        total_mem_mb=256.0, net_mbits=100.0,
    ),
    "Ultra10/440": dict(
        cpu_type="UltraSPARC-IIi", cpu_mhz=440.0, mflops=60.0,
        total_mem_mb=256.0, net_mbits=100.0,
    ),
}


def make_host(name: str, model: str, ip_suffix: int = 1) -> HostSpec:
    """Instantiate a host of one of the catalogued Sun models."""
    if model not in SUN_MODELS:
        raise KeyError(
            f"unknown model {model!r}; known: {sorted(SUN_MODELS)}"
        )
    params = SUN_MODELS[model]
    return HostSpec(
        name=name,
        model=model,
        ip_address=f"131.130.32.{ip_suffix}",
        **params,
    )
