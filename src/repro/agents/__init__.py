"""The JavaSymphony Runtime System (JRS) agents — paper Section 5.

* :mod:`repro.agents.nas` / :mod:`repro.agents.network_agent` — the
  Network Agent System (monitoring, aggregation, fault tolerance).
* :mod:`repro.agents.pub_oa` / :mod:`repro.agents.app_oa` — the Object
  Agent System (object tables, invocation, migration).
* :mod:`repro.agents.shell` — the JS-Shell administration surface.
"""

from repro.agents.app_oa import AppOA, RefEntry
from repro.agents.nas import NASConfig, NASEvent, NetworkAgentSystem
from repro.agents.network_agent import NetworkAgent
from repro.agents.objects import (
    ClassRegistry,
    ObjectEntry,
    ObjectRef,
    js_compute,
    jsclass,
)
from repro.agents.pub_oa import PubOA, VAWatch
from repro.agents.shell import JSShell, ShellConfig

__all__ = [
    "AppOA",
    "RefEntry",
    "NASConfig",
    "NASEvent",
    "NetworkAgentSystem",
    "NetworkAgent",
    "ClassRegistry",
    "ObjectEntry",
    "ObjectRef",
    "js_compute",
    "jsclass",
    "PubOA",
    "VAWatch",
    "JSShell",
    "ShellConfig",
]
