"""Object tables, class registry and the holder mixin shared by AppOA and
PubOA.

The paper stores locally-created objects in the AppOA's
*local-objects-table* and remotely-created ones in the hosting PubOA's
*remote-objects-table*, with the same information in both: unique handle,
location, pending results and an is-executing flag.  We factor that into
:class:`ObjectHolder`, mixed into both agents.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.agents.messages import Moved, UnknownObject
from repro.errors import (
    ClassNotLoadedError,
    MethodNotFoundError,
    ObjectStateError,
)
from repro.obs.events import LOCK_WAIT, OBJ_DISPATCH
from repro.transport import Addr
from repro.util.serialization import dumps, flops_of, loads, unwrap

# ---------------------------------------------------------------------------
# class registry ("the CLASSPATH")
# ---------------------------------------------------------------------------


class ClassRegistry:
    """Global name -> class mapping: what *could* be loaded anywhere.

    Selective classloading is enforced per node by the PubOA's loaded-set;
    this registry is merely the universe of classes (the paper's jar
    files / codebase URLs)."""

    _classes: dict[str, type] = {}

    @classmethod
    def register(cls, klass: type, name: str | None = None) -> type:
        cls._classes[name or klass.__name__] = klass
        return klass

    @classmethod
    def resolve(cls, name: str) -> type:
        try:
            return cls._classes[name]
        except KeyError:
            raise ClassNotLoadedError(
                f"class {name!r} is not registered anywhere "
                "(register it with @jsclass or ClassRegistry.register)"
            ) from None

    @classmethod
    def known(cls, name: str) -> bool:
        return name in cls._classes

    @classmethod
    def estimated_bytes(cls, name: str) -> int:
        """Approximate byte-code size of a class (for codebase transfer
        costs and per-node memory accounting)."""
        klass = cls.resolve(name)
        try:
            return max(256, len(inspect.getsource(klass).encode()))
        except (OSError, TypeError):
            return 2048


def jsclass(klass: type) -> type:
    """Decorator registering a class as remotely instantiable."""
    return ClassRegistry.register(klass)


def js_compute(flops: float | Callable[..., float]) -> Callable:
    """Method decorator declaring the method's compute cost.

    ``flops`` is either a constant or ``fn(self, *args) -> flops``; the
    dispatcher charges it as virtual compute time on the hosting machine,
    on top of any :class:`~repro.util.serialization.Payload` flops the
    arguments carry.
    """

    def wrap(method: Callable) -> Callable:
        method._js_flops = flops
        return method

    return wrap


def method_flops(instance: Any, method_name: str, args: tuple) -> float:
    method = getattr(type(instance), method_name, None)
    declared = getattr(method, "_js_flops", None)
    if declared is None:
        return 0.0
    if callable(declared):
        return float(declared(instance, *args))
    return float(declared)


# ---------------------------------------------------------------------------
# handles & table entries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectRef:
    """First-class, picklable object handle.

    ``origin`` is the AppOA the object originates from — the authority
    that always knows the current location (migration protocol invariant).
    ``location_hint`` may be stale; holders bounce stale RMIs with
    :class:`Moved` and callers re-resolve via the origin (Figure 4).
    """

    obj_id: str
    class_name: str
    origin: Addr
    location_hint: Addr

    def with_hint(self, location: Addr) -> "ObjectRef":
        return ObjectRef(self.obj_id, self.class_name, self.origin, location)


@dataclass
class ObjectEntry:
    obj_id: str
    class_name: str
    instance: Any
    origin: Addr
    executing: int = 0
    migrating: bool = False
    mem_mb: float = 0.0
    invocations: int = 0
    meta: dict = field(default_factory=dict)


def instance_mem_mb(instance: Any) -> float:
    """Memory footprint estimate from serialized size (floor 4 KiB)."""
    try:
        nbytes = len(dumps(instance))
    except Exception:  # unpicklable state - charge a nominal footprint
        nbytes = 64 * 1024
    return max(nbytes, 4096) / 1e6


# ---------------------------------------------------------------------------
# holder mixin
# ---------------------------------------------------------------------------


class ObjectHolder:
    """Mixin: everything an agent that *hosts* object instances needs.

    Subclass contract: ``self.world`` (SimWorld), ``self.addr`` (Addr),
    ``self.loaded_classes`` (set of class names available on this node —
    the selective-classloading gate).
    """

    #: Serialize invocations per object (active-object semantics).  The
    #: paper's tables track an is-executing flag per object and its slaves
    #: run one task at a time; serial dispatch also removes the init/
    #: multiply race inherent in Figure 6's replicate-then-distribute
    #: pattern.  Set False to allow concurrent methods on one object.
    serial_dispatch = True

    def init_holder(self) -> None:
        self.objects: dict[str, ObjectEntry] = {}
        #: invocations currently inside dispatch_invoke (waiting or
        #: executing) — the holder's live congestion gauge
        self._inflight = 0
        #: obj_id -> forwarding Addr left behind by migration
        self.tombstones: dict[str, Addr] = {}
        #: guards table membership: the transport runs one process per
        #: incoming request, which under the wall-clock kernel means real
        #: OS threads storing/dropping entries concurrently.
        self._holder_lock = self.world.kernel.sanitizer.make_lock(
            f"ObjectHolder[{getattr(self, 'addr', '?')}]._holder_lock"
        )

    # -- lifecycle ------------------------------------------------------------

    def class_available(self, class_name: str) -> bool:
        return class_name in self.loaded_classes

    def hold_new_object(
        self,
        obj_id: str,
        class_name: str,
        origin: Addr,
        args: tuple = (),
    ) -> ObjectEntry:
        if not self.class_available(class_name):
            raise ClassNotLoadedError(
                f"class {class_name!r} is not loaded on node "
                f"{self.addr.host}; load a codebase there first"
            )
        klass = ClassRegistry.resolve(class_name)
        instance = klass(*unwrap(args))
        return self._store_entry(obj_id, class_name, instance, origin)

    def hold_from_state(
        self, obj_id: str, class_name: str, blob: bytes, origin: Addr
    ) -> ObjectEntry:
        """Adopt a migrated/persisted instance (no class gate: the state
        carries the byte-code with it, as serialized Java objects do)."""
        instance = loads(blob)
        return self._store_entry(obj_id, class_name, instance, origin)

    def _store_entry(
        self, obj_id: str, class_name: str, instance: Any, origin: Addr
    ) -> ObjectEntry:
        entry = ObjectEntry(
            obj_id=obj_id,
            class_name=class_name,
            instance=instance,
            origin=origin,
            mem_mb=instance_mem_mb(instance),
        )
        with self._holder_lock:
            san = self.world.kernel.sanitizer
            if san.enabled:
                san.access(f"ObjectHolder[{self.addr}]",
                           f"objects[{obj_id}]",
                           scope=self.world.kernel)
            if obj_id in self.objects:
                raise ObjectStateError(f"object {obj_id} already held here")
            self.tombstones.pop(obj_id, None)
            self.objects[obj_id] = entry
        machine = self.world.machine(self.addr.host)
        machine.js_mem_mb += entry.mem_mb
        machine.counters.objects_created += 1
        machine.counters.objects_hosted += 1
        return entry

    def drop_object(
        self, obj_id: str, forward_to: Addr | None = None
    ) -> ObjectEntry:
        with self._holder_lock:
            san = self.world.kernel.sanitizer
            if san.enabled:
                san.access(f"ObjectHolder[{self.addr}]",
                           f"objects[{obj_id}]",
                           scope=self.world.kernel)
            try:
                entry = self.objects.pop(obj_id)
            except KeyError:
                raise ObjectStateError(
                    f"object {obj_id} is not held at {self.addr}"
                ) from None
            if forward_to is not None:
                self.tombstones[obj_id] = forward_to
        machine = self.world.machine(self.addr.host)
        machine.js_mem_mb = max(0.0, machine.js_mem_mb - entry.mem_mb)
        machine.counters.objects_hosted -= 1
        return entry

    # -- invocation (runs in a per-request transport process) -------------------

    def dispatch_invoke(
        self, obj_id: str, method_name: str, params: Any
    ) -> Any:
        """Execute a method on a held object, charging compute time.

        Returns :class:`Moved`/:class:`UnknownObject` markers for stale or
        unknown handles — the caller-side AppOA interprets them.
        """
        self._inflight += 1
        tracer = self.world.tracer
        if tracer.enabled:
            # Observed on arrival so the histogram records the depth each
            # call found, not the depth after it left; the SLO watcher's
            # queue-depth rule reads the windowed max.
            tracer.observe("queue.depth", float(self._inflight),
                           host=self.addr.host)
        try:
            return self._dispatch_invoke(obj_id, method_name, params)
        finally:
            self._inflight -= 1

    def _dispatch_invoke(
        self, obj_id: str, method_name: str, params: Any
    ) -> Any:
        kernel = self.world.kernel
        wait_start = self.world.now()
        while True:
            entry = self.objects.get(obj_id)
            if entry is None:
                if obj_id in self.tombstones:
                    return Moved(obj_id, hint=self.tombstones[obj_id])
                return UnknownObject(obj_id)
            if not entry.migrating and not (
                self.serial_dispatch and entry.executing > 0
            ):
                break
            # Paper: migration is delayed until running invocations end;
            # symmetrically, invocations arriving mid-migration wait and
            # then chase the tombstone.  With serial dispatch, invocations
            # also queue behind the currently executing method.
            kernel.sleep(0.001)
        tracer = self.world.tracer
        if tracer.enabled:
            waited = self.world.now() - wait_start
            if waited > 0.0:
                # Holder-side queueing (serial dispatch / migration
                # quiescing): the critical-path extractor charges this
                # to lock time, not to the method itself.
                tracer.emit_span(
                    LOCK_WAIT, ts=wait_start, dur=waited,
                    host=self.addr.host, actor=str(self.addr),
                    obj_id=obj_id, method=method_name,
                )
        args = tuple(params) if params is not None else ()
        method = getattr(entry.instance, method_name, None)
        if method is None or not callable(method):
            raise MethodNotFoundError(
                f"{entry.class_name} has no method {method_name!r}"
            )
        entry.executing += 1
        machine = self.world.machine(self.addr.host)
        machine.counters.invocations_served += 1
        entry.invocations += 1
        dispatch_start = self.world.now()
        dspan = None
        if tracer.enabled:
            # Installed: the compute charge below nests under dispatch.
            dspan = tracer.begin_span(
                OBJ_DISPATCH, ts=dispatch_start, host=self.addr.host,
                actor=str(self.addr), obj_id=obj_id, method=method_name,
            )
        flops = 0.0
        try:
            flops = flops_of(args) + method_flops(
                entry.instance, method_name, unwrap(args)
            )
            if flops > 0:
                self.world.compute(self.addr.host, flops)
            result = method(*unwrap(args))
        finally:
            entry.executing -= 1
            if dspan is not None:
                tracer.end_span(dspan, ts=self.world.now(), flops=flops)
                tracer.count(f"dispatch:{self.addr.host}",
                             host=self.addr.host)
        # The instance may have grown (e.g. init() storing a matrix);
        # refresh the memory accounting.
        new_mem = instance_mem_mb(entry.instance)
        machine.js_mem_mb += new_mem - entry.mem_mb
        entry.mem_mb = new_mem
        return result

    # -- migration / persistence support ----------------------------------------

    def wait_until_quiescent(self, entry: ObjectEntry) -> None:
        """Block until no method of the object is executing."""
        while entry.executing > 0:
            self.world.kernel.sleep(0.001)

    def serialize_object(self, obj_id: str) -> tuple[bytes, ObjectEntry]:
        entry = self.objects.get(obj_id)
        if entry is None:
            raise ObjectStateError(
                f"object {obj_id} is not held at {self.addr}"
            )
        self.wait_until_quiescent(entry)
        return dumps(entry.instance), entry
