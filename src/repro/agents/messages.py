"""Message kinds of the JRS agent protocol.

Grouped by subsystem: NAS (monitoring/failure detection), OAS (object
lifecycle + invocation), and administration.
"""

from __future__ import annotations

# --- Network Agent System -------------------------------------------------
PING = "PING"                          # heartbeat probe
# Monitoring heartbeats double as the telemetry plane's transport:
# REPORT_PARAMS carries (host, snapshot, metrics_delta|None) — the delta
# is the host's metrics growth since its last heartbeat (see
# repro.obs.timeseries.MetricsDelta) — and REPORT_AGGREGATE carries
# (level, name, weighted, [deltas...]) so collected deltas ride the
# existing manager cascade up to the domain manager, which ingests them
# into the ClusterMetrics aggregate.  Older 2/3-tuple payloads are still
# accepted (the trailing members are optional on unpack).
REPORT_PARAMS = "REPORT_PARAMS"        # node -> cluster manager sample
REPORT_AGGREGATE = "REPORT_AGGREGATE"  # manager -> higher manager average
# The two failure notifications are recorded as NASEvent entries by the
# (shared-state) NetworkAgentSystem rather than sent on the wire; the
# kinds stay declared because the NASEvent.kind vocabulary and the paper's
# protocol (Section 5.1) name them.
# symlint: disable=dead-kind
NODE_RELEASED = "NODE_RELEASED"        # manager -> shell/agents on failure
MANAGER_TAKEOVER = "MANAGER_TAKEOVER"  # symlint: disable=dead-kind

# --- Object Agent System -----------------------------------------------------
CREATE_OBJECT = "CREATE_OBJECT"
CREATE_FROM_STATE = "CREATE_FROM_STATE"
INVOKE = "INVOKE"
INVOKE_BATCH = "INVOKE_BATCH"          # [(obj_id, method, params), ...] ->
#                                        positional outcome vector
ONEWAY_INVOKE = "ONEWAY_INVOKE"
FREE_OBJECT = "FREE_OBJECT"
MIGRATE_OUT = "MIGRATE_OUT"            # ao -> pa1: push the object to pa2
MIGRATE_IN = "MIGRATE_IN"              # pa1 -> pa2: here is the object
FETCH_STATE = "FETCH_STATE"            # serialize for persistence
GET_LOCATION = "GET_LOCATION"          # anybody -> origin AppOA (fig. 4)
CONSTRAINTS_VIOLATED = "CONSTRAINTS_VIOLATED"  # PubOA -> AppOA watch event
REGISTER_VA = "REGISTER_VA"            # AppOA -> PubOA: watch this VA
UNREGISTER_VA = "UNREGISTER_VA"

# --- static segments (extension: the paper's stated future work) ------------
STATIC_REF = "STATIC_REF"              # ensure the per-node static segment
STATIC_GETVAR = "STATIC_GETVAR"
STATIC_SETVAR = "STATIC_SETVAR"

# --- codebase / classloading -------------------------------------------------
LOAD_CLASSES = "LOAD_CLASSES"
UNLOAD_CLASSES = "UNLOAD_CLASSES"

# --- wire-level invocation outcomes -----------------------------------------


class Moved:
    """Reply marker: the object migrated away; ask its origin AppOA."""

    __slots__ = ("obj_id", "hint")

    def __init__(self, obj_id: str, hint=None) -> None:
        self.obj_id = obj_id
        self.hint = hint  # forwarding Addr if the tombstone knows it

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Moved {self.obj_id} hint={self.hint}>"


class UnknownObject:
    """Reply marker: this holder never heard of the object (freed?)."""

    __slots__ = ("obj_id",)

    def __init__(self, obj_id: str) -> None:
        self.obj_id = obj_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"<UnknownObject {self.obj_id}>"


class BatchFailure:
    """Per-call outcome in an ``INVOKE_BATCH`` reply: this one call
    raised.  The exception travels positionally so a single bad call
    does not fail the rest of the batch."""

    __slots__ = ("obj_id", "exc")

    def __init__(self, obj_id: str, exc: BaseException) -> None:
        self.obj_id = obj_id
        self.exc = exc

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BatchFailure {self.obj_id}: {self.exc!r}>"
