"""Wire handlers shared by every agent that hosts object instances.

Both the PubOA (remote-objects-table) and the AppOA (local-objects-table)
serve the same object-hosting protocol: create, invoke, free, migrate
out/in, fetch state.  This mixin registers those handlers on the agent's
endpoint; it sits on top of :class:`repro.agents.objects.ObjectHolder`.
"""

from __future__ import annotations

from repro.agents import messages as M
from repro.agents.objects import ObjectHolder
from repro.errors import MigrationError, ObjectStateError
from repro.obs import events as ev
from repro.transport import Addr
from repro.util.serialization import Payload, dumps


def wire_bytes(instance, blob: bytes) -> int:
    """Bytes an object occupies on the wire: real pickle size unless the
    instance declares a nominal ``__js_nbytes__`` (scaled benchmarks)."""
    nominal = getattr(instance, "__js_nbytes__", None)
    if nominal is not None:
        return int(nominal)
    return len(blob)


class HolderEndpoints(ObjectHolder):
    """Contract: ``self.endpoint``, ``self.addr``, ``self.world``,
    ``self.loaded_classes`` and (optionally) ``self.migration_timeout``."""

    migration_timeout: float | None = None

    def register_holder_handlers(self) -> None:
        ep = self.endpoint
        self._install_dedup(ep)
        ep.register(M.PING, lambda msg: "pong")
        ep.register(M.CREATE_OBJECT, self._h_create_object)
        ep.register(M.CREATE_FROM_STATE, self._h_create_from_state)
        ep.register(M.INVOKE, self._h_invoke)
        ep.register(M.INVOKE_BATCH, self._h_invoke_batch)
        ep.register(M.ONEWAY_INVOKE, self._h_oneway_invoke)
        ep.register(M.FREE_OBJECT, self._h_free_object)
        ep.register(M.MIGRATE_OUT, self._h_migrate_out)
        ep.register(M.MIGRATE_IN, self._h_migrate_in)
        ep.register(M.FETCH_STATE, self._h_fetch_state)
        ep.register(M.STATIC_REF, self._h_static_ref)
        ep.register(M.STATIC_GETVAR, self._h_static_getvar)
        ep.register(M.STATIC_SETVAR, self._h_static_setvar)

    def _install_dedup(self, ep) -> None:
        """Attach a replay cache when ``ShellConfig.dedup_window`` is set,
        so retried tokened requests execute at most once on this holder."""
        runtime = getattr(self, "runtime", None)
        if runtime is None:
            return
        window = runtime.shell.config.dedup_window
        if window is None:
            return
        from repro.rmi.reliability import ReplayCache

        ep.dedup = ReplayCache(self.world.kernel, window)

    def _trace_migrate_step(self, obj_id: str, step: str) -> None:
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.emit(
                ev.MIGRATE_STEP, ts=self.world.now(), host=self.addr.host,
                actor=str(self.addr), obj_id=obj_id, step=step,
            )

    # -- creation ---------------------------------------------------------------

    def _h_create_object(self, msg):
        obj_id, class_name, origin, args = msg.payload
        entry = self.hold_new_object(obj_id, class_name, origin, tuple(args))
        return {"obj_id": obj_id, "mem_mb": entry.mem_mb}

    def _h_create_from_state(self, msg):
        obj_id, class_name, blob, origin = msg.payload.data
        entry = self.hold_from_state(obj_id, class_name, blob, origin)
        return {"obj_id": obj_id, "mem_mb": entry.mem_mb}

    # -- invocation --------------------------------------------------------------

    def _h_invoke(self, msg):
        obj_id, method_name, params = msg.payload
        return self.dispatch_invoke(obj_id, method_name, params)

    def dispatch_invoke_batch(self, calls):
        """Dispatch a positional batch of ``(obj_id, method, params)``
        calls.  The outcome vector stays index-aligned with the request:
        stale refs pass their ``Moved``/``UnknownObject`` markers through
        per slot and a raising call becomes a ``BatchFailure`` — one bad
        call never fails its batch-mates."""
        from repro.agents.messages import BatchFailure

        outcomes = []
        for obj_id, method_name, params in calls:
            try:
                outcomes.append(
                    self.dispatch_invoke(obj_id, method_name, params)
                )
            except Exception as exc:  # noqa: BLE001 - shipped positionally
                outcomes.append(BatchFailure(obj_id, exc))
        return outcomes

    def _h_invoke_batch(self, msg):
        calls = msg.payload
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.count("invoke.batch.dispatched", len(calls),
                         host=self.addr.host)
        return self.dispatch_invoke_batch(calls)

    def _h_oneway_invoke(self, msg):
        from repro.agents.messages import Moved

        obj_id, method_name, params = msg.payload
        outcome = self.dispatch_invoke(obj_id, method_name, params)
        if isinstance(outcome, Moved) and outcome.hint is not None:
            # One-sided calls carry no reply channel, so the tombstone
            # forwards the invocation to the object's new home.
            self.endpoint.send_oneway(
                outcome.hint, M.ONEWAY_INVOKE, msg.payload
            )
        return None

    # -- free -------------------------------------------------------------------

    def _h_free_object(self, msg):
        obj_id = msg.payload
        self.drop_object(obj_id)
        return "freed"

    # -- migration (paper Figure 3, steps 2-4) -------------------------------

    def _h_migrate_out(self, msg):
        """pa1 side: push the object to pa2 and leave a tombstone."""
        obj_id, dst = msg.payload
        entry = self.objects.get(obj_id)
        if entry is None:
            raise ObjectStateError(
                f"cannot migrate {obj_id}: not held at {self.addr}"
            )
        if entry.migrating:
            raise MigrationError(f"{obj_id} is already migrating")
        entry.migrating = True
        self._trace_migrate_step(obj_id, "out-start")
        try:
            # Paper: "migration is delayed until all unfinished method
            # invocations have completed execution".
            self.wait_until_quiescent(entry)
            self._trace_migrate_step(obj_id, "quiesced")
            blob = dumps(entry.instance)
            payload = Payload(
                data=(obj_id, entry.class_name, blob, entry.origin),
                nbytes=wire_bytes(entry.instance, blob),
            )
            # Figure 3 step 3 *is* a synchronous push: pa1 must know the
            # object arrived before dropping it to a tombstone, and this
            # handler runs in its own transport process, so waiting here
            # cannot stall unrelated dispatch.
            # symlint: disable=blocking-rpc-in-handler
            self.endpoint.rpc(
                Addr(dst.host, dst.agent), M.MIGRATE_IN, payload,
                timeout=self.migration_timeout,
            )
            self._trace_migrate_step(obj_id, "pushed")
        except BaseException:
            entry.migrating = False
            raise
        self.drop_object(obj_id, forward_to=dst)
        self._trace_migrate_step(obj_id, "tombstone")
        machine = self.world.machine(self.addr.host)
        machine.counters.migrations_out += 1
        return {"obj_id": obj_id, "new_location": dst}

    def _h_migrate_in(self, msg):
        """pa2 side: adopt the instance and confirm."""
        obj_id, class_name, blob, origin = msg.payload.data
        entry = self.hold_from_state(obj_id, class_name, blob, origin)
        self._trace_migrate_step(obj_id, "adopted")
        machine = self.world.machine(self.addr.host)
        machine.counters.migrations_in += 1
        return {"obj_id": obj_id, "mem_mb": entry.mem_mb}

    # -- static segments (extension) -------------------------------------------
    #
    # The paper lists "handling static methods and variables" as ongoing
    # work.  We model a class's static segment as one surrogate instance
    # per node (per "JVM"): static methods run on it, static variables
    # are its attributes.  Static segments never migrate and are created
    # on demand — but only where the class was loaded (selective
    # classloading applies to statics too).

    def static_obj_id(self, class_name: str) -> str:
        return f"static::{class_name}"

    def ensure_static(self, class_name: str):
        from repro.agents.objects import ClassRegistry
        from repro.errors import ClassNotLoadedError

        obj_id = self.static_obj_id(class_name)
        entry = self.objects.get(obj_id)
        if entry is not None:
            return entry
        if not self.class_available(class_name):
            raise ClassNotLoadedError(
                f"class {class_name!r} is not loaded on node "
                f"{self.addr.host}; its static segment cannot exist there"
            )
        klass = ClassRegistry.resolve(class_name)
        surrogate = klass.__new__(klass)
        init = getattr(surrogate, "__js_static_init__", None)
        if callable(init):
            init()
        return self._store_entry(obj_id, class_name, surrogate, self.addr)

    def _h_static_ref(self, msg):
        class_name = msg.payload
        self.ensure_static(class_name)
        return self.static_obj_id(class_name)

    def _h_static_getvar(self, msg):
        class_name, var = msg.payload
        entry = self.ensure_static(class_name)
        if not hasattr(entry.instance, var) and not hasattr(
            type(entry.instance), var
        ):
            raise AttributeError(
                f"{class_name} has no static variable {var!r}"
            )
        return getattr(entry.instance, var)

    def _h_static_setvar(self, msg):
        class_name, var, value = msg.payload
        entry = self.ensure_static(class_name)
        setattr(entry.instance, var, value)
        return "ok"

    # -- persistence --------------------------------------------------------------

    def _h_fetch_state(self, msg):
        obj_id = msg.payload
        blob, entry = self.serialize_object(obj_id)
        payload = Payload(
            data=(entry.class_name, blob),
            nbytes=wire_bytes(entry.instance, blob),
        )
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.emit(
                ev.OBJ_FETCH_STATE, ts=self.world.now(),
                host=self.addr.host, actor=str(self.addr),
                obj_id=obj_id, nbytes=payload.nbytes,
            )
        return payload
