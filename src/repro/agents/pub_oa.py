"""The public object agent (PubOA), one per node.

Shares its "JVM" with the node's network agent (paper Figure 2): it holds
the *remote-objects-table* for objects created on this node by remote
applications, the node's loaded-class set (selective classloading), and
the stored virtual architectures whose creation constraints it
periodically re-checks — the trigger for automatic migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.agents import messages as M
from repro.agents.holder_endpoints import HolderEndpoints
from repro.constraints import JSConstraints
from repro.errors import NodeFailedError, RPCTimeoutError, TransportError
from repro.transport import Addr

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import JSRuntime


@dataclass
class VAWatch:
    """A stored virtual architecture: id, member hosts, the constraints it
    was created under, and the owning application's AppOA address."""

    watch_id: str
    hosts: list[str]
    constraints: JSConstraints
    app_addr: Addr


class PubOA(HolderEndpoints):
    def __init__(self, runtime: "JSRuntime", host: str) -> None:
        self.runtime = runtime
        self.world = runtime.world
        self.host = host
        self.addr = Addr(host, "oa")
        self.endpoint = runtime.transport.create_endpoint(self.addr)
        self.loaded_classes: set[str] = set()
        self._codebase_bytes: dict[str, int] = {}
        self.va_watches: dict[str, VAWatch] = {}
        self.init_holder()
        self.register_holder_handlers()
        self.endpoint.register(M.LOAD_CLASSES, self._h_load_classes)
        self.endpoint.register(M.UNLOAD_CLASSES, self._h_unload_classes)
        self.endpoint.register(M.REGISTER_VA, self._h_register_va)
        self.endpoint.register(M.UNREGISTER_VA, self._h_unregister_va)
        self._watch_proc = None

    @property
    def migration_timeout(self):
        return self.runtime.shell.config.rpc_timeout

    # -- classloading (paper Section 4.3) ------------------------------------

    def _h_load_classes(self, msg):
        entries = msg.payload.data  # list[(class_name, nbytes)]
        machine = self.world.machine(self.host)
        san = self.world.kernel.sanitizer
        for class_name, nbytes in entries:
            if class_name not in self.loaded_classes:
                if san.enabled:
                    san.access(f"PubOA[{self.host}]",
                               f"loaded[{class_name}]",
                               scope=self.world.kernel)
                self.loaded_classes.add(class_name)
                self._codebase_bytes[class_name] = nbytes
                machine.codebase_mem_mb += nbytes / 1e6
        return {"loaded": len(entries)}

    def _h_unload_classes(self, msg):
        names = msg.payload
        machine = self.world.machine(self.host)
        san = self.world.kernel.sanitizer
        for class_name in names:
            if class_name in self.loaded_classes:
                if san.enabled:
                    san.access(f"PubOA[{self.host}]",
                               f"loaded[{class_name}]",
                               scope=self.world.kernel)
                self.loaded_classes.discard(class_name)
                nbytes = self._codebase_bytes.pop(class_name, 0)
                machine.codebase_mem_mb = max(
                    0.0, machine.codebase_mem_mb - nbytes / 1e6
                )
        return {"unloaded": len(names)}

    # -- VA watches / automatic migration trigger ------------------------------

    def _h_register_va(self, msg):
        watch_id, hosts, constraints, app_addr = msg.payload
        san = self.world.kernel.sanitizer
        if san.enabled:
            san.access(f"PubOA[{self.host}]", f"va_watches[{watch_id}]",
                       scope=self.world.kernel)
        self.va_watches[watch_id] = VAWatch(
            watch_id, list(hosts), constraints, app_addr
        )
        return watch_id

    def _h_unregister_va(self, msg):
        san = self.world.kernel.sanitizer
        if san.enabled:
            san.access(f"PubOA[{self.host}]",
                       f"va_watches[{msg.payload}]",
                       scope=self.world.kernel)
        self.va_watches.pop(msg.payload, None)
        return "ok"

    def start(self) -> None:
        self._watch_proc = self.world.kernel.spawn(
            self._watch_loop, name=f"puboa-watch@{self.host}"
        )

    def _watch_loop(self) -> None:
        """Periodically re-evaluate stored VAs' creation constraints and
        notify owning AppOAs about violating components (Section 5.2)."""
        kernel = self.world.kernel
        shell = self.runtime.shell
        kernel.sleep(
            float(self.world.rng.stream(f"watch:{self.host}").uniform(
                0, shell.config.watch_period
            ))
        )
        while not self.world.machine(self.host).failed:
            if shell.config.auto_migration:
                try:
                    self._check_watches_once()
                except NodeFailedError:
                    break
            kernel.sleep(shell.config.watch_period)

    def _check_watches_once(self) -> None:
        nas = self.runtime.nas
        for watch in list(self.va_watches.values()):
            violating = []
            for host in watch.hosts:
                if host not in self.world.machines:
                    continue
                if self.world.machine(host).failed:
                    continue
                snap = nas.latest_snapshot(host)
                if not watch.constraints.holds(snap):
                    violating.append(host)
            if violating:
                try:
                    self.endpoint.send_oneway(
                        watch.app_addr,
                        M.CONSTRAINTS_VIOLATED,
                        (watch.watch_id, violating, watch.constraints),
                    )
                except (TransportError, NodeFailedError,
                        RPCTimeoutError):  # pragma: no cover - defensive
                    pass
