"""The JavaSymphony Administration Shell (JS-Shell).

Paper Section 5: the JS-Shell configures which nodes run JRS (add/remove
dynamically), controls measurement and collection periods, failure
timeouts, and enables/disables automatic object migration.  It also
defines the default constraints JRS applies when applications map objects
without their own constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.constraints import JSConstraints
from repro.errors import ShellError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import JSRuntime


@dataclass
class ShellConfig:
    #: PubOA VA-watch period driving automatic migration (s)
    watch_period: float = 10.0
    #: automatic object migration on/off ("it is possible to
    #: enable/disable automatic migration under the JS-Shell")
    auto_migration: bool = False
    #: default RPC timeout for OAS traffic; None = block forever
    rpc_timeout: float | None = None
    #: how long migrate_object waits for this app's in-flight async
    #: invocations to drain before migrating anyway (handing stragglers
    #: to the tombstone redirect); None = drain fully
    migrate_drain_timeout: float | None = None
    #: constraints JRS applies when placing unmapped objects
    default_constraints: JSConstraints | None = None
    #: extension (off-path per paper): let the OAS react to NAS failures
    oas_failure_recovery: bool = False
    #: :class:`repro.rmi.reliability.RetryPolicy` | None.  When set,
    #: blocking endpoint RPCs retry transport failures with backoff and
    #: carry idempotency tokens; None (default) keeps the paper's
    #: fire-once semantics.
    retry_policy: object | None = None
    #: holder-side replay-cache window in sim seconds (None = no dedup);
    #: size it above the retry policy's worst-case total backoff
    dedup_window: float | None = None
    #: :class:`repro.rmi.reliability.CircuitBreaker` | None — per-host
    #: suspicion wired into the transport and placement ranking
    circuit_breaker: object | None = None


class JSShell:
    def __init__(self, runtime: "JSRuntime",
                 config: ShellConfig | None = None) -> None:
        self.runtime = runtime
        self.config = config or ShellConfig()
        self.log: list[tuple[float, str, dict]] = []

    def _note(self, kind: str, **detail) -> None:
        self.log.append((self.runtime.world.now(), kind, detail))

    # -- monitoring periods ----------------------------------------------------

    def set_monitor_period(self, seconds: float) -> None:
        if seconds <= 0:
            raise ShellError("monitor period must be positive")
        self.runtime.nas.config.monitor_period = seconds
        self._note("set-monitor-period", seconds=seconds)

    def set_probe_period(self, seconds: float) -> None:
        if seconds <= 0:
            raise ShellError("probe period must be positive")
        self.runtime.nas.config.probe_period = seconds
        self._note("set-probe-period", seconds=seconds)

    def set_failure_timeout(self, seconds: float) -> None:
        if seconds <= 0:
            raise ShellError("failure timeout must be positive")
        self.runtime.nas.config.failure_timeout = seconds
        self._note("set-failure-timeout", seconds=seconds)

    # -- automatic migration -----------------------------------------------------

    def enable_auto_migration(self, watch_period: float | None = None) -> None:
        if watch_period is not None:
            if watch_period <= 0:
                raise ShellError("watch period must be positive")
            self.config.watch_period = watch_period
        self.config.auto_migration = True
        self._note("auto-migration", enabled=True)

    def disable_auto_migration(self) -> None:
        self.config.auto_migration = False
        self._note("auto-migration", enabled=False)

    # -- node membership -----------------------------------------------------------

    def add_node(self, host: str, cluster: str, site: str) -> None:
        """Register a node with JRS while applications may be running."""
        self.runtime.nas.add_node(host, cluster, site)
        self.runtime.pool.add_host(host)
        self.runtime.ensure_pub_oa(host)
        self._note("add-node", host=host, cluster=cluster, site=site)

    def remove_node(self, host: str) -> None:
        self.runtime.nas.remove_node(host)
        self.runtime.pool.remove_host(host)
        self._note("remove-node", host=host)

    def nodes(self) -> list[str]:
        return self.runtime.nas.known_hosts()

    # -- introspection -----------------------------------------------------------------

    def failure_events(self) -> list:
        return list(self.runtime.nas.events)

    def top(self) -> str:
        """One top-style frame over the cluster right now: per node, idle
        %, JS memory, RPC/migration counters, in-flight spans and the
        slowest open span (from the tracer, when tracing is on)."""
        from repro.obs.top import live_frame, render_top_frame

        self._note("top")
        return render_top_frame(live_frame(self.runtime))

    def metrics(self, fmt: str = "prom") -> str:
        """The cluster metrics aggregate, rendered.  ``fmt``: ``"prom"``
        for Prometheus exposition text, ``"json"`` for the full document
        (merged + per-host snapshots, JSON text).  Reads the NAS-shipped
        aggregate when heartbeat deltas have arrived, the tracer's live
        per-host registries otherwise."""
        import json

        from repro.obs import render_prom

        self._note("metrics", fmt=fmt)
        doc = self.runtime.metrics_document()
        if fmt == "json":
            return json.dumps(doc, indent=1, default=repr)
        if fmt != "prom":
            raise ShellError(f"unknown metrics format {fmt!r}")
        return render_prom(doc["merged"])

    def incidents(self) -> list[dict]:
        """The flight recorder's captured incident bundles, oldest
        first (render one with :func:`repro.obs.render_incident`)."""
        self._note("incidents")
        return list(self.runtime.flight.incidents)
