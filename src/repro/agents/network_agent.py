"""Network agents: per-node monitoring, aggregation, failure probing.

Every node runs exactly one network agent (NA).  Each NA:

* samples its own machine every ``monitor_period`` and reports the sample
  to its cluster manager's NA (over the network, like the real system);
* if it *is* a cluster manager: averages member samples and forwards the
  cluster aggregate to the site manager; site managers forward site
  aggregates to the domain manager (paper Section 5.1);
* probes: cluster managers ping their members, members ping their
  manager.  A peer that stays silent past ``failure_timeout`` triggers
  the paper's fault-tolerance protocol (release / backup takeover),
  executed by :class:`repro.agents.nas.NetworkAgentSystem`.

The monitoring heartbeat doubles as the **telemetry plane's** transport:
each ``REPORT_PARAMS`` piggybacks a
:class:`~repro.obs.timeseries.MetricsDelta` (this host's metrics growth
since its previous heartbeat, exact counter/bucket diffs), managers
batch received deltas and flush them up the existing
``REPORT_AGGREGATE`` cascade on their own tick, and the domain manager
ingests them into the NAS-owned
:class:`~repro.obs.timeseries.ClusterMetrics` (which also drives the SLO
watcher).  The extra wire cost is charged via the delta's estimated
serialized size on top of ``SAMPLE_WIRE_BYTES``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.agents import messages as M
from repro.errors import NodeFailedError, RPCTimeoutError, TransportError
from repro.obs import events as ev
from repro.obs.metrics import snapshot_delta
from repro.obs.timeseries import MetricsDelta
from repro.sysmon import SampleHistory, WeightedSnapshot, average_snapshots
from repro.sysmon.sampler import sample_all
from repro.transport import Addr
from repro.util.serialization import Payload

if TYPE_CHECKING:  # pragma: no cover
    from repro.agents.nas import NetworkAgentSystem

#: serialized size of one ~47-parameter sample report on the wire
SAMPLE_WIRE_BYTES = 1200


class NetworkAgent:
    def __init__(self, nas: "NetworkAgentSystem", host: str) -> None:
        self.nas = nas
        self.host = host
        self.world = nas.world
        self.addr = Addr(host, "na")
        self.endpoint = nas.transport.create_endpoint(self.addr)
        self.history = SampleHistory(depth=nas.config.history_depth)
        #: cluster members' latest samples (only used while manager)
        self.member_samples: dict[str, WeightedSnapshot] = {}
        #: child aggregates while site/domain manager: name -> weighted
        self.cluster_aggregates: dict[str, WeightedSnapshot] = {}
        self.site_aggregates: dict[str, WeightedSnapshot] = {}
        #: telemetry deltas received from below, awaiting this manager's
        #: own tick to flush upward (or ingest, at the domain manager)
        self.pending_deltas: list[MetricsDelta] = []
        # Per-host registry view last shipped; the next heartbeat ships
        # only the growth since (exact counter/bucket diffs).
        self._shipped_metrics: dict | None = None
        self._window_start = self.world.now()
        self._register_handlers()
        self._procs = []

    # -- handlers -------------------------------------------------------------

    def _register_handlers(self) -> None:
        ep = self.endpoint
        ep.register(M.PING, lambda msg: "pong")
        ep.register(M.REPORT_PARAMS, self._on_report_params)
        ep.register(M.REPORT_AGGREGATE, self._on_report_aggregate)

    def _on_report_params(self, msg) -> None:
        host, snapshot, *rest = msg.payload.data
        self.member_samples[host] = WeightedSnapshot(snapshot, weight=1)
        if rest and rest[0] is not None:
            self.pending_deltas.append(rest[0])

    def _on_report_aggregate(self, msg) -> None:
        level, name, weighted, *rest = msg.payload.data
        if level == "cluster":
            self.cluster_aggregates[name] = weighted
        elif level == "site":
            self.site_aggregates[name] = weighted
        else:  # pragma: no cover - defensive
            raise TransportError(f"bad aggregate level {level!r}")
        if rest and rest[0]:
            self.pending_deltas.extend(rest[0])

    # -- loops ------------------------------------------------------------------

    def start(self) -> None:
        kernel = self.world.kernel
        self._procs = [
            kernel.spawn(self._monitor_loop, name=f"na-mon@{self.host}"),
            kernel.spawn(self._probe_loop, name=f"na-probe@{self.host}"),
        ]

    def _alive(self) -> bool:
        return (
            not self.world.machine(self.host).failed
            and self.host in self.nas.known_hosts()
        )

    def _monitor_loop(self) -> None:
        kernel = self.world.kernel
        config = self.nas.config
        # Desynchronize the fleet a little, deterministically.
        kernel.sleep(
            float(self.world.rng.stream(f"na:{self.host}").uniform(
                0, config.monitor_period * 0.5
            ))
        )
        while self._alive():
            try:
                self._monitor_once()
            except NodeFailedError:
                break  # this host died mid-sample
            kernel.sleep(config.monitor_period)

    def _monitor_once(self) -> None:
        from repro.sysmon import SysParam

        t0 = self.world.now()
        machine = self.world.machine(self.host)
        snapshot = sample_all(machine, t0, self.world.topology)
        self.history.record(self.world.now(), snapshot)
        tracer = self.world.tracer
        span = None
        if tracer.enabled:
            # Each monitoring tick (sample + manager exchange) is a span
            # rooting its own small trace; idle/memory ride along so the
            # js-top reconstruction can read them straight off the event.
            span = tracer.begin_span(
                ev.NAS_SAMPLE, ts=t0, host=self.host,
                actor=f"na@{self.host}", parent=None,
                idle=round(float(snapshot.get(SysParam.IDLE, 0.0)), 2),
                avail_mem_mb=round(
                    float(snapshot.get(SysParam.AVAIL_MEM, 0.0)), 1),
                js_mem_mb=round(
                    machine.js_mem_mb + machine.codebase_mem_mb, 3),
            )
            tracer.count("nas.samples", host=self.host)
        try:
            manager = self.nas.cluster_manager_of(self.host)
            if manager is None:
                return
            delta = self._collect_delta(self.world.now())
            if manager == self.host:
                self.member_samples[self.host] = WeightedSnapshot(snapshot, 1)
                if delta is not None:
                    self.pending_deltas.append(delta)
                self._aggregate_and_forward()
            else:
                extra = delta.wire_bytes() if delta is not None else 0
                self.endpoint.send_oneway(
                    Addr(manager, "na"),
                    M.REPORT_PARAMS,
                    Payload(data=(self.host, snapshot, delta),
                            nbytes=SAMPLE_WIRE_BYTES + extra),
                )
        finally:
            if span is not None:
                tracer.end_span(span, ts=self.world.now())

    def _collect_delta(self, now: float) -> MetricsDelta | None:
        """This host's metrics growth since its previous heartbeat, as
        the piggyback for one ``REPORT_PARAMS``; None when the telemetry
        plane is off (no recording tracer, or disabled in NASConfig).
        Empty deltas still ship — regular windows per host keep rates
        and SLO evaluation well-defined."""
        if not self.nas.telemetry_enabled:
            return None
        tracer = self.world.tracer
        if not tracer.enabled:
            return None
        registry = getattr(tracer, "host_metrics", {}).get(self.host)
        snap = registry.snapshot() if registry is not None else \
            {"counters": {}, "histograms": {}}
        grown = snapshot_delta(snap, self._shipped_metrics)
        self._shipped_metrics = snap
        delta = MetricsDelta(host=self.host, t_start=self._window_start,
                             t_end=now, counters=grown["counters"],
                             histograms=grown["histograms"])
        self._window_start = now
        return delta

    def _flush_deltas(self) -> list[MetricsDelta]:
        deltas, self.pending_deltas = self.pending_deltas, []
        return deltas

    def _aggregate_and_forward(self) -> None:
        """Run the manager side of the aggregation cascade."""
        nas = self.nas
        my_cluster = nas.cluster_of(self.host)
        if my_cluster is None or nas.cluster_manager_of(self.host) != self.host:
            return
        members = set(nas.cluster_members(my_cluster))
        self.member_samples = {
            h: s for h, s in self.member_samples.items() if h in members
        }
        if not self.member_samples:
            return
        cluster_avg = average_snapshots(self.member_samples.values())
        self.cluster_aggregates[my_cluster] = cluster_avg
        my_site = nas.site_of_cluster(my_cluster)
        site_mgr = nas.site_manager(my_site)
        if site_mgr != self.host:
            deltas = self._flush_deltas()
            extra = sum(d.wire_bytes() for d in deltas)
            self.endpoint.send_oneway(
                Addr(site_mgr, "na"),
                M.REPORT_AGGREGATE,
                Payload(data=("cluster", my_cluster, cluster_avg, deltas),
                        nbytes=SAMPLE_WIRE_BYTES + extra),
            )
            return
        # I am the site manager: average my clusters' aggregates.
        site_clusters = set(nas.clusters_of_site(my_site))
        relevant = [
            agg for name, agg in self.cluster_aggregates.items()
            if name in site_clusters
        ]
        if not relevant:
            return
        site_avg = average_snapshots(relevant)
        self.site_aggregates[my_site] = site_avg
        domain_mgr = nas.domain_manager()
        if domain_mgr != self.host:
            deltas = self._flush_deltas()
            extra = sum(d.wire_bytes() for d in deltas)
            self.endpoint.send_oneway(
                Addr(domain_mgr, "na"),
                M.REPORT_AGGREGATE,
                Payload(data=("site", my_site, site_avg, deltas),
                        nbytes=SAMPLE_WIRE_BYTES + extra),
            )
        else:
            # Top of the cascade: everything collected this tick lands
            # in the NAS-owned cluster aggregate (and the SLO watcher).
            nas.ingest_deltas(self._flush_deltas())

    def _probe_loop(self) -> None:
        kernel = self.world.kernel
        config = self.nas.config
        kernel.sleep(
            float(self.world.rng.stream(f"probe:{self.host}").uniform(
                config.probe_period * 0.5, config.probe_period
            ))
        )
        while self._alive():
            try:
                self._probe_once()
            except NodeFailedError:
                break
            kernel.sleep(config.probe_period)

    def _probe_once(self) -> None:
        nas = self.nas
        cluster = nas.cluster_of(self.host)
        if cluster is None:
            return
        manager = nas.cluster_manager(cluster)
        if manager == self.host:
            # I manage: probe every member.
            for member in list(nas.cluster_members(cluster)):
                if member == self.host:
                    continue
                if not self._peer_responds(member):
                    nas.handle_member_failure(cluster, member,
                                              detected_by=self.host)
        else:
            # Member: probe my manager.
            if not self._peer_responds(manager):
                nas.handle_manager_failure(cluster, manager,
                                           detected_by=self.host)

    def _peer_responds(self, peer: str) -> bool:
        try:
            self.endpoint.rpc(
                Addr(peer, "na"), M.PING,
                timeout=self.nas.config.failure_timeout,
            )
            ok = True
        except (RPCTimeoutError, NodeFailedError, TransportError):
            ok = False
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.emit(ev.NAS_PROBE, ts=self.world.now(), host=self.host,
                        actor=f"na@{self.host}", peer=peer, ok=ok)
            tracer.count("nas.probes.ok" if ok else "nas.probes.failed",
                         host=self.host)
        return ok

    # -- query API ----------------------------------------------------------------

    def latest_snapshot(self):
        sample = self.history.latest
        return sample.params if sample else None
