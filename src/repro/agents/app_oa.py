"""The application object agent (AppOA), one per registered application.

The AppOA lives on the application's home node.  It keeps the
*local-objects-table* for this application's objects: the unique handle,
the holder location (authoritative — the migration protocol keeps the
origin informed, paper Figure 3), pending invocation results and
executing flags.  Applications call the AppOA by direct local method
invocation; everything beyond the home node goes over the transport.

Also implemented here:

* the three invocation modes (sync / async / one-sided), with one worker
  process per asynchronous invocation (paper Section 5.2: "one thread for
  every asynchronous method invocation");
* RMI redirection on migrated objects (Figure 4): a stale holder answers
  ``Moved``; the caller re-resolves via the object's *origin* AppOA and
  retries;
* the AppOA half of automatic migration: on a ``CONSTRAINTS_VIOLATED``
  notification it moves its objects off violating nodes with
  same-cluster → same-site → anywhere locality preference.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.agents import messages as M
from repro.agents.holder_endpoints import HolderEndpoints
from repro.agents.messages import BatchFailure, Moved, UnknownObject
from repro.agents.objects import ClassRegistry, ObjectRef
from repro.errors import (
    MigrationError,
    ObjectStateError,
    PersistenceError,
    RegistrationError,
    RemoteInvocationError,
    RetriesExhaustedError,
)
from repro.obs import events as ev
from repro.obs import spans
from repro.rmi.handle import ResultHandle
from repro.rmi.multi import MultiHandle
from repro.transport import Addr

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import JSRuntime

_MAX_REDIRECTS = 8

#: default calls-per-message cap of the ainvoke coalescing buffer
DEFAULT_COALESCE_BATCH = 16


@dataclass
class RefEntry:
    """local-objects-table row for an object originated by this app."""

    ref: ObjectRef
    location: Addr
    pending: int = 0            # in-flight async/batched invocations
    #: futures completed when ``pending`` drops to zero (migrate drain)
    drain_waiters: list = field(default_factory=list)
    auto_migrations: int = 0
    meta: dict = field(default_factory=dict)


@dataclass
class _BatchCall:
    """One call travelling in an ``INVOKE_BATCH`` group: the wire triple
    plus its caller-side future and (optional) tracer span."""

    ref: ObjectRef
    method: str
    params: Any
    future: Any
    span: Any = None


class _InvokeCoalescer:
    """Per-destination buffering of async invocations.

    Inside a :meth:`AppOA.coalescing` window every ``ainvoke`` appends
    to the buffer of its resolved destination instead of shipping its
    own message.  A buffer ships as one ``INVOKE_BATCH`` when it reaches
    ``max_batch`` calls, on an explicit ``flush()``, or automatically on
    the next scheduler tick: a spawned flusher runs as soon as the
    buffering process yields, so a burst issued inside one tick
    piggybacks onto one message without ever stalling the application.
    """

    def __init__(self, app: "AppOA",
                 max_batch: int = DEFAULT_COALESCE_BATCH) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.app = app
        self.max_batch = max_batch
        self._buffers: dict[Addr, list[_BatchCall]] = {}
        self._lock = app.world.kernel.sanitizer.make_lock(
            f"InvokeCoalescer[{app.app_id}]"
        )
        self._flush_scheduled = False

    def add(self, ref: ObjectRef, method: str, params: Any) -> ResultHandle:
        app = self.app
        tracer = app.tracer
        call = _BatchCall(
            ref=ref, method=method, params=params,
            future=app.world.kernel.create_future(),
        )
        if tracer.enabled:
            call.span = tracer.begin_span(
                ev.OBJ_INVOKE, ts=app.world.now(), host=app.home,
                actor=str(app.addr), install=False, obj_id=ref.obj_id,
                method=method, mode="async", coalesced=True,
            )
        app._pending_incr(ref)
        dest = app._location_of(ref)
        ship: list[_BatchCall] | None = None
        schedule = False
        with self._lock:
            buffer = self._buffers.setdefault(dest, [])
            buffer.append(call)
            if len(buffer) >= self.max_batch:
                ship = self._buffers.pop(dest)
            elif not self._flush_scheduled:
                self._flush_scheduled = True
                schedule = True
        if ship is not None:
            app._spawn_batch(dest, ship, coalesced=True)
        if schedule:
            app.world.kernel.spawn(
                self._scheduled_flush,
                name=f"minvoke-flush@{app.app_id}", context={},
            )
        return ResultHandle(
            call.future,
            ctx=call.span.ctx if call.span is not None else None,
            label=f"{ref.obj_id}.{method}",
        )

    def _scheduled_flush(self) -> None:
        with self._lock:
            self._flush_scheduled = False
        self.flush()

    def flush(self) -> None:
        """Ship every buffered group now."""
        with self._lock:
            buffers, self._buffers = self._buffers, {}
        for dest, group in buffers.items():
            self.app._spawn_batch(dest, group, coalesced=True)


class AppOA(HolderEndpoints):
    def __init__(self, runtime: "JSRuntime", app_id: str, home: str) -> None:
        self.runtime = runtime
        self.world = runtime.world
        self.tracer = runtime.world.tracer
        self.app_id = app_id
        self.home = home
        self.addr = Addr(home, f"app:{app_id}")
        self.endpoint = runtime.transport.create_endpoint(self.addr)
        self.loaded_classes: set[str] = set()  # the app's local CLASSPATH
        self.refs: dict[str, RefEntry] = {}
        #: location cache for handles originated by *other* applications
        self.foreign_locations: dict[str, Addr] = {}
        #: in-flight async invocations on refs without a RefEntry row
        #: (remote-origin handles, static segments)
        self.foreign_pending: dict[str, int] = {}
        #: guards pending counters: caller and worker processes touch
        #: them concurrently (incr on issue, decr on completion)
        self._pending_lock = runtime.world.kernel.sanitizer.make_lock(
            f"AppOA[{app_id}].pending"
        )
        #: active ainvoke coalescing buffer (None outside coalescing())
        self._coalescer: _InvokeCoalescer | None = None
        self.watch_ids: list[str] = []
        self.closed = False
        self.init_holder()
        self.register_holder_handlers()
        self.endpoint.register(M.GET_LOCATION, self._h_get_location)
        self.endpoint.register(
            M.CONSTRAINTS_VIOLATED, self._h_constraints_violated
        )

    # The application's own classes are on its CLASSPATH: anything
    # registered globally can be instantiated *locally* without an
    # explicit codebase load (paper Section 4.3: class files must be
    # "locally in the CLASSPATH or at an arbitrary URL").
    def class_available(self, class_name: str) -> bool:
        return ClassRegistry.known(class_name)

    @property
    def migration_timeout(self):
        return self.runtime.shell.config.rpc_timeout

    def _check_open(self) -> None:
        if self.closed:
            raise RegistrationError(
                f"application {self.app_id} has unregistered"
            )

    @property
    def rpc_timeout(self) -> float | None:
        return self.runtime.shell.config.rpc_timeout

    # ------------------------------------------------------------------------
    # object creation / free
    # ------------------------------------------------------------------------

    def create_object(
        self, class_name: str, host: str, args: tuple = ()
    ) -> ObjectRef:
        self._check_open()
        obj_id = self.runtime.ids.next(f"{self.app_id}:obj")
        if host == self.home:
            # Locally generated objects live in the AppOA's own table.
            location = self.addr
            self.hold_new_object(obj_id, class_name, self.addr, args)
        else:
            location = Addr(host, "oa")
            self.endpoint.rpc(
                location,
                M.CREATE_OBJECT,
                (obj_id, class_name, self.addr, args),
                timeout=self.rpc_timeout,
            )
        ref = ObjectRef(obj_id, class_name, self.addr, location)
        san = self.world.kernel.sanitizer
        if san.enabled:
            san.access(f"AppOA[{self.app_id}]", f"refs[{obj_id}]",
                       scope=self.world.kernel)
        self.refs[obj_id] = RefEntry(ref=ref, location=location)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.OBJ_CREATE, ts=self.world.now(), host=location.host,
                actor=str(self.addr), obj_id=obj_id, class_name=class_name,
                location=str(location),
            )
            self.tracer.count("obj.created", host=self.home)
        return ref

    def free_object(self, ref: ObjectRef) -> None:
        self._check_open()
        entry = self._own_entry(ref)
        if entry.location == self.addr:
            self.drop_object(ref.obj_id)
        else:
            self.endpoint.rpc(
                entry.location, M.FREE_OBJECT, ref.obj_id,
                timeout=self.rpc_timeout,
            )
        san = self.world.kernel.sanitizer
        if san.enabled:
            san.access(f"AppOA[{self.app_id}]", f"refs[{ref.obj_id}]",
                       scope=self.world.kernel)
        del self.refs[ref.obj_id]
        if self.tracer.enabled:
            self.tracer.emit(
                ev.OBJ_FREE, ts=self.world.now(), host=entry.location.host,
                actor=str(self.addr), obj_id=ref.obj_id,
                class_name=ref.class_name, location=str(entry.location),
            )
            self.tracer.count("obj.freed", host=self.home)

    def _own_entry(self, ref: ObjectRef) -> RefEntry:
        entry = self.refs.get(ref.obj_id)
        if entry is None:
            raise ObjectStateError(
                f"object {ref.obj_id} is not (or no longer) registered "
                f"with application {self.app_id}"
            )
        return entry

    # ------------------------------------------------------------------------
    # location resolution (Figure 4)
    # ------------------------------------------------------------------------

    def _h_get_location(self, msg):
        obj_id = msg.payload
        entry = self.refs.get(obj_id)
        if entry is None:
            return UnknownObject(obj_id)
        return entry.location

    def _location_of(self, ref: ObjectRef) -> Addr:
        if ref.origin == self.addr:
            if ref.obj_id in self.objects and ref.obj_id not in self.refs:
                # Held here without a table row: a local static segment.
                return self.addr
            return self._own_entry(ref).location
        return self.foreign_locations.get(ref.obj_id, ref.location_hint)

    def _update_location(self, ref: ObjectRef, location: Addr) -> None:
        if ref.origin == self.addr:
            entry = self.refs.get(ref.obj_id)
            if entry is not None:
                entry.location = location
        else:
            self.foreign_locations[ref.obj_id] = location

    def _resolve_via_origin(self, ref: ObjectRef) -> Addr:
        """Ask the AppOA the object originates from for its location."""
        if ref.origin == self.addr:
            return self._own_entry(ref).location
        answer = self.endpoint.rpc(
            ref.origin, M.GET_LOCATION, ref.obj_id, timeout=self.rpc_timeout
        )
        if isinstance(answer, UnknownObject):
            raise ObjectStateError(
                f"origin {ref.origin} no longer knows object {ref.obj_id} "
                "(freed?)"
            )
        self._update_location(ref, answer)
        return answer

    # ------------------------------------------------------------------------
    # invocation (paper Section 4.5)
    # ------------------------------------------------------------------------

    def sinvoke(self, ref: ObjectRef, method: str, params: Any = ()) -> Any:
        """Synchronous (blocking) remote method invocation."""
        self._check_open()
        tracer = self.tracer
        if not tracer.enabled:
            return self._invoke_with_redirect(ref, method, params)
        t0 = self.world.now()
        span = tracer.begin_span(
            ev.OBJ_INVOKE, ts=t0, host=self.home, actor=str(self.addr),
            obj_id=ref.obj_id, method=method, mode="sync",
        )
        try:
            return self._invoke_with_redirect(ref, method, params)
        finally:
            now = self.world.now()
            tracer.end_span(span, ts=now)
            tracer.count("invoke.sync", host=self.home)
            tracer.observe("invoke.latency:sync", now - t0, host=self.home)

    def ainvoke(
        self, ref: ObjectRef, method: str, params: Any = ()
    ) -> ResultHandle:
        """Asynchronous invocation: returns a :class:`ResultHandle`
        immediately; a dedicated worker process carries the RMI.
        Inside a :meth:`coalescing` window the call is buffered and
        piggybacks onto a per-destination ``INVOKE_BATCH`` instead."""
        self._check_open()
        if self._coalescer is not None:
            return self._coalescer.add(ref, method, params)
        kernel = self.world.kernel
        future = kernel.create_future()
        self._pending_incr(ref)
        tracer = self.tracer
        inv_span = None
        if tracer.enabled:
            # Opened in the caller (install=False: the span belongs to
            # the worker, not to the caller's context) so the handle can
            # link its get_result wait span to this invocation.
            inv_span = tracer.begin_span(
                ev.OBJ_INVOKE, ts=self.world.now(), host=self.home,
                actor=str(self.addr), install=False,
                obj_id=ref.obj_id, method=method, mode="async",
            )

        def worker() -> None:
            t0 = self.world.now()
            if inv_span is not None:
                spans.set_context(inv_span.ctx)
            try:
                result = self._invoke_with_redirect(ref, method, params)
            except BaseException as exc:  # noqa: BLE001 - to the handle
                future.set_exception(exc)
            else:
                future.set_result(result)
            finally:
                self._pending_decr(ref)
                if inv_span is not None:
                    now = self.world.now()
                    tracer.end_span(inv_span, ts=now)
                    tracer.count("invoke.async", host=self.home)
                    tracer.observe("invoke.latency:async", now - t0, host=self.home)

        kernel.spawn(
            worker, name=f"ainvoke-{method}@{self.app_id}", context={}
        )
        return ResultHandle(
            future,
            ctx=inv_span.ctx if inv_span is not None else None,
            label=f"{ref.obj_id}.{method}",
        )

    def oinvoke(self, ref: ObjectRef, method: str, params: Any = ()) -> None:
        """One-sided invocation: no result, no completion wait."""
        self._check_open()
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin_span(
                ev.OBJ_INVOKE, ts=self.world.now(), host=self.home,
                actor=str(self.addr), obj_id=ref.obj_id, method=method,
                mode="oneway",
            )
        try:
            location = self._location_of(ref)
            if location == self.addr:
                # Local object: run it in the background without reply
                # traffic.  Exceptions are dropped, exactly as a remote
                # one-sided invocation would drop them (fire and forget).
                # The span is handed to the worker so its duration covers
                # the actual dispatch, not just this resolve-and-spawn.
                if span is not None and span.installed:
                    spans.set_context(span.prev)
                    span.installed = False

                def fire() -> None:
                    if span is not None:
                        spans.set_context(span.ctx)
                    try:
                        outcome = self.dispatch_invoke(
                            ref.obj_id, method, params
                        )
                        if isinstance(outcome, Moved) \
                                and outcome.hint is not None:
                            # Raced a migration: forward through the
                            # tombstone, as _h_oneway_invoke would.
                            self.endpoint.send_oneway(
                                outcome.hint, M.ONEWAY_INVOKE,
                                (ref.obj_id, method, params),
                            )
                    except Exception:  # noqa: BLE001 - one-sided semantics
                        pass
                    finally:
                        if span is not None:
                            tracer.end_span(span, ts=self.world.now())
                            tracer.count("invoke.oneway", host=self.home)

                self.world.kernel.spawn(
                    fire, name=f"oinvoke-{method}@{self.app_id}", context={}
                )
                return
            if self.runtime.transport.retry_policy is not None:
                # Reliability on: carry the one-sided call on an acked,
                # retried RPC so a dropped message does not silently
                # lose it.  Still fire-and-forget for the application.
                self._reliable_oneway(location, (ref.obj_id, method, params))
            else:
                self.endpoint.send_oneway(
                    location, M.ONEWAY_INVOKE, (ref.obj_id, method, params)
                )
        finally:
            if span is not None and span.installed:
                tracer.end_span(span, ts=self.world.now())
                tracer.count("invoke.oneway", host=self.home)

    def _reliable_oneway(self, location: Addr, payload: Any) -> None:
        """Ship a one-sided call via a retried RPC on a worker process.

        ``ONEWAY_INVOKE`` replies ``None``, which here serves purely as
        a delivery ack.  Transport failures (including exhausted
        retries) are swallowed: one-sided semantics promise the caller
        nothing, so best-effort-with-retries strictly improves on the
        bare ``send_oneway`` without changing the API contract."""
        from repro.errors import TransportError

        def worker() -> None:
            try:
                self.endpoint.rpc(
                    location, M.ONEWAY_INVOKE, payload,
                    timeout=self.rpc_timeout,
                )
            except TransportError:
                pass

        self.world.kernel.spawn(
            worker, name=f"oinvoke-reliable@{self.app_id}", context={}
        )

    # ------------------------------------------------------------------------
    # bulk invocation (extension: per-destination request batching)
    # ------------------------------------------------------------------------

    def minvoke(self, calls: Any, mapper: Any = None) -> MultiHandle:
        """Bulk invocation: group ``(ref, method, params)`` calls by
        resolved destination and ship each group as one
        ``INVOKE_BATCH`` message.  Returns a :class:`MultiHandle` with
        one handle per call, in request order; per-call failures and
        ``Moved`` redirects stay per-call (one stale or raising call
        never fails its batch-mates)."""
        self._check_open()
        kernel = self.world.kernel
        tracer = self.tracer
        items: list[_BatchCall] = []
        groups: dict[Addr, list[_BatchCall]] = {}
        for ref, method, params in calls:
            call = _BatchCall(
                ref=ref, method=method, params=params,
                future=kernel.create_future(),
            )
            self._pending_incr(ref)
            items.append(call)
            groups.setdefault(self._location_of(ref), []).append(call)
        for dest, group in groups.items():
            bspan = None
            if tracer.enabled:
                now = self.world.now()
                # The batch span parents every per-call span of its
                # group; install=False on all of them — they belong to
                # the shipping worker, not to this caller.
                bspan = tracer.begin_span(
                    ev.OBJ_INVOKE_BATCH, ts=now, host=self.home,
                    actor=str(self.addr), install=False, dest=str(dest),
                    size=len(group), coalesced=False,
                )
                for call in group:
                    call.span = tracer.begin_span(
                        ev.OBJ_INVOKE, ts=now, host=self.home,
                        actor=str(self.addr), install=False,
                        parent=bspan.ctx, obj_id=call.ref.obj_id,
                        method=call.method, mode="batch",
                    )
            self._spawn_batch(dest, group, bspan=bspan)
        return MultiHandle(
            [
                ResultHandle(
                    call.future,
                    ctx=call.span.ctx if call.span is not None else None,
                    label=f"{call.ref.obj_id}.{call.method}",
                )
                for call in items
            ],
            mapper=mapper,
        )

    @contextmanager
    def coalescing(self, max_batch: int = DEFAULT_COALESCE_BATCH):
        """Context manager: buffer ``ainvoke`` bursts per destination
        and ship each group as one ``INVOKE_BATCH``.  Buffers flush at
        ``max_batch`` calls, on :meth:`flush_invokes`, automatically on
        the next scheduler tick, and when the window closes."""
        self._check_open()
        previous = self._coalescer
        coalescer = _InvokeCoalescer(self, max_batch)
        self._coalescer = coalescer
        try:
            yield coalescer
        finally:
            self._coalescer = previous
            coalescer.flush()

    def flush_invokes(self) -> None:
        """Ship anything buffered by an active :meth:`coalescing`
        window immediately."""
        if self._coalescer is not None:
            self._coalescer.flush()

    def _spawn_batch(self, dest: Addr, group: list[_BatchCall],
                     bspan: Any = None, coalesced: bool = False) -> None:
        """Ship one destination group on a dedicated worker process."""
        tracer = self.tracer
        if bspan is None and tracer.enabled:
            bspan = tracer.begin_span(
                ev.OBJ_INVOKE_BATCH, ts=self.world.now(), host=self.home,
                actor=str(self.addr), install=False, dest=str(dest),
                size=len(group), coalesced=coalesced,
            )

        def worker() -> None:
            if bspan is not None:
                spans.set_context(bspan.ctx)
            try:
                self._run_batch(dest, group)
            finally:
                if tracer.enabled:
                    tracer.count("invoke.batched", len(group), host=self.home)
                    tracer.count("invoke.batch.messages", host=self.home)
                    tracer.observe("batch.size", len(group), host=self.home)
                if bspan is not None:
                    tracer.end_span(bspan, ts=self.world.now())

        self.world.kernel.spawn(
            worker, name=f"minvoke@{self.app_id}->{dest.host}", context={}
        )

    def _run_batch(self, dest: Addr, group: list[_BatchCall]) -> None:
        payload = [(c.ref.obj_id, c.method, c.params) for c in group]
        remote = dest != self.addr
        if not remote:
            outcomes = self.dispatch_invoke_batch(payload)
        else:
            try:
                outcomes = self.endpoint.rpc(
                    dest, M.INVOKE_BATCH, payload, timeout=self.rpc_timeout
                )
            except RetriesExhaustedError:
                # Graceful degradation: the batch message is poisoned
                # (too big for the loss rate, or the destination is
                # sick), but the calls need not share its fate — retry
                # each slot as a scalar invocation so only genuinely
                # failed slots surface errors.
                if self.tracer.enabled:
                    self.tracer.count("invoke.batch.degraded",
                                      host=self.home)
                self._degrade_batch(group)
                return
            except BaseException as exc:  # noqa: BLE001 - to every handle
                for call in group:
                    self._finish_call(call, exc=exc)
                return
        if not isinstance(outcomes, list) or len(outcomes) != len(group):
            exc = ObjectStateError(
                f"malformed INVOKE_BATCH reply from {dest}: {outcomes!r}"
            )
            for call in group:
                self._finish_call(call, exc=exc)
            return
        for call, outcome in zip(group, outcomes):
            if isinstance(outcome, (Moved, UnknownObject)):
                # Per-call stale slot: chase this one redirect on its
                # own (Figure 4) so a migrated object does not fail its
                # batch-mates.
                if isinstance(outcome, Moved) and outcome.hint is not None:
                    self._update_location(call.ref, outcome.hint)
                prev = None
                if call.span is not None:
                    prev = spans.set_context(call.span.ctx)
                try:
                    result = self._invoke_with_redirect(
                        call.ref, call.method, call.params
                    )
                except BaseException as exc:  # noqa: BLE001 - to the handle
                    self._finish_call(call, exc=exc)
                else:
                    self._finish_call(call, result=result)
                finally:
                    if call.span is not None:
                        spans.set_context(prev)
            elif isinstance(outcome, BatchFailure):
                exc = outcome.exc
                if remote and not isinstance(exc, RemoteInvocationError):
                    # Same caller-facing family as a scalar remote
                    # invocation failure.
                    exc = RemoteInvocationError(
                        f"batched call {call.ref.obj_id}.{call.method} at "
                        f"{dest} raised {outcome.exc!r}",
                        cause=outcome.exc,
                    )
                self._finish_call(call, exc=exc)
            else:
                self._finish_call(call, result=outcome)

    def _degrade_batch(self, group: list[_BatchCall]) -> None:
        """Per-slot scalar fallback after a batch-wide retry exhaustion.

        Each slot re-resolves and retries independently (fresh redirect
        chase, fresh retry budget), so a migrated-away or restarted
        holder rescues its slots while truly dead ones fail with their
        own :class:`RetriesExhaustedError`."""
        for call in group:
            prev = None
            if call.span is not None:
                prev = spans.set_context(call.span.ctx)
            try:
                result = self._invoke_with_redirect(
                    call.ref, call.method, call.params
                )
            except BaseException as exc:  # noqa: BLE001 - to the handle
                self._finish_call(call, exc=exc)
            else:
                self._finish_call(call, result=result)
            finally:
                if call.span is not None:
                    spans.set_context(prev)

    def _finish_call(self, call: _BatchCall, result: Any = None,
                     exc: BaseException | None = None) -> None:
        try:
            if exc is not None:
                call.future.set_exception(exc)
            else:
                call.future.set_result(result)
        finally:
            self._pending_decr(call.ref)
            if call.span is not None:
                if exc is not None:
                    self.tracer.end_span(
                        call.span, ts=self.world.now(), error=True
                    )
                else:
                    self.tracer.end_span(call.span, ts=self.world.now())

    # ------------------------------------------------------------------------
    # pending-invocation tracking (drained before migration)
    # ------------------------------------------------------------------------

    def _pending_incr(self, ref: ObjectRef) -> None:
        entry = self.refs.get(ref.obj_id)
        with self._pending_lock:
            if entry is not None:
                entry.pending += 1
            else:
                # Remote-origin handles and static segments have no
                # RefEntry row but their in-flight calls count too.
                self.foreign_pending[ref.obj_id] = (
                    self.foreign_pending.get(ref.obj_id, 0) + 1
                )

    def _pending_decr(self, ref: ObjectRef) -> None:
        entry = self.refs.get(ref.obj_id)
        drained = []
        with self._pending_lock:
            if entry is not None and entry.pending > 0:
                entry.pending -= 1
                if entry.pending == 0 and entry.drain_waiters:
                    drained = entry.drain_waiters
                    entry.drain_waiters = []
            else:
                left = self.foreign_pending.get(ref.obj_id)
                if left is not None:
                    if left <= 1:
                        del self.foreign_pending[ref.obj_id]
                    else:
                        self.foreign_pending[ref.obj_id] = left - 1
        for waiter in drained:
            waiter.set_result(None)

    def pending_invocations(self, obj_id: str) -> int:
        """In-flight async/batched invocations issued through this
        AppOA for ``obj_id`` (own and foreign refs alike)."""
        entry = self.refs.get(obj_id)
        with self._pending_lock:
            own = entry.pending if entry is not None else 0
            return own + self.foreign_pending.get(obj_id, 0)

    def _invoke_with_redirect(
        self, ref: ObjectRef, method: str, params: Any
    ) -> Any:
        asked_origin = False
        location = self._location_of(ref)
        for _ in range(_MAX_REDIRECTS):
            if location == self.addr:
                outcome = self.dispatch_invoke(ref.obj_id, method, params)
            else:
                outcome = self.endpoint.rpc(
                    location,
                    M.INVOKE,
                    (ref.obj_id, method, params),
                    timeout=self.rpc_timeout,
                )
            if isinstance(outcome, Moved):
                # Stale reference: chase the tombstone hint if present,
                # otherwise ask the origin (Figure 4).
                if outcome.hint is not None:
                    location = outcome.hint
                    self._update_location(ref, location)
                else:  # pragma: no cover - tombstones always carry hints
                    location = self._resolve_via_origin(ref)
                    asked_origin = True
                continue
            if isinstance(outcome, UnknownObject):
                if asked_origin:
                    raise ObjectStateError(
                        f"object {ref.obj_id} not found anywhere "
                        "(freed while invoking?)"
                    )
                location = self._resolve_via_origin(ref)
                asked_origin = True
                continue
            return outcome
        raise ObjectStateError(
            f"gave up invoking {method} on {ref.obj_id} after "
            f"{_MAX_REDIRECTS} redirects"
        )

    # ------------------------------------------------------------------------
    # migration (paper Figure 3: ao -> pa1 -> pa2)
    # ------------------------------------------------------------------------

    def migrate_object(self, ref: ObjectRef, target_host: str) -> Addr:
        self._check_open()
        entry = self._own_entry(ref)
        src = entry.location
        dst = self.addr if target_host == self.home else Addr(target_host, "oa")
        if src == dst:
            return dst
        self._drain_pending(entry)
        t0 = self.world.now()
        tracer = self.tracer
        mspan = None
        if tracer.enabled:
            mspan = tracer.begin_span(
                ev.MIGRATE, ts=t0, host=self.home, actor=str(self.addr),
                obj_id=ref.obj_id, src=str(src), dst=str(dst),
            )
        try:
            if src == self.addr:
                # The object lives in our own table: run pa1's side inline.
                outcome = self._h_migrate_out(
                    type("_Local", (), {"payload": (ref.obj_id, dst)})()
                )
            else:
                outcome = self.endpoint.rpc(
                    src, M.MIGRATE_OUT, (ref.obj_id, dst),
                    timeout=self.rpc_timeout,
                )
            if not isinstance(outcome, dict) or "new_location" not in outcome:
                raise MigrationError(
                    f"unexpected migration outcome {outcome!r}"
                )
        except BaseException:
            if mspan is not None:
                tracer.end_span(mspan, ts=self.world.now(), error=True)
            raise
        entry.location = dst
        if mspan is not None:
            duration = self.world.now() - t0
            tracer.end_span(mspan, ts=self.world.now())
            tracer.count("migrations", host=self.home)
            tracer.observe("migrate.duration", duration, host=self.home)
        return dst

    def _drain_pending(self, entry: RefEntry) -> None:
        """Wait for this app's in-flight async invocations on the object
        before migrating it (paper: "migration is delayed until all
        unfinished method invocations have completed").  The holder-side
        quiescence wait only covers invocations already dispatched
        there; calls issued here may still be on the wire.  The wait is
        bounded by ``shell.config.migrate_drain_timeout`` (None = drain
        fully): on expiry migration proceeds and the stragglers are
        handed off to the tombstone redirect — safe, but worth a
        sanitizer finding because the application is racing itself."""
        if entry.pending <= 0:
            return
        self.flush_invokes()  # buffered coalesced calls count as pending
        kernel = self.world.kernel
        drain_start = self.world.now()
        timeout = self.runtime.shell.config.migrate_drain_timeout
        # Event-driven, not polled: _pending_decr completes the waiter
        # on the 0-transition, so the drain costs one wakeup instead of
        # a context-switch per poll tick (which starves long runs).
        waiter = kernel.create_future()
        with self._pending_lock:
            if entry.pending <= 0:
                drained = True
            else:
                entry.drain_waiters.append(waiter)
                drained = False
        if not drained:
            drained = waiter.wait(timeout)
            if not drained:
                with self._pending_lock:
                    if waiter in entry.drain_waiters:
                        entry.drain_waiters.remove(waiter)
        tracer = self.tracer
        if tracer.enabled:
            # How long invocations stayed pending against this migration;
            # the SLO watcher's pending-age rule reads the windowed max.
            tracer.observe("migrate.pending_age",
                           self.world.now() - drain_start, host=self.home)
        if not drained and entry.pending > 0:
            san = kernel.sanitizer
            if san.enabled:
                san.migrate_with_pending(
                    f"AppOA[{self.app_id}]", entry.ref.obj_id, entry.pending
                )

    # ------------------------------------------------------------------------
    # persistence (paper Section 4.7)
    # ------------------------------------------------------------------------

    def store_object(self, ref: ObjectRef, key: str | None = None) -> str:
        self._check_open()
        entry = self._own_entry(ref)
        tracer = self.tracer
        pspan = None
        if tracer.enabled:
            pspan = tracer.begin_span(
                ev.PERSIST_STORE, ts=self.world.now(), host=self.home,
                actor=str(self.addr), obj_id=ref.obj_id,
            )
        try:
            if entry.location == self.addr:
                blob, obj_entry = self.serialize_object(ref.obj_id)
                class_name = obj_entry.class_name
            else:
                payload = self.endpoint.rpc(
                    entry.location, M.FETCH_STATE, ref.obj_id,
                    timeout=self.rpc_timeout,
                )
                class_name, blob = payload.data if hasattr(payload, "data") \
                    else payload
            stored = self.runtime.persistent_store.save(
                class_name, blob, key=key
            )
        except BaseException:
            if pspan is not None:
                tracer.end_span(pspan, ts=self.world.now(), error=True)
            raise
        if pspan is not None:
            tracer.end_span(pspan, ts=self.world.now(), key=stored)
            tracer.count("persist.stores", host=self.home)
        # Remember the latest checkpoint; the optional failure-recovery
        # extension (paper: future work) restores from it.
        entry.meta["checkpoint"] = stored
        return stored

    def recover_from_failure(self, host: str) -> list[str]:
        """EXTENSION (off by default; paper Section 5.1 calls OAS
        recovery future work): re-create objects that lived on a failed
        node from their most recent persistent checkpoint, on a fresh
        node.  Objects without a checkpoint are lost, as in the paper.
        Returns the obj_ids recovered."""
        if self.closed:
            return []
        recovered: list[str] = []
        for obj_id, entry in list(self.refs.items()):
            if entry.location.host != host:
                continue
            key = entry.meta.get("checkpoint")
            if key is None:
                continue
            record = self.runtime.persistent_store.load(key)
            if record is None:
                continue
            target = self.runtime.choose_migration_target(host)
            if target is None:
                continue
            class_name, blob = record
            if target == self.home:
                location = self.addr
                self.hold_from_state(obj_id, class_name, blob, self.addr)
            else:
                from repro.util.serialization import Payload

                location = Addr(target, "oa")
                self.endpoint.rpc(
                    location,
                    M.CREATE_FROM_STATE,
                    Payload(data=(obj_id, class_name, blob, self.addr),
                            nbytes=len(blob)),
                    timeout=self.rpc_timeout,
                )
            entry.location = location
            recovered.append(obj_id)
        return recovered

    def load_object(self, key: str, host: str | None = None) -> ObjectRef:
        self._check_open()
        tracer = self.tracer
        pspan = None
        if tracer.enabled:
            pspan = tracer.begin_span(
                ev.PERSIST_LOAD, ts=self.world.now(), host=self.home,
                actor=str(self.addr), key=key,
            )
        try:
            record = self.runtime.persistent_store.load(key)
            if record is None:
                raise PersistenceError(f"no persistent object under {key!r}")
            class_name, blob = record
            obj_id = self.runtime.ids.next(f"{self.app_id}:obj")
            host = host or self.home
            if host == self.home:
                location = self.addr
                self.hold_from_state(obj_id, class_name, blob, self.addr)
            else:
                from repro.util.serialization import Payload

                location = Addr(host, "oa")
                self.endpoint.rpc(
                    location,
                    M.CREATE_FROM_STATE,
                    Payload(data=(obj_id, class_name, blob, self.addr),
                            nbytes=len(blob)),
                    timeout=self.rpc_timeout,
                )
        except BaseException:
            if pspan is not None:
                tracer.end_span(pspan, ts=self.world.now(), error=True)
            raise
        if pspan is not None:
            tracer.end_span(pspan, ts=self.world.now(), obj_id=obj_id)
            tracer.count("persist.loads", host=self.home)
        ref = ObjectRef(obj_id, class_name, self.addr, location)
        san = self.world.kernel.sanitizer
        if san.enabled:
            san.access(f"AppOA[{self.app_id}]", f"refs[{obj_id}]",
                       scope=self.world.kernel)
        self.refs[obj_id] = RefEntry(ref=ref, location=location)
        return ref

    # ------------------------------------------------------------------------
    # automatic migration (AppOA half)
    # ------------------------------------------------------------------------

    def _h_constraints_violated(self, msg):
        watch_id, violating, constraints = msg.payload
        violating = set(violating)
        plan = []
        for obj_id, entry in list(self.refs.items()):
            if entry.location.host not in violating:
                continue
            target = self.runtime.choose_migration_target(
                entry.location.host, constraints, exclude=violating
            )
            if target is None:
                continue  # nowhere satisfies the constraints; stay put
            plan.append((entry, target))
        if not plan:
            return None

        # Migrate on a worker, not in this handler: migrate_object now
        # drains pending invocations, and a pending worker may need
        # *this* mailbox (re-resolving a moved object through the
        # origin) — migrating inline would deadlock the two.
        def worker() -> None:
            for entry, target in plan:
                try:
                    self.migrate_object(entry.ref, target)
                    entry.auto_migrations += 1
                except (MigrationError, ObjectStateError):
                    continue

        self.world.kernel.spawn(
            worker, name=f"auto-migrate@{self.app_id}", context={}
        )
        return None

    # ------------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------------

    def unregister(self) -> None:
        """Release everything this application holds (paper Section 4.1:
        un-registration lets JRS drop book-keeping and free memory)."""
        if self.closed:
            return
        self.flush_invokes()  # ship any still-buffered coalesced calls
        for obj_id, entry in list(self.refs.items()):
            try:
                self.free_object(entry.ref)
            except Exception:  # noqa: BLE001 - best effort cleanup
                san = self.world.kernel.sanitizer
                if san.enabled:
                    san.access(f"AppOA[{self.app_id}]", f"refs[{obj_id}]",
                       scope=self.world.kernel)
                self.refs.pop(obj_id, None)
        for watch_id in self.watch_ids:
            try:
                self.endpoint.rpc(
                    Addr(self.home, "oa"), M.UNREGISTER_VA, watch_id,
                    timeout=self.rpc_timeout,
                )
            except Exception:  # noqa: BLE001
                pass
        self.closed = True
        self.endpoint.close()
        self.runtime.forget_app(self.app_id)
