"""The Network Agent System: layout, manager bookkeeping, fault tolerance.

Physical layout — which hosts form which physical cluster and site — is
configured by the JS-Shell ("The nodes on which JRS is installed are
configured by using the JS-Shell").  The NAS owns that layout, assigns
managers (first host of a cluster manages it; the first cluster's manager
manages the site; the first site's manager manages the domain) and
executes the paper's simplified fault-tolerance protocol:

* a failed non-manager node is simply released by its cluster manager;
* a failed manager is released by its (predefined) backup, which takes
  over and notifies the shell, its lower/higher managers and the nodes of
  its component; a further backup is then activated.

The OAS is *not* informed (paper: "currently the object agent system does
not exploit information about system failures"); an optional callback
hook exists for the extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.agents.network_agent import NetworkAgent
from repro.errors import ShellError
from repro.obs import events as ev
from repro.sysmon import Snapshot
from repro.sysmon.sampler import sample_all
from repro.transport import Transport
from repro.varch.managers import ManagerAssignment, assign_cluster_managers


@dataclass
class NASConfig:
    monitor_period: float = 5.0
    probe_period: float = 5.0
    failure_timeout: float = 2.0
    history_depth: int = 4
    n_backups: int = 2
    #: ship per-host metrics deltas on the monitor heartbeat and keep a
    #: ClusterMetrics aggregate (+ SLO watcher) at the domain manager
    telemetry: bool = True
    #: sliding windows retained per host in the aggregate
    telemetry_windows: int = 16
    #: SLO rule lines (None -> repro.obs.slo.DEFAULT_RULES)
    slo_rules: tuple[str, ...] | None = None
    #: windows between repeated alerts for a persisting breach
    slo_refire_windows: int = 8


@dataclass
class NASEvent:
    time: float
    kind: str  # "node-released" | "manager-takeover"
    detail: dict = field(default_factory=dict)


class NetworkAgentSystem:
    def __init__(
        self,
        world,
        transport: Transport,
        layout: dict[str, dict[str, list[str]]],
        config: NASConfig | None = None,
    ) -> None:
        """``layout``: ``{site: {cluster: [hosts]}}`` — the physical
        hierarchy, one domain."""
        self.world = world
        self.transport = transport
        self.config = config or NASConfig()
        self.layout = {
            site: {cl: list(hosts) for cl, hosts in clusters.items()}
            for site, clusters in layout.items()
        }
        self._validate_layout()
        self.managers: dict[str, ManagerAssignment] = {
            cluster: assign_cluster_managers(hosts, self.config.n_backups)
            for site in self.layout.values()
            for cluster, hosts in site.items()
        }
        self.agents: dict[str, NetworkAgent] = {}
        self.events: list[NASEvent] = []
        # The telemetry plane's receiving end.  Owned by the NAS (not a
        # per-host agent) so the aggregate survives a domain-manager
        # takeover: the successor's heartbeat keeps ingesting into the
        # same ClusterMetrics.
        if self.config.telemetry:
            from repro.obs.slo import SLOWatcher
            from repro.obs.timeseries import ClusterMetrics

            self.telemetry: ClusterMetrics | None = ClusterMetrics(
                window_depth=self.config.telemetry_windows)
            self.slo: SLOWatcher | None = SLOWatcher(
                self.config.slo_rules,
                refire_windows=self.config.slo_refire_windows)
        else:
            self.telemetry = None
            self.slo = None
        #: extension hook (off-path per paper): called on every failure
        self.failure_listeners: list[Callable[[str], None]] = []
        self._started = False
        #: guards membership state (layout/managers/agents/events): under
        #: the wall-clock kernel several agents' probe loops can detect
        #: failures concurrently and race their release/takeover updates.
        self._lock = world.kernel.sanitizer.make_lock("NAS._lock")

    def _validate_layout(self) -> None:
        seen: set[str] = set()
        for site, clusters in self.layout.items():
            if not clusters:
                raise ShellError(f"site {site!r} has no clusters")
            for cluster, hosts in clusters.items():
                if not hosts:
                    raise ShellError(f"cluster {cluster!r} has no hosts")
                for host in hosts:
                    if host in seen:
                        raise ShellError(f"host {host!r} appears twice")
                    if host not in self.world.machines:
                        raise ShellError(f"unknown host {host!r}")
                    seen.add(host)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for host in self.known_hosts():
            self._spawn_agent(host)

    def _spawn_agent(self, host: str) -> None:
        agent = NetworkAgent(self, host)
        with self._lock:
            san = self.world.kernel.sanitizer
            if san.enabled:
                san.access("NAS", f"agents[{host}]",
                           scope=self.world.kernel)
            self.agents[host] = agent
        if self._started:
            agent.start()

    # -- layout queries ----------------------------------------------------------

    def known_hosts(self) -> list[str]:
        return [
            h
            for clusters in self.layout.values()
            for hosts in clusters.values()
            for h in hosts
        ]

    def cluster_of(self, host: str) -> str | None:
        for clusters in self.layout.values():
            for cluster, hosts in clusters.items():
                if host in hosts:
                    return cluster
        return None

    def site_of_cluster(self, cluster: str) -> str:
        for site, clusters in self.layout.items():
            if cluster in clusters:
                return site
        raise ShellError(f"unknown cluster {cluster!r}")

    def site_of(self, host: str) -> str | None:
        cluster = self.cluster_of(host)
        return self.site_of_cluster(cluster) if cluster else None

    def cluster_members(self, cluster: str) -> list[str]:
        for clusters in self.layout.values():
            if cluster in clusters:
                return clusters[cluster]
        raise ShellError(f"unknown cluster {cluster!r}")

    def clusters_of_site(self, site: str) -> list[str]:
        try:
            return list(self.layout[site])
        except KeyError:
            raise ShellError(f"unknown site {site!r}") from None

    # -- manager queries (nesting rule by construction) ------------------------

    def cluster_manager(self, cluster: str) -> str:
        return self.managers[cluster].manager

    def cluster_manager_of(self, host: str) -> str | None:
        cluster = self.cluster_of(host)
        return self.cluster_manager(cluster) if cluster else None

    def site_manager(self, site: str) -> str:
        first_cluster = self.clusters_of_site(site)[0]
        return self.cluster_manager(first_cluster)

    def domain_manager(self) -> str:
        first_site = next(iter(self.layout))
        return self.site_manager(first_site)

    def is_manager(self, host: str) -> bool:
        return any(a.manager == host for a in self.managers.values())

    def is_backup(self, host: str) -> bool:
        return any(host in a.backups for a in self.managers.values())

    # -- monitored-data queries ---------------------------------------------------

    def latest_snapshot(self, host: str) -> Snapshot:
        """Most recent monitored sample for ``host`` (fresh sample before
        the first monitoring tick)."""
        agent = self.agents.get(host)
        if agent is not None:
            snap = agent.latest_snapshot()
            if snap is not None:
                return snap
        return sample_all(
            self.world.machine(host), self.world.now(), self.world.topology
        )

    def cluster_average(self, cluster: str) -> Snapshot | None:
        manager = self.cluster_manager(cluster)
        agent = self.agents.get(manager)
        if agent is None:
            return None
        agg = agent.cluster_aggregates.get(cluster)
        return agg.params if agg else None

    def site_average(self, site: str) -> Snapshot | None:
        manager = self.site_manager(site)
        agent = self.agents.get(manager)
        if agent is None:
            return None
        agg = agent.site_aggregates.get(site)
        return agg.params if agg else None

    def domain_average(self) -> Snapshot | None:
        from repro.sysmon import average_snapshots

        manager = self.domain_manager()
        agent = self.agents.get(manager)
        if agent is None:
            return None
        aggregates = dict(agent.site_aggregates)
        # The domain manager's own site average lives locally too.
        for site in self.layout:
            if self.site_manager(site) == manager:
                own = agent.site_aggregates.get(site)
                if own:
                    aggregates[site] = own
        if not aggregates:
            return None
        return average_snapshots(aggregates.values()).params

    # -- telemetry plane -----------------------------------------------------------

    @property
    def telemetry_enabled(self) -> bool:
        return self.telemetry is not None

    def ingest_deltas(self, deltas) -> None:
        """Domain-manager side: fold heartbeat-shipped metrics deltas
        into the cluster aggregate and run the SLO watcher over each
        host window that just landed.  Only ever called from the current
        domain manager's monitor tick, so ingestion is serialized."""
        if self.telemetry is None:
            return
        tracer = self.world.tracer
        for delta in deltas:
            self.telemetry.ingest(delta)
            if tracer.enabled:
                tracer.count("nas.telemetry.windows", host=delta.host)
                tracer.count("nas.telemetry.bytes", delta.wire_bytes(),
                             host=delta.host)
            if self.slo is not None:
                self.slo.observe_window(self.telemetry, delta.host,
                                        self.world.now(), tracer)

    def cluster_metrics(self):
        """The live :class:`~repro.obs.timeseries.ClusterMetrics`
        aggregate (None when telemetry is off)."""
        return self.telemetry

    def history_document(self) -> dict:
        """A JSON-safe view of NAS state for incident bundles: layout,
        manager assignments, the fault-tolerance event log, and each
        live agent's latest monitored sample."""
        samples = {}
        for host, agent in sorted(self.agents.items()):
            snap = agent.latest_snapshot()
            if snap is None:
                continue
            samples[host] = {
                getattr(param, "name", str(param)):
                    value if isinstance(value, (int, float, str, bool))
                    else repr(value)
                for param, value in snap.items()
            }
        return {
            "layout": {
                site: {cl: list(hosts) for cl, hosts in clusters.items()}
                for site, clusters in self.layout.items()
            },
            "managers": {
                cluster: {"manager": a.manager, "backups": list(a.backups)}
                for cluster, a in sorted(self.managers.items())
            },
            "events": [
                {"time": e.time, "kind": e.kind, "detail": dict(e.detail)}
                for e in self.events
            ],
            "samples": samples,
            "telemetry_windows":
                self.telemetry.ingested if self.telemetry else 0,
        }

    # -- shell-driven membership ----------------------------------------------------

    def add_node(self, host: str, cluster: str, site: str) -> None:
        if host not in self.world.machines:
            raise ShellError(f"unknown host {host!r}")
        if self.cluster_of(host) is not None:
            raise ShellError(f"host {host!r} already registered")
        with self._lock:
            san = self.world.kernel.sanitizer
            if san.enabled:
                san.access("NAS", f"managers[{cluster}]",
                           scope=self.world.kernel)
            clusters = self.layout.setdefault(site, {})
            hosts = clusters.setdefault(cluster, [])
            hosts.append(host)
            if cluster not in self.managers:
                self.managers[cluster] = assign_cluster_managers(
                    hosts, self.config.n_backups
                )
            elif len(self.managers[cluster].backups) < self.config.n_backups:
                self.managers[cluster].backups.append(host)
        if host not in self.agents:
            self._spawn_agent(host)

    def remove_node(self, host: str) -> None:
        cluster = self.cluster_of(host)
        if cluster is None:
            raise ShellError(f"host {host!r} is not registered")
        self._release(cluster, host, reason="shell-remove")

    # -- fault tolerance ----------------------------------------------------------

    def _release(self, cluster: str, host: str, reason: str) -> None:
        with self._lock:
            members = self.cluster_members(cluster)
            if host not in members:
                return  # already released by a concurrent detector
            san = self.world.kernel.sanitizer
            if san.enabled:
                san.access("NAS", f"managers[{cluster}]",
                           scope=self.world.kernel)
                san.access("NAS", f"agents[{host}]",
                           scope=self.world.kernel)
            members.remove(host)
            assignment = self.managers[cluster]
            if assignment.manager == host or host in assignment.backups:
                self.managers[cluster] = assignment.without(host)
            agent = self.agents.pop(host, None)
            self.events.append(
                NASEvent(
                    self.world.now(),
                    "node-released",
                    {"host": host, "cluster": cluster, "reason": reason},
                )
            )
            if not members:
                # Last node gone: drop the empty cluster.
                site = self.site_of_cluster(cluster)
                del self.layout[site][cluster]
                del self.managers[cluster]
        # Endpoint teardown and listener callbacks can message other
        # agents; keep them outside the membership lock.
        if agent is not None:
            agent.endpoint.close()
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.emit(
                ev.NAS_RELEASE, ts=self.world.now(), host=host, actor="nas",
                cluster=cluster, reason=reason,
            )
            tracer.count("nas.released", host=host)
        for listener in self.failure_listeners:
            listener(host)

    def handle_member_failure(
        self, cluster: str, member: str, detected_by: str
    ) -> None:
        """A cluster manager found a non-manager member silent."""
        if member not in self.cluster_members(cluster):
            return
        self._release(cluster, member, reason=f"probe by {detected_by}")

    def handle_manager_failure(
        self, cluster: str, manager: str, detected_by: str
    ) -> None:
        """A member found its manager silent.  Only the predefined first
        backup performs the takeover (paper: "a backup manager within the
        same hierarchy releases the manager and takes over")."""
        with self._lock:
            assignment = self.managers.get(cluster)
            if assignment is None or assignment.manager != manager:
                return  # someone already took over
            if not assignment.backups or assignment.backups[0] != detected_by:
                return  # not this node's job
            san = self.world.kernel.sanitizer
            if san.enabled:
                san.access("NAS", f"managers[{cluster}]",
                           scope=self.world.kernel)
                san.access("NAS", f"agents[{manager}]",
                           scope=self.world.kernel)
            was_site_mgr = any(
                self.site_manager(site) == manager for site in self.layout
            )
            was_domain_mgr = self.domain_manager() == manager
            members = self.cluster_members(cluster)
            if manager in members:
                members.remove(manager)
            self.managers[cluster] = assignment.successor()
            agent = self.agents.pop(manager, None)
            self.events.append(
                NASEvent(
                    self.world.now(),
                    "manager-takeover",
                    {
                        "cluster": cluster,
                        "failed": manager,
                        "new_manager": self.managers[cluster].manager,
                        "was_site_manager": was_site_mgr,
                        "was_domain_manager": was_domain_mgr,
                    },
                )
            )
        # Endpoint teardown and listener callbacks message other agents;
        # keep them outside the membership lock.
        if agent is not None:
            agent.endpoint.close()
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.emit(
                ev.NAS_TAKEOVER, ts=self.world.now(),
                host=self.managers[cluster].manager, actor="nas",
                cluster=cluster, failed=manager,
                new_manager=self.managers[cluster].manager,
            )
            tracer.count("nas.takeovers")
        for listener in self.failure_listeners:
            listener(manager)
