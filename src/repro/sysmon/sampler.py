"""Sampling the simulated machines into parameter snapshots.

On real Solaris JavaSymphony shelled out to ``vmstat``/``netstat`` & co;
here the "ground truth" is the :class:`repro.simnet.machine.Machine`.
Kernel-activity counters that the simulator does not model from first
principles (context switches, system calls, ...) are synthesized as
plausible deterministic functions of the machine's load — deterministic
in (host, time) so samples do not depend on who asks first.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.simnet.machine import Machine
from repro.simnet.topology import Topology
from repro.sysmon.params import SysParam

Snapshot = dict[SysParam, Any]


def _noise(host: str, t: float, tag: str, scale: float = 1.0) -> float:
    """Deterministic pseudo-noise in [-scale/2, +scale/2]."""
    seedbits = zlib.crc32(f"{host}:{tag}:{int(t)}".encode())
    return ((seedbits % 10_000) / 10_000.0 - 0.5) * scale


def sample_static(machine: Machine) -> Snapshot:
    spec = machine.spec
    return {
        SysParam.NODE_NAME: spec.name,
        SysParam.IP_ADDRESS: spec.ip_address,
        SysParam.ARCH_TYPE: spec.arch,
        SysParam.MODEL: spec.model,
        SysParam.CPU_TYPE: spec.cpu_type,
        SysParam.CPU_MHZ: spec.cpu_mhz,
        SysParam.NUM_CPUS: float(spec.num_cpus),
        SysParam.PEAK_MFLOPS: spec.mflops,
        SysParam.TOTAL_MEM: spec.total_mem_mb,
        SysParam.TOTAL_SWAP: spec.total_swap_mb,
        SysParam.OS_NAME: spec.os_name,
        SysParam.OS_VERSION: spec.os_version,
        SysParam.JVM_VERSION: spec.jvm_version,
        SysParam.NET_IFACE_MBITS: spec.net_mbits,
    }


def sample_dynamic(
    machine: Machine, t: float, topology: Topology | None = None
) -> Snapshot:
    spec = machine.spec
    host = spec.name
    bg = machine.background_load(t)
    js_share = min(1.0 - bg, 0.95 * machine.active_tasks)
    total_load = min(1.0, bg + js_share)
    idle = (1.0 - total_load) * 100.0
    # Solaris attributed a slice of busy time to system mode; interactive
    # (day) load is more system-heavy than compute load.
    sys_frac = 0.22 if bg > 0.15 else 0.10
    cpu_sys = total_load * 100.0 * sys_frac
    cpu_user = total_load * 100.0 - cpu_sys

    avail_mem = machine.avail_mem_mb(t)
    used_mem = spec.total_mem_mb - avail_mem
    swap_ratio = machine.swap_ratio(t)
    used_swap = swap_ratio * spec.total_swap_mb

    procs = 60 + 90 * bg + _noise(host, t, "procs", 8)
    cswitch = 120 + 5200 * total_load + _noise(host, t, "cs", 250)
    syscalls = 300 + 9000 * total_load + _noise(host, t, "sc", 500)

    if topology is not None:
        segment = topology.segment_of(host)
        latency_ms = segment.latency_s * 1000.0
        share = 1.0 / (1 + segment.active_transfers) if segment.shared else 1.0
        bandwidth = segment.bandwidth_mbits * topology.efficiency * share
    else:
        latency_ms = 0.5
        bandwidth = spec.net_mbits * 0.7

    counters = machine.counters
    return {
        SysParam.CPU_LOAD: total_load * 100.0,
        SysParam.CPU_USER_LOAD: cpu_user,
        SysParam.CPU_SYS_LOAD: cpu_sys,
        SysParam.IDLE: idle,
        SysParam.LOAD_AVG_1: total_load * spec.num_cpus * 1.4,
        SysParam.LOAD_AVG_5: total_load * spec.num_cpus * 1.2,
        SysParam.LOAD_AVG_15: total_load * spec.num_cpus,
        SysParam.RUN_QUEUE_LEN: max(
            0.0, total_load * 3 + _noise(host, t, "rq", 1)
        ),
        SysParam.AVAIL_MEM: avail_mem,
        SysParam.USED_MEM: used_mem,
        SysParam.MEM_RATIO: used_mem / spec.total_mem_mb,
        SysParam.AVAIL_SWAP: spec.total_swap_mb - used_swap,
        SysParam.USED_SWAP: used_swap,
        SysParam.SWAP_SPACE_RATIO: swap_ratio,
        SysParam.NUM_PROCESSES: max(20.0, procs),
        SysParam.NUM_THREADS: max(40.0, procs * 2.6),
        SysParam.NUM_USERS: 1.0 + round(3 * bg),
        SysParam.CONTEXT_SWITCHES: max(0.0, cswitch),
        SysParam.SYSTEM_CALLS: max(0.0, syscalls),
        SysParam.INTERRUPTS: max(0.0, 90 + 800 * total_load
                                 + _noise(host, t, "intr", 60)),
        SysParam.PAGE_FAULTS: max(
            0.0, 600 * max(0.0, swap_ratio - 0.05)
            + 15 * total_load + _noise(host, t, "pf", 4)
        ),
        SysParam.UPTIME: t,
        SysParam.NET_LATENCY: latency_ms,
        SysParam.NET_BANDWIDTH: bandwidth,
        SysParam.NET_PACKETS_IN: counters.messages_received,
        SysParam.NET_PACKETS_OUT: counters.messages_sent,
        SysParam.NET_BYTES_IN: counters.bytes_received,
        SysParam.NET_BYTES_OUT: counters.bytes_sent,
        SysParam.DISK_FREE: 2000.0 - 0.5 * used_swap,
        SysParam.DISK_READS: max(0.0, 5 + 40 * bg + _noise(host, t, "dr", 4)),
        SysParam.DISK_WRITES: max(0.0, 3 + 25 * bg + _noise(host, t, "dw", 3)),
        SysParam.JS_OBJECTS: float(counters.objects_hosted),
        SysParam.JS_ACTIVE_TASKS: float(machine.active_tasks),
        SysParam.JS_CODEBASE_MB: machine.codebase_mem_mb,
    }


def sample_all(
    machine: Machine, t: float, topology: Topology | None = None
) -> Snapshot:
    snap = sample_static(machine)
    snap.update(sample_dynamic(machine, t, topology))
    return snap
