"""The system-parameter vocabulary.

JavaSymphony exposed "close to 40" static and dynamic system parameters,
obtained on real Solaris via ``Runtime.exec`` of system commands.  Static
parameters never change while an application runs (machine name, OS, CPU
type, peak performance, ...); dynamic ones do (CPU load, idle %, memory,
context switches, network latency/bandwidth, ...).

Constraints (:mod:`repro.constraints`) and migration decisions are defined
over this vocabulary; ``JSConstants`` in :mod:`repro.core.constants`
re-exports the names in the paper's spelling.
"""

from __future__ import annotations

import enum


class ParamKind(enum.Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"


class SysParam(enum.Enum):
    # --- static: identity & configuration -------------------------------
    NODE_NAME = ("node_name", ParamKind.STATIC, str)
    IP_ADDRESS = ("ip_address", ParamKind.STATIC, str)
    ARCH_TYPE = ("arch_type", ParamKind.STATIC, str)
    MODEL = ("model", ParamKind.STATIC, str)
    CPU_TYPE = ("cpu_type", ParamKind.STATIC, str)
    CPU_MHZ = ("cpu_mhz", ParamKind.STATIC, float)
    NUM_CPUS = ("num_cpus", ParamKind.STATIC, float)
    PEAK_MFLOPS = ("peak_mflops", ParamKind.STATIC, float)
    TOTAL_MEM = ("total_mem", ParamKind.STATIC, float)          # MB
    TOTAL_SWAP = ("total_swap", ParamKind.STATIC, float)        # MB
    OS_NAME = ("os_name", ParamKind.STATIC, str)
    OS_VERSION = ("os_version", ParamKind.STATIC, str)
    JVM_VERSION = ("jvm_version", ParamKind.STATIC, str)
    NET_IFACE_MBITS = ("net_iface_mbits", ParamKind.STATIC, float)

    # --- dynamic: CPU ----------------------------------------------------
    CPU_LOAD = ("cpu_load", ParamKind.DYNAMIC, float)           # % [0,100]
    CPU_USER_LOAD = ("cpu_user_load", ParamKind.DYNAMIC, float)  # %
    CPU_SYS_LOAD = ("cpu_sys_load", ParamKind.DYNAMIC, float)    # %
    IDLE = ("idle", ParamKind.DYNAMIC, float)                    # %
    LOAD_AVG_1 = ("load_avg_1", ParamKind.DYNAMIC, float)
    LOAD_AVG_5 = ("load_avg_5", ParamKind.DYNAMIC, float)
    LOAD_AVG_15 = ("load_avg_15", ParamKind.DYNAMIC, float)
    RUN_QUEUE_LEN = ("run_queue_len", ParamKind.DYNAMIC, float)

    # --- dynamic: memory ---------------------------------------------------
    AVAIL_MEM = ("avail_mem", ParamKind.DYNAMIC, float)          # MB
    USED_MEM = ("used_mem", ParamKind.DYNAMIC, float)            # MB
    MEM_RATIO = ("mem_ratio", ParamKind.DYNAMIC, float)          # used/total
    AVAIL_SWAP = ("avail_swap", ParamKind.DYNAMIC, float)        # MB
    USED_SWAP = ("used_swap", ParamKind.DYNAMIC, float)          # MB
    SWAP_SPACE_RATIO = ("swap_space_ratio", ParamKind.DYNAMIC, float)

    # --- dynamic: processes & kernel activity ----------------------------
    NUM_PROCESSES = ("num_processes", ParamKind.DYNAMIC, float)
    NUM_THREADS = ("num_threads", ParamKind.DYNAMIC, float)
    NUM_USERS = ("num_users", ParamKind.DYNAMIC, float)
    CONTEXT_SWITCHES = ("context_switches", ParamKind.DYNAMIC, float)  # /s
    SYSTEM_CALLS = ("system_calls", ParamKind.DYNAMIC, float)          # /s
    INTERRUPTS = ("interrupts", ParamKind.DYNAMIC, float)              # /s
    PAGE_FAULTS = ("page_faults", ParamKind.DYNAMIC, float)            # /s
    UPTIME = ("uptime", ParamKind.DYNAMIC, float)                      # s

    # --- dynamic: network ---------------------------------------------------
    NET_LATENCY = ("net_latency", ParamKind.DYNAMIC, float)      # ms
    NET_BANDWIDTH = ("net_bandwidth", ParamKind.DYNAMIC, float)  # Mbit/s
    NET_PACKETS_IN = ("net_packets_in", ParamKind.DYNAMIC, float)
    NET_PACKETS_OUT = ("net_packets_out", ParamKind.DYNAMIC, float)
    NET_BYTES_IN = ("net_bytes_in", ParamKind.DYNAMIC, float)
    NET_BYTES_OUT = ("net_bytes_out", ParamKind.DYNAMIC, float)

    # --- dynamic: disk -----------------------------------------------------
    DISK_FREE = ("disk_free", ParamKind.DYNAMIC, float)          # MB
    DISK_READS = ("disk_reads", ParamKind.DYNAMIC, float)        # /s
    DISK_WRITES = ("disk_writes", ParamKind.DYNAMIC, float)      # /s

    # --- dynamic: PySymphony's own footprint -------------------------------
    JS_OBJECTS = ("js_objects", ParamKind.DYNAMIC, float)
    JS_ACTIVE_TASKS = ("js_active_tasks", ParamKind.DYNAMIC, float)
    JS_CODEBASE_MB = ("js_codebase_mb", ParamKind.DYNAMIC, float)

    def __init__(self, key: str, kind: ParamKind, value_type: type) -> None:
        self.key = key
        self.kind = kind
        self.value_type = value_type

    @property
    def is_static(self) -> bool:
        return self.kind is ParamKind.STATIC

    @property
    def is_numeric(self) -> bool:
        return self.value_type is float

    @classmethod
    def static_params(cls) -> list["SysParam"]:
        return [p for p in cls if p.is_static]

    @classmethod
    def dynamic_params(cls) -> list["SysParam"]:
        return [p for p in cls if not p.is_static]

    @classmethod
    def by_key(cls, key: str) -> "SysParam":
        for param in cls:
            if param.key == key or param.name == key:
                return param
        raise KeyError(f"unknown system parameter {key!r}")


#: sanity: the paper advertises "close to 40" parameters
assert len(SysParam) >= 40, len(SysParam)
