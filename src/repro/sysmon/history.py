"""Bounded sample history.

The paper: "Storage size for these data is kept reasonably small as only
the least recently measured data are kept.  Currently we do not maintain a
history of measurements, although, it would be easy to support it."  We
keep the latest sample by default and make the depth configurable — the
"easy to support" extension, implemented.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.sysmon.sampler import Snapshot


@dataclass(frozen=True)
class TimedSample:
    time: float
    params: Snapshot


class SampleHistory:
    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError("history depth must be >= 1")
        self._samples: deque[TimedSample] = deque(maxlen=depth)

    def record(self, time: float, params: Snapshot) -> None:
        if self._samples and time < self._samples[-1].time:
            raise ValueError("samples must be recorded in time order")
        self._samples.append(TimedSample(time, dict(params)))

    @property
    def latest(self) -> TimedSample | None:
        return self._samples[-1] if self._samples else None

    def latest_value(self, param: Any) -> Any:
        sample = self.latest
        if sample is None:
            raise LookupError("no samples recorded yet")
        return sample.params[param]

    def window(self) -> list[TimedSample]:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)
