"""System-parameter monitoring: the vocabulary, samplers, aggregation and
history that the Network Agent System is built on."""

from repro.sysmon.aggregate import (
    MIXED,
    WeightedSnapshot,
    average_snapshots,
    get_param,
)
from repro.sysmon.history import SampleHistory, TimedSample
from repro.sysmon.params import ParamKind, SysParam
from repro.sysmon.sampler import (
    Snapshot,
    sample_all,
    sample_dynamic,
    sample_static,
)

__all__ = [
    "MIXED",
    "WeightedSnapshot",
    "average_snapshots",
    "get_param",
    "SampleHistory",
    "TimedSample",
    "ParamKind",
    "SysParam",
    "Snapshot",
    "sample_all",
    "sample_dynamic",
    "sample_static",
]
