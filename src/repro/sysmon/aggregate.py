"""Aggregation of parameter snapshots up the manager hierarchy.

The paper: "System parameters for clusters, sites, and domains are
averaged across the contained nodes" — cluster managers average their
nodes' samples, site managers average cluster averages weighted by node
count, and so on up to the domain manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.sysmon.params import SysParam
from repro.sysmon.sampler import Snapshot

#: marker for string parameters whose values differ across averaged nodes
MIXED = "<mixed>"


@dataclass(frozen=True)
class WeightedSnapshot:
    """A snapshot that stands for ``weight`` nodes (for re-averaging)."""

    params: Snapshot
    weight: int = 1


def average_snapshots(
    snapshots: Iterable[Snapshot | WeightedSnapshot],
) -> WeightedSnapshot:
    """Weighted average of snapshots; numeric params average, string
    params collapse to the common value or :data:`MIXED`."""
    weighted: list[WeightedSnapshot] = [
        s if isinstance(s, WeightedSnapshot) else WeightedSnapshot(s)
        for s in snapshots
    ]
    if not weighted:
        raise ValueError("cannot average zero snapshots")
    total_weight = sum(w.weight for w in weighted)
    result: Snapshot = {}
    all_params: set[SysParam] = set()
    for w in weighted:
        all_params.update(w.params)
    for param in all_params:
        present = [w for w in weighted if param in w.params]
        if not present:
            continue
        if param.is_numeric:
            weight = sum(w.weight for w in present)
            total = sum(
                float(w.params[param]) * w.weight for w in present
            )
            result[param] = total / weight
        else:
            values = {w.params[param] for w in present}
            result[param] = values.pop() if len(values) == 1 else MIXED
    return WeightedSnapshot(params=result, weight=total_weight)


def get_param(snapshot: Snapshot, param: SysParam | str) -> Any:
    """Fetch a parameter by enum or paper-style name string."""
    if isinstance(param, str):
        param = SysParam.by_key(param)
    return snapshot[param]
