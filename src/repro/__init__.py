"""PySymphony: a Python reproduction of JavaSymphony (CLUSTER 2000).

A locality-oriented distributed/parallel programming system: virtual
distributed architectures with constraint-based allocation, explicit and
automatic object mapping and migration, synchronous / asynchronous /
one-sided method invocation, selective remote classloading, persistent
objects — plus the agent-based runtime (JRS) and a simulated
heterogeneous workstation cluster standing in for the paper's testbed.

Quickstart::

    from repro import (JSRegistration, JSObj, JSCodebase, Cluster,
                       jsclass, vienna_testbed)

    @jsclass
    class Greeter:
        def hello(self, name):
            return f"hello {name}"

    def app():
        reg = JSRegistration()
        cluster = Cluster(3)
        cb = JSCodebase(); cb.add(Greeter); cb.load(cluster)
        obj = JSObj("Greeter", cluster.get_node(0))
        print(obj.sinvoke("hello", ["world"]))
        reg.unregister()

    vienna_testbed().run_app(app)
"""

from repro.agents import ClassRegistry, js_compute, jsclass
from repro.cluster import JSRuntime, TestbedConfig, vienna_testbed, vienna_world
from repro.constraints import JSConstraints
from repro.core import (
    JS,
    HostGroup,
    JSCodebase,
    JSConstants,
    JSObj,
    JSRegistration,
    JSStatic,
    PersistentStore,
)
from repro.errors import JSError
from repro.kernel import RealKernel, VirtualKernel
from repro.obs import Tracer, current_tracer, tracing
from repro.rmi import MultiHandle, ResultHandle, minvoke
from repro.simnet import SimWorld
from repro.sysmon import SysParam
from repro.util.serialization import Payload
from repro.varch import Cluster, Domain, Node, Site

__version__ = "1.0.0"

__all__ = [
    "ClassRegistry",
    "js_compute",
    "jsclass",
    "JSRuntime",
    "TestbedConfig",
    "vienna_testbed",
    "vienna_world",
    "JSConstraints",
    "JS",
    "HostGroup",
    "JSCodebase",
    "JSConstants",
    "JSObj",
    "JSRegistration",
    "JSStatic",
    "PersistentStore",
    "JSError",
    "RealKernel",
    "VirtualKernel",
    "MultiHandle",
    "ResultHandle",
    "minvoke",
    "SimWorld",
    "SysParam",
    "Tracer",
    "current_tracer",
    "tracing",
    "Payload",
    "Cluster",
    "Domain",
    "Node",
    "Site",
    "__version__",
]
