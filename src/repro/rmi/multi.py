"""``MultiHandle``: the fan-in side of bulk invocation (``minvoke``).

A bulk invocation ships many ``(ref, method, params)`` calls at once,
grouped by resolved destination — each group travels as a single
``INVOKE_BATCH`` message instead of one message per call (the paper's
Section 4.5 cost model charges a full network round-trip per remote
invocation, so collapsing a burst of calls into one message is the
single biggest locality lever after migration).  The ``MultiHandle``
returned keeps one :class:`~repro.rmi.handle.ResultHandle` per call, in
request order::

    mh = obj.minvoke("step", [[1], [2], [3]])
    results = mh.get_results()              # positional, raises on failure
    for i, outcome in mh.as_completed():    # completion order
        ...

Partial failure stays per-call: a raising call surfaces its exception at
its own slot (``outcomes()`` returns exceptions in place;
``get_results()`` re-raises the first one), and a stale reference gets
its ``Moved`` redirect chased individually — one migrated object never
fails its batch-mates.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import RPCTimeoutError
from repro.obs.events import RPC_TIMEOUT
from repro.rmi.handle import ResultHandle

#: poll quantum for as_completed / deadline checks (simulated seconds);
#: half the dispatch wait quantum so completions are observed promptly
_POLL = 0.0005


class MultiHandle:
    """Positional collection of :class:`ResultHandle`\\ s for one bulk
    invocation.  Index ``i`` corresponds to the ``i``-th call passed to
    ``minvoke``, regardless of how the calls were grouped on the wire."""

    def __init__(
        self,
        handles: Sequence[ResultHandle],
        mapper: Callable[[Any], Any] | None = None,
    ) -> None:
        self._handles = list(handles)
        #: optional per-result post-processing (JSObj wraps ObjectRefs)
        self._mapper = mapper

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._handles)

    @property
    def handles(self) -> list[ResultHandle]:
        """The per-call handles, in request order."""
        return list(self._handles)

    def is_ready(self) -> bool:
        """Non-blocking: have *all* calls completed?"""
        return all(h.is_ready() for h in self._handles)

    def ready_count(self) -> int:
        return sum(1 for h in self._handles if h.is_ready())

    # -- collection --------------------------------------------------------------

    def _kernel(self):
        for handle in self._handles:
            kernel = getattr(handle._future, "_kernel", None)
            if kernel is not None:
                return kernel
        return None

    def get_result(self, index: int, timeout: float | None = None) -> Any:
        """Result of the ``index``-th call (blocking), re-raising its
        remote exception if that call failed."""
        result = self._handles[index].get_result(timeout)
        if self._mapper is not None:
            result = self._mapper(result)
        return result

    def get_results(self, timeout: float | None = None) -> list[Any]:
        """All results in request order.  ``timeout`` is an overall
        deadline for the whole batch, not per call.  Raises the first
        per-call exception (use :meth:`outcomes` for partial-failure
        access)."""
        deadline = self._deadline(timeout)
        return [
            self.get_result(i, self._remaining(deadline))
            for i in range(len(self._handles))
        ]

    def outcomes(self, timeout: float | None = None) -> list[Any]:
        """Like :meth:`get_results` but per-call exceptions are returned
        *in place* instead of raised — the partial-failure view.  A
        batch-wide deadline expiry still raises ``RPCTimeoutError``."""
        deadline = self._deadline(timeout)
        collected: list[Any] = []
        for i in range(len(self._handles)):
            try:
                collected.append(
                    self.get_result(i, self._remaining(deadline))
                )
            except Exception as exc:  # noqa: BLE001 - partial-failure view
                if (
                    isinstance(exc, RPCTimeoutError)
                    and deadline is not None
                    and self._expired(deadline)
                ):
                    raise
                collected.append(exc)
        return collected

    def failures(
        self, timeout: float | None = None
    ) -> list[tuple[int, BaseException]]:
        """The degradation view: ``(index, exception)`` for every failed
        slot, empty when the whole batch succeeded.  With a retry policy
        installed, transport-level slot failures arrive here as
        :class:`repro.errors.RetriesExhaustedError` (carrying the
        attempt trace) after the reliability layer gave up — successful
        slots are unaffected."""
        return [
            (i, outcome)
            for i, outcome in enumerate(self.outcomes(timeout))
            if isinstance(outcome, BaseException)
        ]

    def as_completed(
        self, timeout: float | None = None
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, outcome)`` pairs in completion order, where
        ``outcome`` is the result or the per-call exception.  Blocks
        between completions through the kernel (virtual-time safe)."""
        kernel = self._kernel()
        deadline = self._deadline(timeout)
        remaining = set(range(len(self._handles)))
        while remaining:
            progressed = False
            for i in sorted(remaining):
                if not self._handles[i].is_ready():
                    continue
                remaining.discard(i)
                progressed = True
                try:
                    yield i, self.get_result(i)
                except Exception as exc:  # noqa: BLE001 - per-call outcome
                    yield i, exc
            if not remaining:
                return
            if deadline is not None and self._expired(deadline):
                if kernel is not None and kernel.tracer.enabled:
                    kernel.tracer.emit(
                        RPC_TIMEOUT, ts=kernel.now(), kind="minvoke",
                        waited=timeout, pending=len(remaining))
                    kernel.tracer.count("rpc.timeouts")
                raise RPCTimeoutError(
                    f"{len(remaining)} of {len(self._handles)} batched "
                    f"results not ready within {timeout} s"
                )
            if not progressed and kernel is not None:
                kernel.sleep(_POLL)

    # -- deadline helpers ---------------------------------------------------------

    def _deadline(self, timeout: float | None) -> float | None:
        if timeout is None:
            return None
        kernel = self._kernel()
        return (kernel.now() if kernel is not None else 0.0) + timeout

    def _remaining(self, deadline: float | None) -> float | None:
        if deadline is None:
            return None
        kernel = self._kernel()
        now = kernel.now() if kernel is not None else 0.0
        return max(0.0, deadline - now)

    def _expired(self, deadline: float) -> bool:
        kernel = self._kernel()
        return kernel is not None and kernel.now() >= deadline

    # Paper-style aliases.
    isReady = is_ready
    getResult = get_result
    getResults = get_results


def minvoke(
    calls: Iterable[tuple[Any, str, Sequence[Any] | None]],
    app: Any = None,
) -> MultiHandle:
    """Heterogeneous bulk invocation over ``(target, method, params)``
    triples, where each target is a ``JSObj``, ``JSStatic`` or raw
    ``ObjectRef``.  Calls are grouped by resolved destination; each
    group ships as one ``INVOKE_BATCH`` message."""
    from repro import context
    from repro.core.jsobj import _to_wire

    normalized = []
    for target, method, params in calls:
        ref = target.ref if hasattr(target, "ref") else target
        if app is None:
            app = getattr(target, "_app", None)
        normalized.append((ref, method, _to_wire(params)))
    if app is None:
        app = context.require_app()
    return app.minvoke(normalized)
