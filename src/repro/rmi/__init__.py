"""Remote method invocation surface: handles and invocation modes.

The heavy lifting (dispatch, redirect-on-migration) lives with the agents
(:mod:`repro.agents.app_oa`, :mod:`repro.agents.holder_endpoints`); this
package exports the user-visible pieces.
"""

from repro.agents.objects import js_compute, jsclass
from repro.rmi.handle import ResultHandle
from repro.rmi.multi import MultiHandle, minvoke
from repro.rmi.reliability import CircuitBreaker, RetryPolicy

__all__ = [
    "js_compute",
    "jsclass",
    "CircuitBreaker",
    "MultiHandle",
    "ResultHandle",
    "RetryPolicy",
    "minvoke",
]
