"""``ResultHandle``: the future returned by asynchronous invocation.

Paper Section 4.5::

    ResultHandle hdl = obj.ainvoke("multiply", params);
    if (hdl.isReady()) { result = hdl.getResult(); }
"""

from __future__ import annotations

from typing import Any

from repro.errors import RPCTimeoutError, WaitTimeout
from repro.kernel.base import Future
from repro.sanitizer.core import current_sanitizer


class ResultHandle:
    def __init__(self, future: Future) -> None:
        self._future = future
        san = current_sanitizer()
        if san.enabled:
            kernel = getattr(future, "_kernel", None)
            if kernel is not None:
                san.track_handle(self, kernel)

    def is_ready(self) -> bool:
        """Non-blocking availability test (paper: ``isReady``)."""
        san = current_sanitizer()
        if san.enabled:
            san.handle_awaited(self)
        return self._future.done()

    def get_result(self, timeout: float | None = None) -> Any:
        """Block until the result arrives and return it, re-raising any
        remote exception (paper: ``getResult``)."""
        san = current_sanitizer()
        if san.enabled:
            san.handle_awaited(self)
        try:
            return self._future.result(timeout)
        except WaitTimeout:
            # Same caller-facing family as Endpoint.rpc — async callers
            # must not need to catch raw kernel timeouts.
            raise RPCTimeoutError(
                f"async result not ready within {timeout} s"
            ) from None

    # Paper-style aliases.
    isReady = is_ready
    getResult = get_result
