"""``ResultHandle``: the future returned by asynchronous invocation.

Paper Section 4.5::

    ResultHandle hdl = obj.ainvoke("multiply", params);
    if (hdl.isReady()) { result = hdl.getResult(); }

When tracing is on, the handle carries the async invocation span's
:class:`~repro.obs.spans.TraceContext`, and a blocking ``get_result``
records an ``obj.wait`` child span — the time the caller spent waiting
on the reply shows up in the trace, parented under the invocation it
waited for.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RPCTimeoutError, WaitTimeout
from repro.kernel.base import Future
from repro.obs.events import OBJ_WAIT, RPC_TIMEOUT
from repro.obs.spans import TraceContext
from repro.obs.tracer import NULL_TRACER
from repro.sanitizer.core import current_sanitizer


class ResultHandle:
    def __init__(self, future: Future, ctx: TraceContext | None = None,
                 label: str = "") -> None:
        self._future = future
        #: the async obj.invoke span this handle resolves (None untraced)
        self.ctx = ctx
        self._label = label
        san = current_sanitizer()
        if san.enabled:
            kernel = getattr(future, "_kernel", None)
            if kernel is not None:
                san.track_handle(self, kernel)
                # Leak-reporting responsibility transfers to the handle:
                # a never-awaited handle is one logical leak, not also a
                # never-completed future underneath it.
                san.future_completed(future)

    def is_ready(self) -> bool:
        """Non-blocking availability test (paper: ``isReady``)."""
        san = current_sanitizer()
        if san.enabled:
            # A poll is not consumption: the result is still unretrieved,
            # so the handle must stay on the leak tracker's books.
            san.handle_polled(self)
        return self._future.done()

    def get_result(self, timeout: float | None = None) -> Any:
        """Block until the result arrives and return it, re-raising any
        remote exception (paper: ``getResult``).

        With a retry policy installed the carrying worker already
        retried transport failures; what re-raises here is either the
        application's own exception or a typed
        :class:`repro.errors.RetriesExhaustedError` /
        :class:`repro.errors.CircuitOpenError` from the reliability
        layer."""
        san = current_sanitizer()
        if san.enabled:
            san.handle_awaited(self)
        kernel = getattr(self._future, "_kernel", None)
        tracer = kernel.tracer if kernel is not None else NULL_TRACER
        wait_span = None
        if tracer.enabled and not self._future.done():
            # The wait parents under the invocation span (self.ctx), not
            # under the waiting process's own context: the trace answers
            # "what was this result waiting on", not "who waited".
            wait_span = tracer.begin_span(
                OBJ_WAIT, ts=kernel.now(), parent=self.ctx,
                actor=kernel.current_process_name(), label=self._label,
            )
        try:
            return self._future.result(timeout)
        except WaitTimeout:
            if tracer.enabled:
                tracer.emit(RPC_TIMEOUT, ts=kernel.now(),
                            actor=kernel.current_process_name(),
                            kind="ainvoke", label=self._label,
                            waited=timeout, ctx=self.ctx)
                tracer.count("rpc.timeouts")
            # Same caller-facing family as Endpoint.rpc — async callers
            # must not need to catch raw kernel timeouts.
            raise RPCTimeoutError(
                f"async result not ready within {timeout} s"
            ) from None
        finally:
            if wait_span is not None:
                tracer.end_span(wait_span, ts=kernel.now())

    # Paper-style aliases.
    isReady = is_ready
    getResult = get_result
