"""The reliability layer: retries, replay dedup, and circuit breaking.

JavaSymphony's RMI (and our transport) is fire-once: a dropped request or
reply surfaces to user code as a raw ``RPCTimeoutError``.  This module
provides the pieces the transport composes into *reliable* RPC when
``ShellConfig.retry_policy`` is set:

:class:`RetryPolicy`
    Bounded exponential backoff with seeded jitter.  Deliberately a
    *bounded* ``for``-loop driver — the symlint ``unbounded-retry`` rule
    flags retry loops with no attempt/deadline bound.

:class:`ReplayCache`
    Holder-side dedup keyed on the per-call idempotency token carried by
    :class:`repro.transport.rpc.Message`.  A retried request whose first
    copy already executed gets the *cached* reply (at-most-once
    execution); a retry that arrives while the first copy is still
    running waits on its outcome instead of re-executing.  Entries are
    evicted ``window`` seconds after completion, so the guarantee is
    at-most-once *within the dedup window* — not exactly-once (see
    DESIGN.md for why that is not claimed).

:class:`CircuitBreaker`
    Per-host suspicion with the classic closed → open → half-open state
    machine.  An open circuit sheds new calls without burning their
    timeout budget; after a cooldown, one half-open probe is let through
    to test the host.  The runtime also consults :meth:`suspected` when
    ranking placement candidates, so a flaky host stops attracting new
    objects before the NAS declares it dead.

Delivery remains at-least-once; execution is at-most-once per token.
Nothing here claims exactly-once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import JSError
from repro.kernel.base import Kernel

__all__ = [
    "RetryPolicy",
    "AttemptTrace",
    "ReplayCache",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for reliable RPC.

    Backoff for attempt ``n`` (1-based) is
    ``min(max_backoff, base_backoff * backoff_factor ** (n - 1))``,
    shrunk by up to ``jitter`` fraction using the kernel RNG stream
    ``"retry"`` so replays are bit-identical for a given seed.
    """

    #: total send attempts (the first try counts as attempt 1)
    max_attempts: int = 4
    #: backoff after the first failed attempt, in sim seconds
    base_backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    #: fraction of each backoff randomized away (0 = deterministic)
    jitter: float = 0.5
    #: per-attempt reply timeout used when the caller passed none
    #: (a ``timeout=None`` RPC would otherwise block forever and the
    #: retry loop would never get a turn)
    attempt_timeout: float = 5.0
    #: optional overall budget across all attempts, in sim seconds;
    #: an attempt whose backoff would cross the deadline is not made
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise JSError("retry policy needs max_attempts >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise JSError("retry jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: Any = None) -> float:
        """Sleep before re-sending after failed attempt ``attempt``."""
        raw = min(
            self.max_backoff,
            self.base_backoff * self.backoff_factor ** (attempt - 1),
        )
        if rng is None or self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * float(rng.random()))

    def per_attempt_timeout(self, timeout: float | None) -> float:
        return timeout if timeout is not None else self.attempt_timeout


@dataclass
class AttemptTrace:
    """What one failed attempt of a reliable RPC looked like.

    A list of these rides on :class:`repro.errors.RetriesExhaustedError`
    and lands in flight-recorder incident bundles."""

    attempt: int
    dst: str
    kind: str
    started: float
    elapsed: float
    error: str


class _Slot:
    """One token's entry in the replay cache.

    ``future`` resolves to the (already wire-serialized) outcome once
    the first copy of the request finishes executing; ``completed_at``
    starts the eviction clock."""

    __slots__ = ("future", "completed_at")

    def __init__(self, future: Any) -> None:
        self.future = future
        self.completed_at: float | None = None


class ReplayCache:
    """Holder-side at-most-once execution, keyed by idempotency token.

    The transport calls :meth:`claim` before dispatching a handler:

    - *new* token → the caller executes the handler and must call
      :meth:`complete` with the outcome (success **or** error — a
      retried call that failed application-side must replay the same
      failure, not run twice);
    - *seen* token → the caller skips the handler and waits on
      ``slot.future`` for the original outcome (which may still be
      executing — duplicates block until it lands).

    Completed entries are evicted ``window`` sim-seconds after
    completion.  A retry arriving later than that re-executes; callers
    should size the window above ``retry_policy``'s worst-case total
    backoff (the default 60 s dwarfs the default policy's ~4 s)."""

    def __init__(self, kernel: Kernel, window: float = 60.0) -> None:
        if window <= 0:
            raise JSError("dedup window must be positive")
        self.kernel = kernel
        self.window = window
        self._slots: dict[str, _Slot] = {}
        #: duplicate requests served from cache or in-flight wait
        self.hits = 0

    def __len__(self) -> int:
        return len(self._slots)

    def claim(self, token: str) -> tuple[bool, _Slot]:
        """Return ``(is_new, slot)`` for ``token`` (see class docs)."""
        self._evict()
        slot = self._slots.get(token)
        if slot is not None:
            self.hits += 1
            return False, slot
        slot = _Slot(self.kernel.create_future())
        self._slots[token] = slot
        return True, slot

    def complete(self, token: str, outcome: Any) -> None:
        """Record ``token``'s outcome and wake any waiting duplicates."""
        slot = self._slots.get(token)
        if slot is None:  # evicted mid-execution (tiny window)
            return
        slot.completed_at = self.kernel.now()
        if not slot.future.done():
            slot.future.set_result(outcome)

    def _evict(self) -> None:
        now = self.kernel.now()
        dead = [
            token
            for token, slot in self._slots.items()
            if slot.completed_at is not None
            and now - slot.completed_at > self.window
        ]
        for token in dead:
            del self._slots[token]


CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class _HostCircuit:
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    #: half-open admits exactly one probe at a time
    probe_in_flight: bool = False


class CircuitBreaker:
    """Per-host circuit breaker / suspicion level.

    closed --(``threshold`` consecutive failures)--> open
    open --(``cooldown`` elapsed)--> half-open (one probe admitted)
    half-open --(probe succeeds)--> closed
    half-open --(probe fails)--> open (cooldown restarts)

    ``on_state`` (set by the runtime) is called on every transition so
    the tracer can emit ``circuit.state`` events."""

    def __init__(self, threshold: int = 5, cooldown: float = 30.0) -> None:
        if threshold < 1:
            raise JSError("circuit breaker needs threshold >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._hosts: dict[str, _HostCircuit] = {}
        self.on_state: Callable[[str, str], None] | None = None

    def _circuit(self, host: str) -> _HostCircuit:
        circuit = self._hosts.get(host)
        if circuit is None:
            circuit = self._hosts[host] = _HostCircuit()
        return circuit

    def _transition(self, host: str, circuit: _HostCircuit, state: str) -> None:
        if circuit.state == state:
            return
        circuit.state = state
        if self.on_state is not None:
            self.on_state(host, state)

    # -- the transport-facing protocol ----------------------------------------

    def allow(self, host: str, now: float) -> bool:
        """May a new call be sent to ``host`` right now?"""
        circuit = self._circuit(host)
        if circuit.state == CLOSED:
            return True
        if circuit.state == OPEN:
            if now - circuit.opened_at < self.cooldown:
                return False
            self._transition(host, circuit, HALF_OPEN)
            circuit.probe_in_flight = False
        # half-open: admit exactly one probe
        if circuit.probe_in_flight:
            return False
        circuit.probe_in_flight = True
        return True

    def record_success(self, host: str) -> None:
        circuit = self._circuit(host)
        circuit.consecutive_failures = 0
        circuit.probe_in_flight = False
        self._transition(host, circuit, CLOSED)

    def record_failure(self, host: str, now: float) -> None:
        circuit = self._circuit(host)
        circuit.probe_in_flight = False
        if circuit.state == HALF_OPEN:
            circuit.opened_at = now
            self._transition(host, circuit, OPEN)
            return
        circuit.consecutive_failures += 1
        if (
            circuit.state == CLOSED
            and circuit.consecutive_failures >= self.threshold
        ):
            circuit.opened_at = now
            self._transition(host, circuit, OPEN)

    def force_open(self, host: str, now: float) -> None:
        """Trip immediately (the NAS declared the host failed)."""
        circuit = self._circuit(host)
        circuit.consecutive_failures = self.threshold
        circuit.opened_at = now
        self._transition(host, circuit, OPEN)

    def reset(self, host: str) -> None:
        """Forget a host's history (it restarted with a clean slate)."""
        circuit = self._circuit(host)
        circuit.consecutive_failures = 0
        circuit.opened_at = 0.0
        circuit.probe_in_flight = False
        self._transition(host, circuit, CLOSED)

    # -- placement-facing -----------------------------------------------------

    def suspected(self, host: str) -> bool:
        """True while the circuit is open or probing (shed placements)."""
        circuit = self._hosts.get(host)
        return circuit is not None and circuit.state != CLOSED

    def state_of(self, host: str) -> str:
        circuit = self._hosts.get(host)
        return CLOSED if circuit is None else circuit.state
