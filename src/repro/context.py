"""Ambient runtime context.

The paper's API creates objects with bare constructors (``new Node()``,
``new JSObj(...)``) that implicitly talk to "the" JRS.  In Python we keep
that ergonomic surface by maintaining a context stack: entering a runtime
(:meth:`repro.cluster.builder.JSRuntime.run_app`) pushes an environment
that bare constructors resolve against.  Everything also accepts explicit
keyword arguments for multi-runtime tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import JSError


@dataclass
class Environment:
    """What the bare-constructor API needs to find implicitly."""

    pool: Any = None          # varch.pool.ResourcePool
    runtime: Any = None       # cluster.builder.JSRuntime
    app: Any = None           # agents.app_oa.AppOA of the current app
    extras: dict = field(default_factory=dict)


_stack = threading.local()


def _frames() -> list[Environment]:
    if not hasattr(_stack, "frames"):
        _stack.frames = []
    return _stack.frames


def push(env: Environment) -> None:
    _frames().append(env)


def pop() -> Environment:
    frames = _frames()
    if not frames:
        raise JSError("context stack underflow")
    return frames.pop()


def current() -> Environment | None:
    frames = _frames()
    return frames[-1] if frames else None


def require() -> Environment:
    env = current()
    if env is None:
        raise JSError(
            "no PySymphony context: run inside JSRuntime.run_app() or pass "
            "explicit pool=/runtime= arguments"
        )
    return env


def require_pool() -> Any:
    env = require()
    if env.pool is None:
        raise JSError("current context has no resource pool")
    return env.pool


def require_app() -> Any:
    env = require()
    if env.app is None:
        raise JSError(
            "current context has no registered application; create a "
            "JSRegistration first"
        )
    return env.app


class scoped:
    """``with scoped(env): ...`` — push/pop an environment."""

    def __init__(self, env: Environment) -> None:
        self._env = env

    def __enter__(self) -> Environment:
        push(self._env)
        return self._env

    def __exit__(self, *exc_info: Any) -> None:
        pop()
