"""2-D Jacobi iteration with explicit locality control.

The locality showcase the paper's introduction motivates: strip-partition
a grid over objects, one per node; every sweep exchanges boundary rows
with the two neighbours and relaxes the interior.  Mapping neighbouring
strips onto the *same physical cluster* (fast switched segment) versus
scattering them across segments changes only communication — the ablation
benchmark Ext-C measures exactly that difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.agents.objects import js_compute, jsclass
from repro.core.codebase import JSCodebase
from repro.core.jsobj import JSObj
from repro.core.registration import JSRegistration
from repro.rmi.multi import minvoke
from repro.util.serialization import Payload

FLOAT_BYTES = 4


@jsclass
class JacobiStrip:
    """One horizontal strip of the grid (with one ghost row per side)."""

    def __init__(self) -> None:
        self.grid: np.ndarray | None = None
        self.rows = 0
        self.cols = 0
        self.__js_nbytes__ = 1024

    @js_compute(lambda self, rows, cols, nominal=False: rows * cols * 0.5)
    def init(self, rows: int, cols: int, nominal: bool = False) -> None:
        self.rows = int(rows)
        self.cols = int(cols)
        self.__js_nbytes__ = (rows + 2) * cols * FLOAT_BYTES
        if not nominal:
            self.grid = np.zeros((rows + 2, cols), dtype=np.float32)
            self.grid[0, :] = 1.0  # hot top boundary (global, overwritten
            #                        by ghost exchange except on strip 0)

    def top_row(self) -> Any:
        """First interior row (the neighbour above needs it)."""
        row = None if self.grid is None else self.grid[1].copy()
        return Payload(data=row, nbytes=self.cols * FLOAT_BYTES)

    def bottom_row(self) -> Any:
        row = None if self.grid is None else self.grid[-2].copy()
        return Payload(data=row, nbytes=self.cols * FLOAT_BYTES)

    def set_ghost_top(self, row: Any) -> None:
        if self.grid is not None and row is not None:
            self.grid[0] = row

    def set_ghost_bottom(self, row: Any) -> None:
        if self.grid is not None and row is not None:
            self.grid[-1] = row

    @js_compute(lambda self: 5.0 * self.rows * self.cols)
    def sweep(self) -> float:
        """One Jacobi relaxation; returns the max residual."""
        if self.grid is None:
            return 0.0
        interior = self.grid[1:-1]
        relaxed = 0.25 * (
            self.grid[:-2] + self.grid[2:]
            + np.roll(interior, 1, axis=1) + np.roll(interior, -1, axis=1)
        )
        residual = float(np.abs(relaxed - interior).max())
        self.grid[1:-1] = relaxed
        return residual

    def interior(self) -> np.ndarray | None:
        return None if self.grid is None else self.grid[1:-1].copy()


@dataclass
class JacobiConfig:
    rows: int = 120                  # global rows
    cols: int = 120
    strips: int = 4
    iterations: int = 10
    nominal: bool = False            # True: costs only, no real grid
    #: explicit placement (one host per strip); None lets JRS choose
    placement: list[str] | None = None


@dataclass
class JacobiResult:
    hosts: list[str]
    iterations: int
    elapsed: float
    residual: float
    grid: np.ndarray | None


def run_jacobi(config: JacobiConfig) -> JacobiResult:
    """Run the strip-parallel Jacobi solver inside an app context."""
    from repro import context

    env = context.require()
    kernel = env.runtime.world.kernel

    reg = JSRegistration()
    try:
        codebase = JSCodebase()
        codebase.add(JacobiStrip)
        if config.placement is not None:
            if len(config.placement) != config.strips:
                raise ValueError("placement length must equal strips")
            targets: list[Any] = list(config.placement)
        else:
            from repro.varch.cluster import Cluster

            cluster = Cluster(config.strips)
            targets = [cluster.get_node(i) for i in range(config.strips)]
        codebase.load(
            [t if isinstance(t, str) else t for t in targets]
        )

        rows_each = config.rows // config.strips
        strips = [JSObj("JacobiStrip", target) for target in targets]
        hosts = [s.get_node() for s in strips]
        # Initialise every strip in one bulk invocation: the per-strip
        # state is independent, and strips co-located on a node share a
        # single INVOKE_BATCH message instead of one message each.
        minvoke([
            (s, "init", [rows_each, config.cols, config.nominal])
            for s in strips
        ]).get_results()

        t0 = kernel.now()
        residual = 0.0
        for _ in range(config.iterations):
            # Boundary exchange as bulk RMI: both edge rows of every
            # strip travel in one per-node batch, then all ghost
            # installs, then every sweep — three message rounds per
            # iteration instead of one message per call.
            edges = minvoke(
                [(s, "top_row", None) for s in strips]
                + [(s, "bottom_row", None) for s in strips]
            ).get_results()
            top_rows = edges[:len(strips)]
            bottom_rows = edges[len(strips):]
            ghost_calls = []
            for i, strip in enumerate(strips):
                if i > 0:
                    ghost_calls.append(
                        (strip, "set_ghost_top", [bottom_rows[i - 1]])
                    )
                if i < len(strips) - 1:
                    ghost_calls.append(
                        (strip, "set_ghost_bottom", [top_rows[i + 1]])
                    )
            minvoke(ghost_calls).get_results()
            residual = max(
                minvoke([(s, "sweep", None) for s in strips]).get_results()
            )
        elapsed = kernel.now() - t0

        grid = None
        if not config.nominal:
            parts = minvoke(
                [(s, "interior", None) for s in strips]
            ).get_results()
            grid = np.vstack(parts)
        return JacobiResult(
            hosts=hosts,
            iterations=config.iterations,
            elapsed=elapsed,
            residual=residual,
            grid=grid,
        )
    finally:
        reg.unregister()
