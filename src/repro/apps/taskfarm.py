"""A fault-tolerant task farm with checkpointing.

The wide-area use-case the paper's introduction motivates: many
independent work units farmed over non-dedicated machines, surviving the
loss of workers.  This composes the JavaSymphony primitives:

* a constrained cluster of workers + selective classloading,
* asynchronous dispatch with timeout-based failure detection (the same
  signal the Network Agent System uses),
* application-level re-dispatch of units lost with a dead worker —
  the paper's OAS deliberately does not recover objects, so a robust
  *application* does it, exactly as 2000-era master/worker codes did,
* periodic checkpointing of the collector object to persistent storage
  (``obj.store``), so a crashed master could resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.objects import js_compute, jsclass
from repro.constraints import JSConstraints
from repro.core.codebase import JSCodebase
from repro.core.jsobj import JSObj
from repro.core.registration import JSRegistration
from repro.errors import (
    NodeFailedError,
    RemoteInvocationError,
    RPCTimeoutError,
)
from repro.util.serialization import Payload
from repro.varch.cluster import Cluster


@dataclass(frozen=True)
class WorkUnit:
    unit_id: int
    flops: float
    payload_bytes: int = 2048

    def answer(self) -> int:
        # A deterministic "result" the tests can verify.
        return self.unit_id * self.unit_id + 1


@jsclass
class FarmWorker:
    def __init__(self) -> None:
        self.processed = 0

    @js_compute(lambda self, unit: unit.flops)
    def process(self, unit: WorkUnit) -> tuple[int, int]:
        self.processed += 1
        return (unit.unit_id, unit.answer())


@jsclass
class Collector:
    """Accumulates results; checkpointed via ``store()``."""

    def __init__(self) -> None:
        self.results: dict[int, int] = {}

    def merge(self, unit_id: int, value: int) -> int:
        self.results[unit_id] = value
        return len(self.results)

    def snapshot(self) -> dict[int, int]:
        return dict(self.results)


@dataclass
class FarmConfig:
    n_units: int = 60
    flops_per_unit: float = 60e6     # ~1 s on the fastest machine
    nr_nodes: int = 4
    constraints: JSConstraints | None = None
    #: checkpoint the collector after every N merged results
    checkpoint_every: int = 20
    checkpoint_key: str = "farm-checkpoint"
    #: per-dispatch reply timeout; also the failure detector
    unit_timeout: float = 120.0
    poll_interval: float = 0.05


@dataclass
class FarmResult:
    results: dict[int, int]
    elapsed: float
    workers: list[str]
    dead_workers: list[str] = field(default_factory=list)
    redispatched: int = 0
    checkpoints: int = 0


def run_farm(config: FarmConfig) -> FarmResult:
    """Run the farm inside an application context."""
    from repro import context

    env = context.require()
    kernel = env.runtime.world.kernel

    reg = JSRegistration()
    try:
        cluster = Cluster(config.nr_nodes, constraints=config.constraints)
        codebase = JSCodebase()
        codebase.add(FarmWorker)
        codebase.load(cluster)

        workers: dict[str, JSObj] = {}
        for i in range(cluster.nr_nodes()):
            worker = JSObj("FarmWorker", cluster.get_node(i))
            workers[worker.get_node()] = worker
        collector = JSObj("Collector", "local")

        pending = list(range(config.n_units))
        in_flight: dict[str, tuple[int, object]] = {}
        dead: list[str] = []
        redispatched = 0
        checkpoints = 0
        merged = 0
        t0 = kernel.now()

        def dispatch(host: str, unit_id: int) -> None:
            unit = WorkUnit(unit_id, config.flops_per_unit)
            handle = workers[host].ainvoke(
                "process", [Payload(data=unit, nbytes=unit.payload_bytes)]
            )
            in_flight[host] = (unit_id, handle)

        while merged < config.n_units:
            progressed = False
            for host in list(workers):
                if host in dead:
                    continue
                if host in in_flight:
                    unit_id, handle = in_flight[host]
                    if not handle.is_ready():
                        continue
                    try:
                        uid, value = handle.get_result(
                            timeout=config.unit_timeout
                        )
                    except (RPCTimeoutError, NodeFailedError,
                            RemoteInvocationError):
                        # Worker lost: bury it, put the unit back.
                        dead.append(host)
                        del in_flight[host]
                        pending.append(unit_id)
                        redispatched += 1
                        progressed = True
                        continue
                    del in_flight[host]
                    merged = collector.sinvoke("merge", [uid, value])
                    if merged % config.checkpoint_every == 0:
                        collector.store(config.checkpoint_key)
                        checkpoints += 1
                    progressed = True
                if host not in in_flight and pending:
                    dispatch(host, pending.pop(0))
                    progressed = True
            if not progressed:
                if not in_flight and pending and all(
                    h in dead for h in workers
                ):
                    raise RPCTimeoutError(
                        "every worker died; farm cannot finish"
                    )
                kernel.sleep(config.poll_interval)
                # Timeout check for silent workers (failed mid-unit).
                for host, (unit_id, handle) in list(in_flight.items()):
                    machine = env.runtime.world.machines.get(host)
                    if machine is not None and machine.failed:
                        dead.append(host)
                        del in_flight[host]
                        pending.append(unit_id)
                        redispatched += 1

        elapsed = kernel.now() - t0
        results = collector.sinvoke("snapshot")
        # Final checkpoint so a restart sees the complete result set.
        collector.store(config.checkpoint_key)
        checkpoints += 1
        return FarmResult(
            results=results,
            elapsed=elapsed,
            workers=list(workers),
            dead_workers=dead,
            redispatched=redispatched,
            checkpoints=checkpoints,
        )
    finally:
        reg.unregister()
