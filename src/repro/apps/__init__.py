"""Application library: the paper's matmul (Figure 6) plus two further
workloads exercising locality mapping and async fan-out."""

from repro.apps.jacobi import JacobiConfig, JacobiResult, JacobiStrip, run_jacobi
from repro.apps.matmul import (
    Matrix,
    MatmulConfig,
    MatmulResult,
    ResultData,
    TaskData,
    run_matmul,
    sequential_matmul_time,
)
from repro.apps.montecarlo import PiConfig, PiResult, PiSampler, run_pi
from repro.apps.taskfarm import (
    Collector,
    FarmConfig,
    FarmResult,
    FarmWorker,
    WorkUnit,
    run_farm,
)

__all__ = [
    "Collector",
    "FarmConfig",
    "FarmResult",
    "FarmWorker",
    "WorkUnit",
    "run_farm",
    "JacobiConfig",
    "JacobiResult",
    "JacobiStrip",
    "run_jacobi",
    "Matrix",
    "MatmulConfig",
    "MatmulResult",
    "ResultData",
    "TaskData",
    "run_matmul",
    "sequential_matmul_time",
    "PiConfig",
    "PiResult",
    "PiSampler",
    "run_pi",
]
