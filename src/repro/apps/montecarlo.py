"""Monte-Carlo pi estimation: the embarrassingly parallel workload.

Exercises constraint-restricted clusters and pure asynchronous fan-out —
the "task farming over idle workstations" use-case the paper's
introduction motivates for wide-area metacomputing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.objects import js_compute, jsclass
from repro.constraints import JSConstraints
from repro.core.codebase import JSCodebase
from repro.core.jsobj import JSObj
from repro.core.registration import JSRegistration
from repro.varch.cluster import Cluster

#: modelled cost of drawing + testing one sample (flops)
FLOPS_PER_SAMPLE = 30.0


@jsclass
class PiSampler:
    @js_compute(lambda self, n, seed: n * FLOPS_PER_SAMPLE)
    def sample(self, n: int, seed: int) -> int:
        """Count hits inside the unit quarter-circle among ``n`` draws."""
        rng = np.random.default_rng(seed)
        xy = rng.random((int(n), 2))
        return int(((xy ** 2).sum(axis=1) <= 1.0).sum())


@dataclass
class PiConfig:
    samples: int = 200_000
    nr_nodes: int = 4
    seed: int = 11
    constraints: JSConstraints | None = None


@dataclass
class PiResult:
    pi: float
    samples: int
    hosts: list[str]
    elapsed: float


def run_pi(config: PiConfig) -> PiResult:
    from repro import context

    env = context.require()
    kernel = env.runtime.world.kernel

    reg = JSRegistration()
    try:
        cluster = Cluster(config.nr_nodes, constraints=config.constraints)
        codebase = JSCodebase()
        codebase.add(PiSampler)
        codebase.load(cluster)

        samplers = [
            JSObj("PiSampler", cluster.get_node(i))
            for i in range(cluster.nr_nodes())
        ]
        hosts = [s.get_node() for s in samplers]
        per_node = config.samples // len(samplers)

        t0 = kernel.now()
        handles = [
            sampler.ainvoke("sample", [per_node, config.seed + i])
            for i, sampler in enumerate(samplers)
        ]
        hits = sum(handle.get_result() for handle in handles)
        elapsed = kernel.now() - t0

        total = per_node * len(samplers)
        return PiResult(
            pi=4.0 * hits / total,
            samples=total,
            hosts=hosts,
            elapsed=elapsed,
        )
    finally:
        reg.unregister()
