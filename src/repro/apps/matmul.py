"""Master/slave matrix multiplication — the paper's evaluation program.

This is a faithful transcription of Figure 6: register with JRS, allocate
a cluster, load the codebase onto it, replicate matrix B to every node by
one-sided invocation of ``init``, then hand out row-block tasks of A via
asynchronous invocation of ``multiply``, polling handles and merging
results into C until all tasks are processed.

Two compute modes share the same code path:

* ``real_compute=True`` — small matrices are actually multiplied
  (float32, matching Java's ``float``) and the product is verified;
* ``real_compute=False`` — "nominal" mode for paper-scale problem sizes:
  tasks carry :class:`~repro.util.serialization.Payload` sizes and the
  ``@js_compute`` cost (2·rows·N² flops) drives the virtual clock, so an
  N=2000 run needs no gigaflops of host work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.agents.objects import js_compute, jsclass
from repro.core.codebase import JSCodebase
from repro.core.jsobj import JSObj
from repro.core.registration import JSRegistration
from repro.errors import JSError
from repro.rmi.multi import minvoke
from repro.util.serialization import Payload, unwrap
from repro.varch.cluster import Cluster

#: Java float is 4 bytes; all wire-size accounting uses float32.
FLOAT_BYTES = 4


@dataclass
class TaskData:
    """One task: a block of ``n_rows`` rows of A starting at ``row_start``."""

    row_start: int
    n_rows: int
    n_cols: int
    rows: np.ndarray | None  # None in nominal mode

    @property
    def nbytes(self) -> int:
        return self.n_rows * self.n_cols * FLOAT_BYTES


@dataclass
class ResultData:
    """The corresponding block of C."""

    row_start: int
    n_rows: int
    n_cols: int
    rows: np.ndarray | None


@jsclass
class Matrix:
    """The slave object: holds the replicated B, multiplies row blocks."""

    def __init__(self) -> None:
        self.dim_inner = 0
        self.dim_out = 0
        self.B: np.ndarray | None = None
        self.__js_nbytes__ = 1024  # nominal footprint before init

    @js_compute(lambda self, dim_inner, dim_out, B: dim_inner * dim_out * 0.5)
    def init(self, dim_inner: int, dim_out: int, B: Any) -> None:
        """Install the replicated matrix B (paper: ``oinvoke("init", paramB)``)."""
        self.dim_inner = int(dim_inner)
        self.dim_out = int(dim_out)
        self.B = B
        # Nominal memory footprint: B dominates the object state.
        self.__js_nbytes__ = dim_inner * dim_out * FLOAT_BYTES

    @js_compute(
        lambda self, task: 2.0 * task.n_rows * self.dim_inner * self.dim_out
    )
    def multiply(self, task: TaskData) -> Any:
        """Multiply a block of A rows with B; returns the C block."""
        if self.dim_inner == 0:
            raise JSError("multiply before init: B not replicated yet")
        if task.rows is not None:
            if self.B is None:
                raise JSError("real task but nominal B")
            out = task.rows @ self.B
            return ResultData(task.row_start, task.n_rows, self.dim_out, out)
        result = ResultData(task.row_start, task.n_rows, self.dim_out, None)
        return Payload(
            data=result, nbytes=task.n_rows * self.dim_out * FLOAT_BYTES
        )


@dataclass
class MatmulConfig:
    n: int = 200                      # square problem: A, B, C are n x n
    nr_nodes: int = 4
    rows_per_task: int = 0            # 0 -> ceil(n / (4 * nr_nodes))
    real_compute: bool = True
    poll_interval: float = 0.01       # master's handle-polling period
    seed: int = 7
    constraints: Any = None           # optional JSConstraints for the cluster

    def resolved_rows_per_task(self) -> int:
        """Default granularity: ~250 tasks.  Fine enough that slow nodes
        contribute instead of straggling, coarse enough that per-RMI cost
        stays secondary (it dominates again past ~10 nodes, as the paper
        observed)."""
        if self.rows_per_task > 0:
            return self.rows_per_task
        return max(1, self.n // 250)


@dataclass
class MatmulResult:
    n: int
    nr_nodes: int
    hosts: list[str]
    nr_tasks: int
    elapsed: float                    # virtual seconds, replication included
    correct: bool | None              # None in nominal mode
    tasks_per_host: dict[str, int] = field(default_factory=dict)


def run_matmul(config: MatmulConfig) -> MatmulResult:
    """The Figure 6 master.  Must run inside an application context."""
    from repro import context

    env = context.require()
    kernel = env.runtime.world.kernel

    reg = JSRegistration()
    try:
        cluster = Cluster(config.nr_nodes, constraints=config.constraints)
        codebase = JSCodebase()
        codebase.add(Matrix)
        codebase.load(cluster)

        n = config.n
        if config.real_compute:
            rng = np.random.default_rng(config.seed)
            A = rng.random((n, n), dtype=np.float32)
            B = rng.random((n, n), dtype=np.float32)
            C = np.zeros((n, n), dtype=np.float32)
        else:
            A = B = C = None

        t0 = kernel.now()

        # Replicate B on the entire cluster by one-sided invocation.
        workers: list[JSObj] = []
        hosts: list[str] = []
        for i in range(cluster.nr_nodes()):
            worker = JSObj("Matrix", cluster.get_node(i))
            # Object[] paramB = {dimA2, dimB2, B} — three parameters, with
            # B carrying the (possibly nominal) transfer size.
            param_b = [n, n, Payload(data=B, nbytes=n * n * FLOAT_BYTES)]
            worker.oinvoke("init", param_b)
            workers.append(worker)
            hosts.append(worker.get_node())

        rows_per_task = config.resolved_rows_per_task()
        nr_tasks = -(-n // rows_per_task)  # ceil division, as in Fig. 6

        def make_task(task_idx: int) -> Payload:
            start = task_idx * rows_per_task
            count = min(rows_per_task, n - start)
            rows = A[start:start + count] if A is not None else None
            task = TaskData(start, count, n, rows)
            return Payload(data=task, nbytes=task.nbytes)

        # Fig. 6 WHILE loop: busy nodes poll their handle; free nodes get
        # the next task.
        next_task = 0
        merged = 0
        node_busy = [-1] * len(workers)   # task id or -1, as in the paper
        handles: list[Any] = [None] * len(workers)
        tasks_per_host: dict[str, int] = {h: 0 for h in hosts}

        while merged < nr_tasks:
            progressed = False
            assignments: list[int] = []
            for i, worker in enumerate(workers):
                if node_busy[i] >= 0 and handles[i].is_ready():
                    result = unwrap(handles[i].get_result())
                    if C is not None and result.rows is not None:
                        C[result.row_start:result.row_start
                          + result.n_rows] = result.rows
                    merged += 1
                    node_busy[i] = -1
                    handles[i] = None
                    progressed = True
                if node_busy[i] < 0 and next_task < nr_tasks:
                    assignments.append(i)
                    node_busy[i] = next_task
                    tasks_per_host[hosts[i]] += 1
                    next_task += 1
            if assignments:
                # Hand the round's tasks out as one bulk RMI: workers
                # on the same host share a single INVOKE_BATCH message.
                batch = minvoke([
                    (workers[i], "multiply", [make_task(node_busy[i])])
                    for i in assignments
                ])
                for i, handle in zip(assignments, batch.handles):
                    handles[i] = handle
                progressed = True
            if not progressed:
                kernel.sleep(config.poll_interval)

        elapsed = kernel.now() - t0

        correct: bool | None = None
        if config.real_compute:
            correct = bool(np.allclose(C, A @ B, rtol=1e-3, atol=1e-3))

        return MatmulResult(
            n=n,
            nr_nodes=config.nr_nodes,
            hosts=hosts,
            nr_tasks=nr_tasks,
            elapsed=elapsed,
            correct=correct,
            tasks_per_host=tasks_per_host,
        )
    finally:
        reg.unregister()


def sequential_matmul_time(world, host: str, n: int) -> float:
    """The paper's 1-node baseline: a plain sequential multiplication on
    ``host`` without JavaSymphony (no JRS, no RMI).  Returns virtual
    seconds."""

    def main() -> float:
        t0 = world.kernel.now()
        world.compute(host, 2.0 * n * n * n)
        return world.kernel.now() - t0

    proc = world.kernel.spawn(main, name=f"seq-matmul@{host}")
    world.kernel.run(main=proc)
    return proc.result()
