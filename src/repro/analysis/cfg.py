"""Intraprocedural control-flow graphs over the Python AST.

The reusable half of symloc: :func:`build_cfg` turns one function body
into basic blocks connected by explicit edges, with the loop-nesting
depth recorded per block so consumers can scale severities ("a sync RMI
three loops deep is worse than one").  Dataflow instances live in
:mod:`repro.analysis.dataflow`; rule logic in
:mod:`repro.analysis.locality`.

Block contents
--------------
A block's ``stmts`` list holds *statement-granular* AST nodes.  Simple
statements appear verbatim.  Control statements (``if``/``while``/
``for``/``with``/``match``/``except``) appear **as themselves** in the
block that evaluates their header expression, and only their *own*
expressions (the test, the iterable, the context managers, the subject)
count as executing there — bodies become separate blocks.  Use
:func:`own_expressions` / :func:`stmt_defs` / :func:`stmt_uses` /
:func:`calls_in_stmt` rather than ``ast.walk`` so a body is never
attributed to its header's block.

Nested ``def``/``lambda`` bodies are opaque: they run later (or never),
under a different context, exactly as :mod:`repro.analysis.callgraph`
treats them.  Their *free-variable reads* still count as uses (see
``stmt_uses``) so liveness never declares a captured name dead.

Edges are conservative where Python is dynamic: every block inside a
``try`` body gets an edge to each handler (an exception can split a
block anywhere), and ``finally`` intercepts all normal and exceptional
region exits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class Block:
    """One basic block: a straight run of statement-granular nodes."""

    id: int
    loop_depth: int
    stmts: list[ast.AST] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        kinds = ",".join(type(s).__name__ for s in self.stmts)
        return (f"<Block {self.id} depth={self.loop_depth} "
                f"[{kinds}] -> {self.succs}>")


@dataclass
class CFG:
    """Control-flow graph of one function (or a bare statement list)."""

    blocks: list[Block]
    entry: int
    exit: int
    func: FunctionNode | None = None

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def statements(self):
        """Every ``(block, index, stmt)`` triple, block order."""
        for block in self.blocks:
            for idx, stmt in enumerate(block.stmts):
                yield block, idx, stmt


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.exit = self._new_block(0).id      # block 0 is the exit
        self.depth = 0
        #: (continue target id, break target id) per enclosing loop
        self.loop_stack: list[tuple[int, int]] = []
        #: entry block ids of the active except handlers / finally blocks
        self.handler_stack: list[list[int]] = []

    # -- plumbing -----------------------------------------------------------

    def _new_block(self, depth: int | None = None) -> Block:
        block = Block(len(self.blocks),
                      self.depth if depth is None else depth)
        self.blocks.append(block)
        return block

    def _edge(self, src: Block | int, dst: Block | int) -> None:
        src_id = src if isinstance(src, int) else src.id
        dst_id = dst if isinstance(dst, int) else dst.id
        if dst_id not in self.blocks[src_id].succs:
            self.blocks[src_id].succs.append(dst_id)
            self.blocks[dst_id].preds.append(src_id)

    def _to_abnormal(self, block: Block, target: int) -> None:
        """Route an abnormal exit (raise/return) through any active
        handlers as well as its target."""
        for handlers in reversed(self.handler_stack):
            for entry in handlers:
                self._edge(block, entry)
        self._edge(block, target)

    # -- statement dispatch -------------------------------------------------

    def build(self, body: list[ast.stmt]) -> tuple[Block, Block]:
        """Build ``body``; returns (entry block, final fallthrough block)."""
        entry = self._new_block()
        current = self._visit_body(body, entry)
        return entry, current

    def _visit_body(self, body: list[ast.stmt], current: Block) -> Block:
        for stmt in body:
            current = self._visit(stmt, current)
        return current

    def _visit(self, stmt: ast.stmt, current: Block) -> Block:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._visit_while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, current)
        if hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar):
            return self._visit_try(stmt, current)  # pragma: no cover
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.stmts.append(stmt)
            return self._visit_body(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self._visit_match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.stmts.append(stmt)
            self._to_abnormal(current, self.exit)
            return self._new_block()  # unreachable continuation
        if isinstance(stmt, ast.Break):
            current.stmts.append(stmt)
            if self.loop_stack:
                self._edge(current, self.loop_stack[-1][1])
            return self._new_block()
        if isinstance(stmt, ast.Continue):
            current.stmts.append(stmt)
            if self.loop_stack:
                self._edge(current, self.loop_stack[-1][0])
            return self._new_block()
        # Everything else — including nested def/class, whose bodies are
        # opaque — is a simple statement of this block.
        current.stmts.append(stmt)
        return current

    def _visit_if(self, stmt: ast.If, current: Block) -> Block:
        current.stmts.append(stmt)
        join = self._new_block()
        then_entry = self._new_block()
        self._edge(current, then_entry)
        then_exit = self._visit_body(stmt.body, then_entry)
        self._edge(then_exit, join)
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry)
            else_exit = self._visit_body(stmt.orelse, else_entry)
            self._edge(else_exit, join)
        else:
            self._edge(current, join)
        return join

    def _visit_while(self, stmt: ast.While, current: Block) -> Block:
        # The test re-executes every iteration: the header is *inside*
        # the loop for depth purposes.
        header = self._new_block(self.depth + 1)
        header.stmts.append(stmt)
        self._edge(current, header)
        after = self._new_block()
        self.depth += 1
        self.loop_stack.append((header.id, after.id))
        body_entry = self._new_block()
        self._edge(header, body_entry)
        body_exit = self._visit_body(stmt.body, body_entry)
        self._edge(body_exit, header)
        self.loop_stack.pop()
        self.depth -= 1
        if stmt.orelse:
            # while/else: the else runs on normal loop exit only; a
            # break jumps straight to `after`, skipping it.
            else_entry = self._new_block()
            self._edge(header, else_entry)
            else_exit = self._visit_body(stmt.orelse, else_entry)
            self._edge(else_exit, after)
        else:
            self._edge(header, after)
        return after

    def _visit_for(self, stmt: ast.For | ast.AsyncFor,
                   current: Block) -> Block:
        # The iterable is evaluated once, at the *outer* depth; the
        # header block still re-executes to bind the target, but a call
        # in the iterable expression is not "in the loop".
        header = self._new_block(self.depth)
        header.stmts.append(stmt)
        self._edge(current, header)
        after = self._new_block()
        self.depth += 1
        self.loop_stack.append((header.id, after.id))
        body_entry = self._new_block()
        self._edge(header, body_entry)
        body_exit = self._visit_body(stmt.body, body_entry)
        self._edge(body_exit, header)
        self.loop_stack.pop()
        self.depth -= 1
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(header, else_entry)
            else_exit = self._visit_body(stmt.orelse, else_entry)
            self._edge(else_exit, after)
        else:
            self._edge(header, after)
        return after

    def _visit_try(self, stmt: ast.Try, current: Block) -> Block:
        after = self._new_block()
        finally_entry: Block | None = None
        if stmt.finalbody:
            finally_entry = self._new_block()
        handler_entries: list[Block] = []
        for handler in stmt.handlers:
            entry = self._new_block()
            entry.stmts.append(handler)
            handler_entries.append(entry)

        # Any statement in the protected region can raise into any
        # handler; a finally additionally intercepts exceptional exits.
        active = [b.id for b in handler_entries]
        if finally_entry is not None:
            active = active + [finally_entry.id]
        self.handler_stack.append(active)
        body_entry = self._new_block()
        self._edge(current, body_entry)
        first = len(self.blocks)  # blocks created past this point are body
        body_exit = self._visit_body(stmt.body, body_entry)
        region = [body_entry] + self.blocks[first:]
        for block in region:
            for entry in handler_entries:
                self._edge(block, entry)
            if finally_entry is not None:
                self._edge(block, finally_entry)
        self.handler_stack.pop()

        exits: list[Block] = []
        if stmt.orelse:
            else_exit = self._visit_body(stmt.orelse, body_exit)
            exits.append(else_exit)
        else:
            exits.append(body_exit)
        for entry in handler_entries:
            exits.append(self._visit_body(
                stmt.handlers[handler_entries.index(entry)].body, entry
            ))
        if finally_entry is not None:
            for block in exits:
                self._edge(block, finally_entry)
            final_exit = self._visit_body(stmt.finalbody, finally_entry)
            self._edge(final_exit, after)
            # Exceptional continuation: the finally may re-raise.
            self._to_abnormal(final_exit, self.exit)
        else:
            for block in exits:
                self._edge(block, after)
        return after

    def _visit_match(self, stmt: ast.Match, current: Block) -> Block:
        current.stmts.append(stmt)
        after = self._new_block()
        for case in stmt.cases:
            entry = self._new_block()
            self._edge(current, entry)
            case_exit = self._visit_body(case.body, entry)
            self._edge(case_exit, after)
        self._edge(current, after)  # no case may match
        return after


def build_cfg(func: FunctionNode | list[ast.stmt]) -> CFG:
    """Build the CFG of one function (or a raw statement list)."""
    builder = _Builder()
    body = func.body if isinstance(func, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)) else func
    entry, last = builder.build(body)
    builder._edge(last, builder.exit)
    return CFG(
        blocks=builder.blocks,
        entry=entry.id,
        exit=builder.exit,
        func=func if isinstance(func, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)) else None,
    )


def function_cfgs(tree: ast.Module):
    """Yield ``(qualname, func node, CFG)`` for every function in the
    module, including methods and nested defs (each analyzed alone)."""
    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child, build_cfg(child)
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)
    yield from walk(tree, "")


# ---------------------------------------------------------------------------
# statement-granular expressions, defs, uses, calls
# ---------------------------------------------------------------------------


def own_expressions(stmt: ast.AST) -> list[ast.expr]:
    """The expressions that execute *with* ``stmt`` in its block —
    control-statement bodies excluded (they are separate blocks)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs: list[ast.expr] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        return exprs
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return list(stmt.decorator_list) + [
            d for d in stmt.args.defaults + stmt.args.kw_defaults
            if d is not None
        ]
    if isinstance(stmt, ast.ClassDef):
        return list(stmt.decorator_list) + list(stmt.bases) + [
            kw.value for kw in stmt.keywords
        ]
    return [child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)]


def _names(expr: ast.AST, ctx: type, *, through_opaque: bool):
    """Name nodes of the given context class under ``expr``; nested
    function/lambda bodies are descended only when ``through_opaque``."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if not through_opaque and isinstance(node, _OPAQUE):
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ctx):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def stmt_defs(stmt: ast.AST) -> set[str]:
    """Names this statement binds in the enclosing function's scope."""
    defs: set[str] = set()
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return {stmt.name}
    if isinstance(stmt, ast.ExceptHandler):
        return {stmt.name} if stmt.name else set()
    if isinstance(stmt, ast.Import):
        return {(a.asname or a.name.split(".", 1)[0]) for a in stmt.names}
    if isinstance(stmt, ast.ImportFrom):
        return {(a.asname or a.name) for a in stmt.names}
    for expr in own_expressions(stmt):
        defs.update(n.id for n in _names(expr, ast.Store,
                                         through_opaque=False))
    return defs


def stmt_uses(stmt: ast.AST) -> set[str]:
    """Names this statement reads.  Reads inside nested def/lambda
    bodies count (free variables stay live); a Store through a
    subscript or attribute (``xs[i] = ...``) counts as a *use* of the
    base name (the container must exist)."""
    uses: set[str] = set()
    for expr in own_expressions(stmt):
        uses.update(n.id for n in _names(expr, ast.Load,
                                         through_opaque=True))
        # base names of non-Name store targets
        for node in ast.walk(expr):
            if isinstance(node, (ast.Subscript, ast.Attribute)) and \
                    isinstance(node.ctx, ast.Store):
                for name in _names(node.value, ast.Load,
                                   through_opaque=True):
                    uses.add(name.id)
    return uses


def calls_in_stmt(stmt: ast.AST):
    """``(call node, comprehension depth)`` for every call executing
    with this statement.  Nested def/lambda bodies are skipped; a call
    inside a comprehension's element or conditions runs once per
    produced item, so it carries an extra loop depth (the first
    generator's iterable runs once and stays at +0)."""
    for expr in own_expressions(stmt):
        yield from _calls_in_expr(expr, 0)


def _calls_in_expr(expr: ast.AST, depth: int):
    if isinstance(expr, _OPAQUE):
        return
    if isinstance(expr, _COMPREHENSIONS):
        parts: list[tuple[ast.AST, int]] = []
        if isinstance(expr, ast.DictComp):
            parts.append((expr.key, depth + 1))
            parts.append((expr.value, depth + 1))
        else:
            parts.append((expr.elt, depth + 1))
        for i, gen in enumerate(expr.generators):
            parts.append((gen.iter, depth if i == 0 else depth + 1))
            for cond in gen.ifs:
                parts.append((cond, depth + 1))
        for part, d in parts:
            yield from _calls_in_expr(part, d)
        return
    if isinstance(expr, ast.Call):
        yield expr, depth
    for child in ast.iter_child_nodes(expr):
        yield from _calls_in_expr(child, depth)
