"""Retry-discipline analysis.

The reliability layer (``repro.rmi.reliability``) retries with a
*bounded* loop: ``RetryPolicy`` caps attempts and can carry a deadline.
Hand-rolled retry loops tend to lose that property — a constant-true
``while`` that swallows the transport error and tries again will spin
forever when the peer stays down, and when such a loop is reachable
from a message handler it pins the request process (and the per-object
executing flag) for the rest of the run.

Rules
-----
``unbounded-retry`` (error)
    A ``while True``-style loop whose failure path has no exit: the body
    wraps a call in a ``try`` whose handler swallows the exception, and
    no ``break``/``return``/``raise`` outside the try's success path
    (its body/``else``) can stop the loop — so persistent failure loops
    forever.  Reported only when the loop is reachable from a message
    handler (``_h_*`` / ``_on_*`` / ``endpoint.register`` targets)
    through project call-graph edges, where it blocks a request slot.
    Bound the loop (``for attempt in range(n)``) or re-raise once a
    deadline passes.

Loops whose only escapes sit in the try's success path are still
flagged — success terminates, failure never does, which is exactly the
bug.  Kernel/sanitizer modules are excluded as in the other
interprocedural passes.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, Finding, Project, Severity
from repro.analysis.blocking import (
    HANDLER_PREFIXES,
    _registered_handler_names,
)
from repro.analysis.callgraph import CallGraph, FuncInfo
from repro.analysis.interprocedural import excluded_path


def _const_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _walk_stmts(stmts):
    """Statements reachable in this function, skipping nested defs."""
    todo = list(stmts)
    while todo:
        stmt = todo.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield stmt
        todo.extend(
            child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.stmt)
        )


def _escapes(stmts) -> list[ast.stmt]:
    return [
        stmt for stmt in _walk_stmts(stmts)
        if isinstance(stmt, (ast.Break, ast.Return, ast.Raise))
    ]


def _has_call(stmts) -> bool:
    for stmt in _walk_stmts(stmts):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                return True
    return False


def _unbounded_retry_loop(func: ast.FunctionDef) -> ast.While | None:
    """The first retry loop in ``func`` whose failure path never exits.

    A loop qualifies when some ``try`` in its body attempts a call and
    every ``break``/``return``/``raise`` in the loop sits inside that
    try's success path (body/``else``) — the except/finally/rest of the
    body offer no way out, so a persistently failing call loops forever.
    """
    for stmt in _walk_stmts(func.body):
        if not (isinstance(stmt, ast.While) and _const_true(stmt.test)):
            continue
        loop_escapes = len(_escapes(stmt.body)) + len(_escapes(stmt.orelse))
        for inner in _walk_stmts(stmt.body):
            if not (isinstance(inner, ast.Try) and inner.handlers):
                continue
            if not _has_call(inner.body):
                continue
            success_escapes = (
                len(_escapes(inner.body)) + len(_escapes(inner.orelse))
            )
            if loop_escapes == success_escapes:
                return stmt
    return None


class RetryDisciplineChecker(Checker):
    name = "retry-discipline"
    rules = {"unbounded-retry": Severity.ERROR}

    def check(self, project: Project) -> list[Finding]:
        graph = CallGraph(project)
        flagged: dict = {}  # FuncKey -> (FuncInfo, ast.While)
        for key, info in graph.functions.items():
            if excluded_path(key.path):
                continue
            loop = _unbounded_retry_loop(info.node)
            if loop is not None:
                flagged[key] = (info, loop)
        if not flagged:
            return []
        parents = self._reach_from_handlers(graph, project)
        findings: list[Finding] = []
        for key in sorted(flagged, key=lambda k: (k.path, k.qualname)):
            if key not in parents:
                continue
            info, loop = flagged[key]
            chain = self._chain(parents, key)
            via = (
                f" (via {' -> '.join(chain)})" if len(chain) > 1 else ""
            )
            findings.append(self.finding(
                "unbounded-retry",
                key.path,
                loop,
                f"{info.label} retries forever: the loop swallows the "
                "failure and has no attempt or deadline bound, and it is "
                f"reachable from message handler {chain[0]}{via} — a peer "
                "that stays down pins the request process for the rest "
                "of the run. Bound it (for attempt in range(n)) or "
                "re-raise past a deadline",
                symbol=info.label,
            ))
        return findings

    def _reach_from_handlers(self, graph: CallGraph, project: Project):
        """FuncKey -> parent FuncInfo (None for the handlers themselves)
        for everything a message handler transitively calls."""
        entries: list[FuncInfo] = []
        for module in project.modules:
            if excluded_path(module.path):
                continue
            registered = _registered_handler_names(module.tree)
            for key, info in graph.functions.items():
                if key.path != module.path:
                    continue
                if (info.name.startswith(HANDLER_PREFIXES)
                        or info.name in registered):
                    entries.append(info)
        parents: dict = {info.key: None for info in entries}
        queue = list(entries)
        while queue:
            info = queue.pop(0)
            for target, _call in graph.callees(info):
                if target.key in parents or excluded_path(target.key.path):
                    continue
                parents[target.key] = info
                queue.append(target)
        return parents

    @staticmethod
    def _chain(parents: dict, key) -> list[str]:
        chain = [key.qualname]
        cursor = parents[key]
        while cursor is not None:
            chain.append(cursor.label)
            cursor = parents[cursor.key]
        chain.reverse()
        return chain
