"""Interprocedural rules built on the project call graph.

The per-file checkers see one function at a time, so a blocking call
hidden one hop away — ``with self._lock: self._refresh()`` where
``_refresh`` performs a synchronous RPC — passes silently.  These rules
walk :class:`~repro.analysis.callgraph.CallGraph` edges to catch the
cross-function variants.

Rules
-----
``rpc-under-lock`` (error)
    A lock-held region calls (possibly through several project
    functions) into a blocking rendezvous — ``.rpc(...)``,
    ``.wait(...)``, ``.get_result(...)`` or ``.result_or_timeout(...)``.
    Holding a lock across a network round-trip stalls every contender
    for the lock's full timeout, and a peer that calls back into this
    agent deadlocks (paper Section 5.2 runs one thread per request).

``kernel-block-transitive`` (warning)
    A kernel-process entry point (message handler or spawned function)
    transitively reaches a raw wall-clock ``time.sleep``.  Under the
    virtual kernel that thread stalls for real while simulated time
    stands still; use ``kernel.sleep`` so the scheduler advances.

Modules under ``repro/kernel`` and ``repro/sanitizer`` are excluded from
both region scanning and traversal: the kernel *is* the blocking layer
(its futures' ``wait`` methods are the sinks themselves) and legitimately
issues real sleeps, and the sanitizer instruments it.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
    dotted_name,
    iter_methods,
    self_attr_name,
)
from repro.analysis.blocking import (
    HANDLER_PREFIXES,
    _registered_handler_names,
)
from repro.analysis.callgraph import CallGraph, FuncInfo, direct_calls
from repro.analysis.lock_discipline import (
    _collect_lock_attrs as _threading_lock_attrs,
)

#: attribute calls that block on a remote party or another process
RPC_SINKS = {"rpc", "wait", "get_result", "result_or_timeout"}
#: raw wall-clock sleeps (kernel.sleep is virtual time and fine)
SLEEP_SINKS = {"time.sleep", "_time.sleep"}

_EXCLUDED_SEGMENTS = {"kernel", "sanitizer"}


def excluded_path(path: str) -> bool:
    """Kernel/sanitizer modules: the blocking layer itself, excluded
    from interprocedural traversal (module docstring) and reused by
    :mod:`repro.analysis.share` for the same reason."""
    return bool(_EXCLUDED_SEGMENTS.intersection(re.split(r"[\\/]", path)))


_excluded = excluded_path


def collect_lock_attrs(klass: ast.ClassDef) -> set[str]:
    """Lock attributes: ``threading.Lock()``-style factories plus
    sanitizer-tracked locks from ``*.make_lock(...)``."""
    locks = set(_threading_lock_attrs(klass))
    for node in ast.walk(klass):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "make_lock"):
            continue
        for target in node.targets:
            attr = self_attr_name(target)
            if attr is not None:
                locks.add(attr)
    return locks


class _GuardedCallScanner(ast.NodeVisitor):
    """Collects the calls a method makes while holding >= 1 lock."""

    def __init__(self, lock_attrs: set[str]) -> None:
        self.lock_attrs = lock_attrs
        self.held: list[str] = []
        self.found: list[tuple[ast.Call, tuple[str, ...]]] = []

    def _is_lock(self, name: str) -> bool:
        return name in self.lock_attrs or "lock" in name.lower()

    def visit_With(self, node: ast.With) -> None:
        acquired = 0
        for item in node.items:
            name = self_attr_name(item.context_expr)
            if name is None and isinstance(item.context_expr, ast.Name):
                name = item.context_expr.id
            if name is not None and self._is_lock(name):
                self.held.append(name)
                acquired += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(acquired):
            self.held.pop()

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            self.found.append((node, tuple(self.held)))
        self.generic_visit(node)

    # Nested defs run later, possibly without the lock held.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _rpc_sink(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in RPC_SINKS:
        return func.attr
    return None


def _sleep_sink(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    return name if name in SLEEP_SINKS else None


def _find_sink(
    graph: CallGraph,
    roots: list[FuncInfo],
    sink_of,
) -> tuple[list[str], str, FuncInfo, ast.Call] | None:
    """BFS through project edges from ``roots`` until some function
    contains a sink call.  Returns (chain of qualnames, sink text,
    function holding the sink, sink call node), or None."""
    queue = list(roots)
    parents: dict[object, tuple[FuncInfo | None, FuncInfo]] = {
        id(info): (None, info) for info in roots
    }
    seen = {info.key for info in roots}
    while queue:
        info = queue.pop(0)
        for call in direct_calls(info.node):
            sink = sink_of(call)
            if sink is not None:
                chain: list[str] = []
                cursor: FuncInfo | None = info
                while cursor is not None:
                    chain.append(cursor.label)
                    cursor = parents[id(cursor)][0]
                chain.reverse()
                return chain, sink, info, call
        for target, _call in graph.callees(info):
            if target.key in seen or _excluded(target.key.path):
                continue
            seen.add(target.key)
            parents[id(target)] = (info, target)
            queue.append(target)
    return None


class InterproceduralChecker(Checker):
    name = "interprocedural"
    rules = {
        "rpc-under-lock": Severity.ERROR,
        "kernel-block-transitive": Severity.WARNING,
    }

    def check(self, project: Project) -> list[Finding]:
        graph = CallGraph(project)
        findings: list[Finding] = []
        for module in project.modules:
            if _excluded(module.path):
                continue
            findings.extend(self._check_locks(graph, module))
            findings.extend(self._check_entries(graph, module))
        return findings

    # -- rpc-under-lock ------------------------------------------------------

    def _check_locks(self, graph: CallGraph, module: Module):
        for klass in ast.walk(module.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            lock_attrs = collect_lock_attrs(klass)
            for method in iter_methods(klass):
                scanner = _GuardedCallScanner(lock_attrs)
                for stmt in method.body:
                    scanner.visit(stmt)
                for call, held in scanner.found:
                    where = f"{klass.name}.{method.name}"
                    finding = self._judge_guarded_call(
                        graph, module, where, call, held
                    )
                    if finding is not None:
                        yield finding

    def _judge_guarded_call(
        self,
        graph: CallGraph,
        module: Module,
        where: str,
        call: ast.Call,
        held: tuple[str, ...],
    ) -> Finding | None:
        locks = ", ".join(f"'{name}'" for name in held)
        sink = _rpc_sink(call)
        if sink is not None:
            return self.finding(
                "rpc-under-lock",
                module.path,
                call,
                f"{where} calls blocking '.{sink}(...)' while holding "
                f"lock(s) {locks}; every contender stalls for the full "
                "round-trip and a peer calling back in deadlocks",
                symbol=where,
            )
        roots = [
            t for t in graph.resolve(self._info_for(graph, module, where),
                                     call)
            if not _excluded(t.key.path)
        ]
        if not roots:
            return None
        hit = _find_sink(graph, roots, _rpc_sink)
        if hit is None:
            return None
        chain, sink, holder, sink_call = hit
        return self.finding(
            "rpc-under-lock",
            module.path,
            call,
            f"{where} holds lock(s) {locks} while calling "
            f"{' -> '.join(chain)}, which blocks on '.{sink}(...)' at "
            f"{holder.key.path}:{getattr(sink_call, 'lineno', '?')}; "
            "release the lock before the rendezvous",
            symbol=where,
        )

    def _info_for(
        self, graph: CallGraph, module: Module, qualname: str
    ) -> FuncInfo:
        from repro.analysis.callgraph import FuncKey

        return graph.functions[FuncKey(module.path, qualname)]

    # -- kernel-block-transitive --------------------------------------------

    def _entry_points(self, graph: CallGraph, module: Module):
        registered = _registered_handler_names(module.tree)
        spawned: set[str] = set()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "spawn" and node.args):
                continue
            target = node.args[0]
            name = self_attr_name(target)
            if name is None and isinstance(target, ast.Name):
                name = target.id
            if name is not None:
                spawned.add(name)
        for key, info in graph.functions.items():
            if key.path != module.path:
                continue
            if (info.name.startswith(HANDLER_PREFIXES)
                    or info.name in registered
                    or info.name in spawned):
                yield info

    def _check_entries(self, graph: CallGraph, module: Module):
        for entry in self._entry_points(graph, module):
            # Direct sleeps in handlers are blocking-sleep-in-handler's
            # job; this rule owns the >= 1 hop cases.
            for call in direct_calls(entry.node):
                roots = [
                    t for t in graph.resolve(entry, call)
                    if not _excluded(t.key.path)
                ]
                if not roots:
                    continue
                hit = _find_sink(graph, roots, _sleep_sink)
                if hit is None:
                    continue
                chain, sink, holder, sink_call = hit
                yield self.finding(
                    "kernel-block-transitive",
                    module.path,
                    call,
                    f"kernel process entry {entry.label} reaches raw "
                    f"wall-clock '{sink}' via {' -> '.join(chain)} at "
                    f"{holder.key.path}:"
                    f"{getattr(sink_call, 'lineno', '?')}; use "
                    "kernel.sleep so virtual time advances",
                    symbol=entry.label,
                )
                break  # one finding per entry point is enough
