"""Generic typestate dataflow over :mod:`repro.analysis.cfg` graphs.

A *typestate* refines "what is this variable?" with "what has happened
to it?": a result handle is ``created`` until awaited, ``consumed``
after; a resolved location is ``valid`` until the object migrates,
``stale`` after.  Clients describe one protocol as a
:class:`TypestateSpec` — a birth table, a transition table and an error
table over opaque state/event-kind strings — plus an ``events_of``
callback that recognizes the protocol's events in a statement.  The
solver is protocol-agnostic: a forward may-analysis whose facts are
``(name, state)`` pairs, merged by union at joins, so a name carries
*every* state some path could have left it in.

Termination: facts are drawn from the finite set (names in the
function) x (states in the spec), the join is set union and per-block
transfer is monotone (adding an input fact can only add output facts —
each pair steps independently), so the worklist reaches the least
fixpoint.  ``tests/test_symshare.py`` exercises this property on
randomized CFGs.

Copies (``a = b``) are handled by the solver itself: the target
inherits the source's states, and — when the spec sets
``copy_kills_source`` — the source moves to ``escape_state`` so that
linear protocols (a handle awaited through its new name) do not
double-report through the old one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.alias import copy_source
from repro.analysis.cfg import CFG, Block, stmt_defs


@dataclass(frozen=True)
class TSEvent:
    """One protocol event: ``kind`` happened to ``name`` at ``node``."""

    name: str
    kind: str
    node: ast.AST


@dataclass(frozen=True)
class TypestateSpec:
    """One protocol: births, transitions, and which steps are errors.

    * ``births``: event kind -> state the name enters when the event
      *binds* it (``x = obj.ainvoke(...)`` births ``x`` at "created").
    * ``transitions``: (state, event kind) -> next state.  Pairs not
      listed leave the state unchanged (events foreign to the protocol
      are ignored, not errors).
    * ``errors``: (state, event kind) -> error key reported when the
      event fires on a name in that state.  An erroring step also
      transitions if the pair is in ``transitions``; otherwise the
      state is kept so downstream uses keep their context.
    * ``escape_state``: state for names whose object left the
      function's view (copied away under ``copy_kills_source``, or
      moved there by an explicit transition).  ``None`` drops the fact.
    """

    name: str
    births: dict[str, str] = field(default_factory=dict)
    transitions: dict[tuple[str, str], str] = field(default_factory=dict)
    errors: dict[tuple[str, str], str] = field(default_factory=dict)
    escape_state: str | None = None
    copy_kills_source: bool = False

    def step(self, state: str, kind: str) -> tuple[str, str | None]:
        """``(next state, error key or None)`` for one event."""
        return (
            self.transitions.get((state, kind), state),
            self.errors.get((state, kind)),
        )


@dataclass(frozen=True)
class Violation:
    """One error step observed on some path."""

    error: str
    name: str
    state: str
    node: ast.AST
    event: TSEvent


EventsOf = Callable[[ast.AST], Iterable[TSEvent]]


class TypestateAnalysis:
    """Solve one :class:`TypestateSpec` over one function CFG."""

    def __init__(self, cfg: CFG, spec: TypestateSpec,
                 events_of: EventsOf) -> None:
        self.cfg = cfg
        self.spec = spec
        #: statement identity -> its events, precomputed once
        self._events: dict[int, list[TSEvent]] = {}
        for _block, _idx, stmt in cfg.statements():
            self._events[id(stmt)] = list(events_of(stmt))
        self.in_: dict[int, frozenset[tuple[str, str]]] = {}
        self._solve()

    # -- transfer ------------------------------------------------------------

    def _transfer_stmt(
        self,
        stmt: ast.AST,
        facts: frozenset[tuple[str, str]],
        sink: list[Violation] | None,
    ) -> frozenset[tuple[str, str]]:
        spec = self.spec
        events = self._events[id(stmt)]
        births = [e for e in events if e.kind in spec.births]
        out = set(facts)
        # 1. non-birth events step every state the name may be in
        for event in events:
            if event.kind in spec.births:
                continue
            stepped: set[tuple[str, str]] = set()
            for pair in list(out):
                name, state = pair
                if name != event.name:
                    continue
                out.discard(pair)
                nxt, error = spec.step(state, event.kind)
                stepped.add((name, nxt))
                if error is not None and sink is not None:
                    sink.append(Violation(
                        error, name, state, stmt, event
                    ))
            out |= stepped
        # 2. copies: the target inherits the source's states
        pair = copy_source(stmt)
        copied: set[str] = set()
        if pair is not None:
            target, source = pair
            copied = {state for n, state in out if n == source}
            if copied and spec.copy_kills_source:
                out = {p for p in out if p[0] != source}
                if spec.escape_state is not None:
                    out.add((source, spec.escape_state))
        # 3. rebinding kills the old object's facts for that name
        born = {e.name for e in births}
        for name in stmt_defs(stmt):
            if name in born:
                continue
            if pair is not None and name == pair[0]:
                continue
            out = {p for p in out if p[0] != name}
        if pair is not None and copied:
            target = pair[0]
            out = {p for p in out if p[0] != target}
            out |= {(target, state) for state in copied}
        # 4. births bind the name fresh
        for event in births:
            out = {p for p in out if p[0] != event.name}
            out.add((event.name, spec.births[event.kind]))
        return frozenset(out)

    def _transfer_block(
        self,
        block: Block,
        facts: frozenset[tuple[str, str]],
        sink: list[Violation] | None = None,
    ) -> frozenset[tuple[str, str]]:
        for stmt in block.stmts:
            facts = self._transfer_stmt(stmt, facts, sink)
        return facts

    # -- fixpoint ------------------------------------------------------------

    def _solve(self) -> None:
        blocks = {b.id: b for b in self.cfg.blocks}
        in_: dict[int, frozenset] = {
            b.id: frozenset() for b in self.cfg.blocks
        }
        out: dict[int, frozenset] = {
            b.id: frozenset() for b in self.cfg.blocks
        }
        work = [b.id for b in self.cfg.blocks]
        while work:
            bid = work.pop()
            block = blocks[bid]
            merged = frozenset().union(
                *(out[p] for p in block.preds)
            ) if block.preds else frozenset()
            in_[bid] = merged
            new_out = self._transfer_block(block, merged)
            if new_out != out[bid]:
                out[bid] = new_out
                work.extend(block.succs)
        self.in_ = in_
        self.out = out

    # -- queries -------------------------------------------------------------

    def facts_before(self, block: Block,
                     idx: int) -> frozenset[tuple[str, str]]:
        """``(name, state)`` pairs just before ``block.stmts[idx]``."""
        facts = self.in_[block.id]
        for stmt in block.stmts[:idx]:
            facts = self._transfer_stmt(stmt, facts, None)
        return facts

    def states_before(self, block: Block, idx: int,
                      name: str) -> frozenset[str]:
        return frozenset(
            state for n, state in self.facts_before(block, idx)
            if n == name
        )

    def violations(self) -> list[Violation]:
        """Every error step, re-walked from the solved block inputs and
        deduplicated per (statement, name, error)."""
        raw: list[Violation] = []
        for block in self.cfg.blocks:
            self._transfer_block(block, self.in_[block.id], raw)
        seen: set[tuple[int, str, str]] = set()
        unique: list[Violation] = []
        for v in raw:
            key = (id(v.node), v.name, v.error)
            if key in seen:
                continue
            seen.add(key)
            unique.append(v)
        return unique


__all__ = [
    "TSEvent",
    "TypestateSpec",
    "TypestateAnalysis",
    "Violation",
]
