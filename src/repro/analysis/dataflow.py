"""Generic worklist dataflow over :mod:`repro.analysis.cfg` graphs.

One solver, two directions.  An analysis provides per-block ``gen`` /
``kill`` sets (the classic bitvector form — both reaching definitions
and liveness fit it) and the solver iterates to the least fixpoint
under union.  Statement-level refinements (``live_after``,
``reaching_before``) re-walk a single block from its boundary, so rules
can ask questions at call-site granularity without the solver tracking
every statement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.cfg import CFG, Block, stmt_defs, stmt_uses


@dataclass
class Solution:
    """Fixpoint ``in``/``out`` sets per block id."""

    in_: dict[int, frozenset]
    out: dict[int, frozenset]


class DataflowAnalysis:
    """Union (may) analysis in gen/kill form.

    Subclasses set ``forward`` and implement :meth:`gen` and
    :meth:`kill`; facts are hashable (names, definition sites, ...).
    """

    forward: bool = True

    def gen(self, block: Block) -> frozenset:  # pragma: no cover
        raise NotImplementedError

    def kill(self, block: Block) -> frozenset:  # pragma: no cover
        raise NotImplementedError

    def transfer(self, block: Block, inputs: frozenset) -> frozenset:
        return self.gen(block) | (inputs - self.kill(block))

    def solve(self, cfg: CFG) -> Solution:
        preds = {b.id: b.preds for b in cfg.blocks}
        succs = {b.id: b.succs for b in cfg.blocks}
        sources = preds if self.forward else succs
        drains = succs if self.forward else preds
        in_: dict[int, frozenset] = {b.id: frozenset() for b in cfg.blocks}
        out: dict[int, frozenset] = {b.id: frozenset() for b in cfg.blocks}
        work = [b.id for b in cfg.blocks]
        blocks = {b.id: b for b in cfg.blocks}
        while work:
            bid = work.pop()
            merged = frozenset().union(
                *(out[p] for p in sources[bid])
            ) if sources[bid] else frozenset()
            in_[bid] = merged
            new_out = self.transfer(blocks[bid], merged)
            if new_out != out[bid]:
                out[bid] = new_out
                work.extend(drains[bid])
        if self.forward:
            return Solution(in_=in_, out=out)
        # For a backward analysis, report in program direction: ``in_``
        # holds facts at block entry, ``out`` at block exit.
        return Solution(in_=out, out=in_)


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------


class Liveness(DataflowAnalysis):
    """Backward may-analysis: which names are read later."""

    forward = False

    def __init__(self, cfg: CFG) -> None:
        self._gen: dict[int, frozenset] = {}
        self._kill: dict[int, frozenset] = {}
        for block in cfg.blocks:
            upward: set[str] = set()
            defined: set[str] = set()
            for stmt in block.stmts:
                upward |= stmt_uses(stmt) - defined
                defined |= stmt_defs(stmt)
            self._gen[block.id] = frozenset(upward)
            self._kill[block.id] = frozenset(defined)
        self.cfg = cfg
        self.solution = self.solve(cfg)

    def gen(self, block: Block) -> frozenset:
        return self._gen[block.id]

    def kill(self, block: Block) -> frozenset:
        return self._kill[block.id]

    def live_after(self, block: Block, idx: int) -> frozenset:
        """Names live immediately *after* ``block.stmts[idx]``."""
        live = set(self.solution.out[block.id])
        for stmt in reversed(block.stmts[idx + 1:]):
            live -= stmt_defs(stmt)
            live |= stmt_uses(stmt)
        return frozenset(live)


# ---------------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Definition:
    """One binding site: name + (block, statement index) coordinates."""

    name: str
    block: int
    index: int
    line: int


def _block_defs(block: Block) -> list[Definition]:
    defs = []
    for idx, stmt in enumerate(block.stmts):
        for name in stmt_defs(stmt):
            defs.append(Definition(
                name, block.id, idx, getattr(stmt, "lineno", 0)
            ))
    return defs


class ReachingDefinitions(DataflowAnalysis):
    """Forward may-analysis: which bindings may reach a point."""

    forward = True

    def __init__(self, cfg: CFG) -> None:
        self._all: dict[str, set[Definition]] = {}
        per_block: dict[int, list[Definition]] = {}
        for block in cfg.blocks:
            block_defs = _block_defs(block)
            per_block[block.id] = block_defs
            for d in block_defs:
                self._all.setdefault(d.name, set()).add(d)
        self._gen: dict[int, frozenset] = {}
        self._kill: dict[int, frozenset] = {}
        for block in cfg.blocks:
            downward: dict[str, Definition] = {}
            for d in per_block[block.id]:
                downward[d.name] = d  # later defs shadow earlier ones
            self._gen[block.id] = frozenset(downward.values())
            killed: set[Definition] = set()
            for name in downward:
                killed |= self._all[name] - {downward[name]}
            self._kill[block.id] = frozenset(killed)
        self.cfg = cfg
        self.solution = self.solve(cfg)

    def gen(self, block: Block) -> frozenset:
        return self._gen[block.id]

    def kill(self, block: Block) -> frozenset:
        return self._kill[block.id]

    def reaching_before(self, block: Block, idx: int) -> frozenset:
        """Definitions reaching the point just before
        ``block.stmts[idx]``."""
        reaching = set(self.solution.in_[block.id])
        for i, stmt in enumerate(block.stmts[:idx]):
            defined = stmt_defs(stmt)
            if not defined:
                continue
            reaching = {d for d in reaching if d.name not in defined}
            line = getattr(stmt, "lineno", 0)
            for name in defined:
                reaching.add(Definition(name, block.id, i, line))
        return frozenset(reaching)

    def reaching_after(self, block: Block, idx: int) -> frozenset:
        """Definitions reaching the point just *after*
        ``block.stmts[idx]`` — ``reaching_before`` plus the statement's
        own bindings (which shadow same-name predecessors).  This is the
        boundary alias analysis needs: a copy ``a = b`` is judged by
        which ``b`` bindings were in force once the copy executed."""
        return self.reaching_before(block, idx + 1)


def defs_of(stmt: ast.AST) -> set[str]:
    """Re-export of :func:`repro.analysis.cfg.stmt_defs` for callers
    that only import the dataflow layer."""
    return stmt_defs(stmt)


def uses_of(stmt: ast.AST) -> set[str]:
    """Re-export of :func:`repro.analysis.cfg.stmt_uses`."""
    return stmt_uses(stmt)
