"""symshare: copy-semantics and stale-reference rules.

JavaSymphony invocations pass arguments across host boundaries **by
copy** while local aliases keep **reference** semantics (paper
§4.4–4.6), and ``migrate`` invalidates any cached notion of where an
object lives.  Neither symlint (locks), symloc (communication shape)
nor the runtime symsan sanitizer can see the resulting bug classes —
they need alias, escape and lifetime reasoning.  This pass layers the
three symshare engines over each function:

* :mod:`repro.analysis.alias` answers "which names may denote the
  object that was sent?";
* :mod:`repro.analysis.escape` answers "what do callees do with the
  arguments I hand them?" (bottom-up SCC summaries, so flows through
  project functions are visible);
* :mod:`repro.analysis.typestate` tracks protocol states — result
  handles (created → polled → consumed; oneway handles are ``None``)
  and resolved locations (valid → stale-after-migrate).

Rules
-----
``mutate-after-send`` (error)
    An object aliased into an ``ainvoke``/``minvoke`` argument is
    mutated — directly or through a callee — before the handle is
    awaited.  The remote side was handed a pre-mutation copy; the write
    only diverges the local replica.  Polling ``is_ready()`` does not
    clear the window (polled != consumed).

``live-resource-in-remote-arg`` (error)
    A lock, kernel, tracer, future, open file or result handle flows —
    possibly through callees, via escape summaries — into a
    remote-invoke argument: a guaranteed pickle failure, or worse, a
    live resource silently copied.

``stale-ref-after-migrate`` (warning)
    A node resolved with ``get_node()`` is used as a placement or
    migration target after the same object migrated; the cached
    location no longer matches where the object lives.

``oneway-result-consumed`` (error)
    ``oinvoke`` is one-sided and returns ``None``; awaiting or polling
    its "result" fails at runtime.

``handle-escapes-unawaited`` (warning)
    A result handle escapes into an attribute that no code in the
    project ever reads, or a handle-returning project function's result
    is provably discarded at a call site — strictly stronger than
    symloc's local ``dropped-result-handle``, which only sees direct
    ``ainvoke`` statements.

Suppress with ``# symlint: disable=<rule>`` plus a justification, as
for every other pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.alias import AliasAnalysis
from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
    dotted_name,
    self_attr_name,
)
from repro.analysis.callgraph import CallGraph, FuncInfo, FuncKey
from repro.analysis.cfg import CFG, Block, calls_in_stmt, function_cfgs
from repro.analysis.dataflow import Definition, ReachingDefinitions
from repro.analysis.escape import (
    HANDLE_INVOKES,
    MUTATOR_METHODS,
    REMOTE_INVOKES,
    EscapeAnalysis,
    arg_value_names,
    map_call_args,
)
from repro.analysis.interprocedural import collect_lock_attrs, excluded_path
from repro.analysis.typestate import TSEvent, TypestateAnalysis, TypestateSpec

#: methods that consume a handle's result (block until / yield results)
AWAIT_METHODS = {"get_result", "get_results", "outcomes", "as_completed"}
#: non-blocking readiness probes — these do NOT consume the handle
POLL_METHODS = {"is_ready", "ready_count"}

#: constructors whose value is a live local resource (last path part)
RESOURCE_CTORS = {
    "Lock": "lock", "RLock": "lock", "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore", "Condition": "condition",
    "Event": "event", "Barrier": "barrier", "open": "open file",
    "Tracer": "tracer", "RealKernel": "kernel", "VirtualKernel": "kernel",
}
#: factory methods producing sanitizer-tracked / kernel-tied resources
RESOURCE_FACTORIES = {
    "make_lock": "lock", "make_semaphore": "semaphore",
    "create_future": "future",
}

#: the handle protocol — poll is observably not consumption
HANDLE_SPEC = TypestateSpec(
    name="handle",
    births={"@handle": "created", "@oneway": "oneway"},
    transitions={
        ("created", "await"): "consumed",
        ("polled", "await"): "consumed",
        ("created", "poll"): "polled",
        ("polled", "poll"): "polled",
        ("created", "escape"): "escaped",
        ("polled", "escape"): "escaped",
    },
    errors={
        ("oneway", "await"): "oneway-await",
        ("oneway", "poll"): "oneway-poll",
    },
    escape_state="escaped",
    copy_kills_source=True,
)

#: resolved locations — migrate invalidates, re-resolving re-births
LOCATION_SPEC = TypestateSpec(
    name="location",
    births={"@loc": "valid"},
    transitions={("valid", "migrate"): "stale"},
    errors={("stale", "use"): "stale-use"},
)

#: handle states in which the remote result is still outstanding
UNAWAITED = {"created", "polled"}


def _invoke_attr(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute) and \
            call.func.attr in REMOTE_INVOKES:
        return call.func.attr
    return None


def _call_arg_exprs(call: ast.Call) -> list[ast.expr]:
    return list(call.args) + [kw.value for kw in call.keywords]


def _payload_names(call: ast.Call) -> set[str]:
    names: set[str] = set()
    for arg in _call_arg_exprs(call):
        names |= arg_value_names(arg)
    return names


def _receiver_text(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


@dataclass
class _SendSite:
    """One ``ainvoke``/``minvoke`` whose payload we watch for mutation."""

    handle: str  # bound name, or "@send:<line>" for discarded handles
    invoke: str
    line: int
    block_id: int
    idx: int
    #: alias-of-payload name -> its bindings in force at the send
    watch: dict[str, frozenset[Definition]]
    #: the handle's own binding, to tell this send apart from a later
    #: rebinding of the same name (None for synthetic/discarded sends)
    handle_def: Definition | None = None
    synthetic: bool = False


@dataclass
class _FieldStore:
    """``recv.attr = <handle>`` awaiting a project-wide read check."""

    module: Module
    node: ast.AST
    attr: str
    owner: str


class _FunctionPass:
    """All symshare per-function state for one CFG."""

    def __init__(
        self,
        checker: "SymshareChecker",
        module: Module,
        qualname: str,
        func: ast.AST,
        cfg: CFG,
        graph: CallGraph,
        escape: EscapeAnalysis,
        lock_attrs: set[str],
    ) -> None:
        self.checker = checker
        self.module = module
        self.qualname = qualname
        self.func = func
        self.cfg = cfg
        self.graph = graph
        self.escape = escape
        self.lock_attrs = lock_attrs
        self.info: FuncInfo | None = graph.functions.get(
            FuncKey(module.path, qualname)
        )
        self.reaching = ReachingDefinitions(cfg)
        self.alias = AliasAnalysis(cfg, self.reaching)
        self.sends: list[_SendSite] = []
        self.field_stores: list[_FieldStore] = []
        self._handle_events: dict[int, list[TSEvent]] = {}
        self._location_events: dict[int, list[TSEvent]] = {}
        self._collect_events()
        self.handles = TypestateAnalysis(
            cfg, HANDLE_SPEC,
            lambda stmt: self._handle_events.get(id(stmt), ()),
        )
        self.locations = TypestateAnalysis(
            cfg, LOCATION_SPEC,
            lambda stmt: self._location_events.get(id(stmt), ()),
        )

    # -- event tables --------------------------------------------------------

    def _is_handle_call(self, call: ast.Call) -> bool:
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in HANDLE_INVOKES:
            return True
        if self.info is not None:
            for callee in self.graph.resolve(self.info, call):
                if self.escape.summary(callee.key).returns_handle:
                    return True
        return False

    def _collect_events(self) -> None:
        #: location name -> receiver texts it was resolved from
        owners: dict[str, set[str]] = {}
        for _block, _idx, stmt in self.cfg.statements():
            if not (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)):
                continue
            call = stmt.value
            if isinstance(call.func, ast.Attribute) and \
                    call.func.attr == "get_node":
                recv = _receiver_text(call)
                if recv is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        owners.setdefault(target.id, set()).add(recv)

        for block, idx, stmt in self.cfg.statements():
            self._handle_events[id(stmt)] = self._stmt_handle_events(
                block, idx, stmt
            )
            self._location_events[id(stmt)] = self._stmt_location_events(
                block, idx, stmt, owners
            )

    def _stmt_handle_events(self, block: Block, idx: int,
                            stmt: ast.AST) -> list[TSEvent]:
        events: list[TSEvent] = []
        birth_names: set[str] = set()
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
        if isinstance(value, ast.Call):
            kind: str | None = None
            if self._is_handle_call(value):
                kind = "@handle"
            elif isinstance(value.func, ast.Attribute) and \
                    value.func.attr == "oinvoke":
                kind = "@oneway"
            if kind is not None:
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else []
                )
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if not names and isinstance(stmt, ast.Expr) and \
                        kind == "@handle":
                    # Discarded send: track it under a synthetic name so
                    # mutate-after-send still sees the (never-closable)
                    # window.  symloc's dropped-result-handle owns the
                    # "you dropped it" report itself.
                    names = [f"@send:{getattr(stmt, 'lineno', 0)}"]
                for name in names:
                    events.append(TSEvent(name, kind, stmt))
                    birth_names.add(name)
                if kind == "@handle" and \
                        _invoke_attr(value) in HANDLE_INVOKES:
                    self._record_send(block, idx, stmt, value, names)
        # consume / poll / escape events
        for call, _depth in calls_in_stmt(stmt):
            func = call.func
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name):
                if func.attr in AWAIT_METHODS:
                    events.append(TSEvent(func.value.id, "await", call))
                elif func.attr in POLL_METHODS:
                    events.append(TSEvent(func.value.id, "poll", call))
            for arg in _call_arg_exprs(call):
                for name in arg_value_names(arg):
                    if name not in birth_names:
                        events.append(TSEvent(name, "escape", call))
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            for name in arg_value_names(stmt.value):
                events.append(TSEvent(name, "escape", stmt))
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    for name in arg_value_names(stmt.value):
                        events.append(TSEvent(name, "escape", stmt))
        return events

    def _record_send(self, block: Block, idx: int, stmt: ast.AST,
                     call: ast.Call, names: list[str]) -> None:
        payload = _payload_names(call)
        if not payload:
            return
        watch: dict[str, frozenset[Definition]] = {}
        for name in payload:
            for alias in self.alias.may_aliases(block, idx, name):
                watch[alias] = self._defs_of(block, idx, alias)
        for handle in names:
            synthetic = handle.startswith("@send:")
            self.sends.append(_SendSite(
                handle=handle,
                invoke=_invoke_attr(call) or "ainvoke",
                line=getattr(call, "lineno", 0),
                block_id=block.id,
                idx=idx,
                watch=watch,
                handle_def=None if synthetic else Definition(
                    handle, block.id, idx, getattr(stmt, "lineno", 0)
                ),
                synthetic=synthetic,
            ))

    def _stmt_location_events(self, block: Block, idx: int, stmt: ast.AST,
                              owners: dict[str, set[str]]) -> list[TSEvent]:
        events: list[TSEvent] = []
        if isinstance(stmt, ast.Assign) and \
                isinstance(stmt.value, ast.Call) and \
                isinstance(stmt.value.func, ast.Attribute) and \
                stmt.value.func.attr == "get_node":
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    events.append(TSEvent(target.id, "@loc", stmt))
        for call, _depth in calls_in_stmt(stmt):
            func = call.func
            is_migrate = isinstance(func, ast.Attribute) and \
                func.attr == "migrate"
            if is_migrate:
                recv = _receiver_text(call)
                if recv is not None:
                    aliases = {recv}
                    if "." not in recv:
                        aliases |= self.alias.may_aliases(block, idx, recv)
                    for loc, loc_owners in owners.items():
                        if loc_owners & aliases:
                            events.append(TSEvent(loc, "migrate", call))
            if is_migrate or _invoke_attr(call) is not None or (
                isinstance(func, ast.Name)
                and func.id in ("JSObj", "JSStatic")
            ):
                for arg in _call_arg_exprs(call):
                    for name in arg_value_names(arg):
                        if name in owners:
                            events.append(TSEvent(name, "use", call))
        return events

    # -- helpers -------------------------------------------------------------

    def _defs_of(self, block: Block, idx: int, name: str) -> frozenset:
        return frozenset(
            d for d in self.reaching.reaching_before(block, idx)
            if d.name == name
        )

    def _finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return self.checker.finding(
            rule, self.module.path, node, message, symbol=self.qualname
        )

    # -- mutate-after-send ---------------------------------------------------

    def _reachable_from(self, block_id: int) -> set[int]:
        seen = {block_id}
        work = [block_id]
        while work:
            for succ in self.cfg.block(work.pop()).succs:
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def _mutations(self, stmt: ast.AST) -> list[tuple[str, ast.AST, str]]:
        """``(name, node, how)`` for every in-place mutation this
        statement performs on a plain name's object."""
        out: list[tuple[str, ast.AST, str]] = []
        if isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if isinstance(target, ast.Name):
                out.append((target.id, stmt, "augmented assignment"))
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                for base in arg_value_names(target.value):
                    out.append((base, stmt, "item/attribute write"))
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    for base in arg_value_names(target.value):
                        out.append((base, stmt, "item/attribute write"))
        for call, _depth in calls_in_stmt(stmt):
            func = call.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in MUTATOR_METHODS and \
                    isinstance(func.value, ast.Name):
                out.append((func.value.id, call, f".{func.attr}(...)"))
            if self.info is not None and _invoke_attr(call) is None:
                effects = self.escape.arg_effects(self.info, call)
                for name, kinds in effects.items():
                    if "mutate" in kinds:
                        callee = dotted_name(func) or "callee"
                        out.append((
                            name, call, f"mutation inside {callee}(...)"
                        ))
        return out

    def check_mutate_after_send(self) -> list[Finding]:
        if not self.sends:
            return []
        findings: list[Finding] = []
        reach_cache: dict[int, set[int]] = {}
        for block, idx, stmt in self.cfg.statements():
            mutations = self._mutations(stmt)
            if not mutations:
                continue
            facts = None
            for send in self.sends:
                if send.block_id == block.id and idx <= send.idx:
                    continue
                if send.synthetic:
                    # No handle name to track: the window never closes,
                    # so any mutation reachable from the send is in it.
                    reach = reach_cache.get(send.block_id)
                    if reach is None:
                        reach = self._reachable_from(send.block_id)
                        reach_cache[send.block_id] = reach
                    in_window = block.id in reach
                else:
                    if facts is None:
                        facts = self.handles.facts_before(block, idx)
                    # The handle may still be unawaited here, and its
                    # binding is the one this send created (a later
                    # send rebinding the same name kills the old def).
                    in_window = any(
                        n == send.handle and state in UNAWAITED
                        for n, state in facts
                    ) and send.handle_def in self._defs_of(
                        block, idx, send.handle
                    )
                if not in_window:
                    continue
                findings.extend(
                    self._judge_mutation(send, block, idx, mutations)
                )
        return findings

    def _judge_mutation(
        self,
        send: _SendSite,
        block: Block,
        idx: int,
        mutations: list[tuple[str, ast.AST, str]],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for name, node, how in mutations:
            for candidate in self.alias.may_aliases(block, idx, name):
                watched = send.watch.get(candidate)
                if watched is None:
                    continue
                here = self._defs_of(block, idx, candidate)
                if (watched or here) and not (watched & here):
                    continue  # rebound since the send: different object
                suffix = (
                    "the handle was discarded, so there is no await to "
                    "synchronize on" if send.synthetic else
                    f"awaiting '{send.handle}' first makes the ordering "
                    "explicit"
                )
                findings.append(self._finding(
                    "mutate-after-send", node,
                    f"'{name}' aliases an argument of {send.invoke} at "
                    f"line {send.line}, which crossed the host boundary "
                    f"by copy; this {how} before the result is awaited "
                    f"only diverges the local replica — the remote side "
                    f"keeps the pre-mutation value ({suffix})",
                ))
                break
        return findings

    # -- live-resource-in-remote-arg ----------------------------------------

    def _resource_names(self) -> dict[str, str]:
        resources: dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for _block, _idx, stmt in self.cfg.statements():
                if not isinstance(stmt, ast.Assign):
                    continue
                kind = self._resource_kind(stmt.value, resources)
                if kind is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and \
                            target.id not in resources:
                        resources[target.id] = kind
                        changed = True
        return resources

    def _resource_kind(self, value: ast.expr,
                       resources: dict[str, str]) -> str | None:
        if isinstance(value, ast.Name):
            return resources.get(value.id)
        attr = self_attr_name(value)
        if attr is not None and attr in self.lock_attrs:
            return "lock"
        if not isinstance(value, ast.Call):
            return None
        if isinstance(value.func, ast.Attribute):
            if value.func.attr in RESOURCE_FACTORIES:
                return RESOURCE_FACTORIES[value.func.attr]
            if value.func.attr in HANDLE_INVOKES:
                return "result handle"
        last = (dotted_name(value.func) or "").rsplit(".", 1)[-1]
        return RESOURCE_CTORS.get(last)

    def check_live_resources(self) -> list[Finding]:
        findings: list[Finding] = []
        resources = self._resource_names()
        for _block, _idx, stmt in self.cfg.statements():
            for call, _depth in calls_in_stmt(stmt):
                invoke = _invoke_attr(call)
                if invoke is not None:
                    findings.extend(self._direct_resource_args(
                        call, invoke, resources
                    ))
                elif self.info is not None:
                    findings.extend(self._relayed_resource_args(
                        call, resources
                    ))
        return findings

    def _describe_resource(self, arg: ast.expr,
                           resources: dict[str, str]) -> tuple[str, str] | None:
        for name in arg_value_names(arg):
            kind = resources.get(name)
            if kind is not None:
                return f"'{name}'", kind
        attr = self_attr_name(arg)
        if attr is not None and attr in self.lock_attrs:
            return f"'self.{attr}'", "lock"
        return None

    def _direct_resource_args(self, call: ast.Call, invoke: str,
                              resources: dict[str, str]):
        for arg in _call_arg_exprs(call):
            hit = self._describe_resource(arg, resources)
            if hit is None:
                continue
            label, kind = hit
            yield self._finding(
                "live-resource-in-remote-arg", call,
                f"{label} is a live {kind} passed as a {invoke} "
                "argument; remote arguments are pickled copies, so this "
                "either fails to serialize or ships a dead replica of a "
                "local resource",
            )

    def _relayed_resource_args(self, call: ast.Call,
                               resources: dict[str, str]):
        assert self.info is not None
        for callee in self.graph.resolve(self.info, call):
            summary = self.escape.summary(callee.key)
            for param, arg in map_call_args(callee, call):
                if "remote" not in summary.escape_kinds(param):
                    continue
                hit = self._describe_resource(arg, resources)
                if hit is None:
                    continue
                label, kind = hit
                yield self._finding(
                    "live-resource-in-remote-arg", call,
                    f"{label} is a live {kind} that flows into a "
                    f"remote-invoke argument inside {callee.label}(...) "
                    f"(parameter '{param}'); remote arguments are "
                    "pickled copies, so this either fails to serialize "
                    "or ships a dead replica",
                )

    # -- typestate-driven rules ----------------------------------------------

    def check_oneway(self) -> list[Finding]:
        findings: list[Finding] = []
        for violation in self.handles.violations():
            if violation.error not in ("oneway-await", "oneway-poll"):
                continue
            call = violation.event.node
            method = (
                call.func.attr if isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute) else "get_result"
            )
            findings.append(self._finding(
                "oneway-result-consumed", call,
                f"'{violation.name}' is the value of oinvoke, which is "
                f"one-sided and returns None — '.{method}()' fails at "
                "runtime; use ainvoke when the result matters",
            ))
        # chained form: obj.oinvoke(...).get_result()
        for _block, _idx, stmt in self.cfg.statements():
            for call, _depth in calls_in_stmt(stmt):
                func = call.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in AWAIT_METHODS | POLL_METHODS
                        and isinstance(func.value, ast.Call)
                        and isinstance(func.value.func, ast.Attribute)
                        and func.value.func.attr == "oinvoke"):
                    continue
                findings.append(self._finding(
                    "oneway-result-consumed", call,
                    f"oinvoke is one-sided and returns None — chaining "
                    f"'.{func.attr}()' onto it fails at runtime; use "
                    "ainvoke when the result matters",
                ))
        return findings

    def check_stale_refs(self) -> list[Finding]:
        findings: list[Finding] = []
        for violation in self.locations.violations():
            findings.append(self._finding(
                "stale-ref-after-migrate", violation.event.node,
                f"'{violation.name}' caches a get_node() resolution "
                "taken before the object migrated; the location is "
                "stale — re-resolve with get_node() after migrate",
            ))
        return findings

    # -- handle-escapes-unawaited (field half, per function) -----------------

    def collect_field_stores(self) -> None:
        for block, idx, stmt in self.cfg.statements():
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            is_handle = (
                isinstance(value, ast.Call) and self._is_handle_call(value)
            )
            if not is_handle and isinstance(value, ast.Name):
                states = self.handles.states_before(block, idx, value.id)
                is_handle = bool(states & UNAWAITED)
            if not is_handle:
                continue
            for target in stmt.targets:
                if not isinstance(target, ast.Attribute):
                    continue
                owner = dotted_name(target.value) or "<expr>"
                self.field_stores.append(_FieldStore(
                    self.module, stmt, target.attr, owner
                ))


class SymshareChecker(Checker):
    name = "symshare"
    rules = {
        "mutate-after-send": Severity.ERROR,
        "live-resource-in-remote-arg": Severity.ERROR,
        "stale-ref-after-migrate": Severity.WARNING,
        "oneway-result-consumed": Severity.ERROR,
        "handle-escapes-unawaited": Severity.WARNING,
    }

    def check(self, project: Project) -> list[Finding]:
        graph = CallGraph(project)
        escape = EscapeAnalysis(project, graph)
        findings: list[Finding] = []
        field_stores: list[_FieldStore] = []
        for module in project.modules:
            if excluded_path(module.path):
                continue
            lock_by_class = {
                node.name: collect_lock_attrs(node)
                for node in ast.walk(module.tree)
                if isinstance(node, ast.ClassDef)
            }
            for qualname, func, cfg in function_cfgs(module.tree):
                cls = qualname.split(".")[0] if "." in qualname else None
                run = _FunctionPass(
                    self, module, qualname, func, cfg, graph, escape,
                    lock_by_class.get(cls or "", set()),
                )
                findings.extend(run.check_mutate_after_send())
                findings.extend(run.check_live_resources())
                findings.extend(run.check_oneway())
                findings.extend(run.check_stale_refs())
                run.collect_field_stores()
                field_stores.extend(run.field_stores)
        findings.extend(self._unread_handle_fields(project, field_stores))
        findings.extend(self._dropped_handle_wrappers(project, graph, escape))
        return findings

    # -- handle-escapes-unawaited, project-wide halves -----------------------

    def _unread_handle_fields(
        self, project: Project, stores: list[_FieldStore]
    ) -> list[Finding]:
        if not stores:
            return []
        read_attrs: set[str] = set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Attribute) and \
                        isinstance(node.ctx, ast.Load):
                    read_attrs.add(node.attr)
        findings = []
        for store in stores:
            if store.attr in read_attrs:
                continue
            findings.append(self.finding(
                "handle-escapes-unawaited", store.module.path, store.node,
                f"result handle stored into '{store.owner}.{store.attr}' "
                "but no code in the project ever reads that attribute — "
                "the handle can never be awaited and its result (or "
                "error) is silently dropped",
                symbol=store.attr,
            ))
        return findings

    def _dropped_handle_wrappers(
        self, project: Project, graph: CallGraph, escape: EscapeAnalysis
    ) -> list[Finding]:
        """Call sites of handle-returning *project* functions whose
        value is provably discarded.  Direct ``obj.ainvoke`` discards
        stay symloc's ``dropped-result-handle``; here the handle hides
        behind at least one project call, which that local rule cannot
        see."""
        findings: list[Finding] = []
        for module in project.modules:
            if excluded_path(module.path):
                continue
            for info in graph.functions.values():
                if info.key.path != module.path:
                    continue
                findings.extend(self._scan_drop_sites(
                    module, info, graph, escape
                ))
        return findings

    def _scan_drop_sites(self, module: Module, info: FuncInfo,
                         graph: CallGraph, escape: EscapeAnalysis):
        loads: dict[str, int] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loads[node.id] = loads.get(node.id, 0) + 1
        for stmt in ast.walk(info.node):
            call: ast.Call | None = None
            dropped = False
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                dropped = True
            elif isinstance(stmt, ast.Assign) and \
                    isinstance(stmt.value, ast.Call) and \
                    len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                call = stmt.value
                dropped = loads.get(stmt.targets[0].id, 0) == 0
            if call is None or not dropped:
                continue
            for callee in graph.resolve(info, call):
                if not escape.summary(callee.key).returns_handle:
                    continue
                yield self.finding(
                    "handle-escapes-unawaited", module.path, call,
                    f"{callee.label}(...) returns a result handle that "
                    "is discarded here — the asynchronous result (and "
                    "any remote error) is lost; await it or make the "
                    "callee use oinvoke",
                    symbol=info.label,
                )
                break
