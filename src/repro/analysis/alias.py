"""Intraprocedural flow-sensitive must/may alias sets.

Layered on :class:`~repro.analysis.dataflow.ReachingDefinitions`: the
only aliasing Python source states outright is the plain name copy
``a = b``, so a reaching *copy* definition is an alias edge — valid
exactly while some binding of the source that was in force at the copy
still reaches the query point (if every such binding has been shadowed,
``b`` now names a different object and the edge is dead).

* **may-alias**: the transitive closure of live copy edges in both
  directions (``a = b`` makes ``a`` an alias *of* ``b`` and ``b`` an
  alias *of* ``a``) over the definitions reaching the query point.
  Sound for "could these two names denote one object?" up to the usual
  static limits: attribute/subscript aliasing (``xs[0] = b``) and
  aliasing created inside callees are not modeled — callers needing the
  interprocedural half combine this with
  :mod:`repro.analysis.escape` summaries.
* **must-alias**: the copy chain is the *only* way the name can be
  bound here — a single reaching definition per link, source never
  shadowed on any path.  Used when a rule needs "provably the same
  object", not just "possibly".

Everything is computed per query from the solved reaching-definitions
boundary, so the class adds no extra fixpoint of its own.
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import CFG, Block
from repro.analysis.dataflow import Definition, ReachingDefinitions


def copy_source(stmt: ast.AST) -> tuple[str, str] | None:
    """``(target, source)`` for a plain name-to-name copy ``x = y``."""
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and isinstance(stmt.value, ast.Name)
    ):
        return stmt.targets[0].id, stmt.value.id
    return None


class AliasAnalysis:
    """Must/may alias queries at ``(block, statement index)`` points."""

    def __init__(self, cfg: CFG,
                 reaching: ReachingDefinitions | None = None) -> None:
        self.cfg = cfg
        self.reaching = (
            reaching if reaching is not None else ReachingDefinitions(cfg)
        )
        #: copy Definition -> its source name
        self._copy_of: dict[Definition, str] = {}
        for block in cfg.blocks:
            for idx, stmt in enumerate(block.stmts):
                pair = copy_source(stmt)
                if pair is None:
                    continue
                target, source = pair
                self._copy_of[Definition(
                    target, block.id, idx, getattr(stmt, "lineno", 0)
                )] = source

    # -- copy-edge liveness --------------------------------------------------

    def _source_defs_at_copy(self, copy_def: Definition) -> frozenset:
        """Bindings of the copy's source name in force when the copy
        executed (the copy itself never rebinds its source)."""
        block = self.cfg.block(copy_def.block)
        source = self._copy_of[copy_def]
        return frozenset(
            d for d in self.reaching.reaching_before(block, copy_def.index)
            if d.name == source
        )

    def _copy_live(self, copy_def: Definition,
                   defs_by_name: dict[str, set[Definition]]) -> bool:
        """Is the alias edge of this copy still valid at a query point
        whose reaching definitions are ``defs_by_name``?"""
        source = self._copy_of[copy_def]
        at_query = defs_by_name.get(source, set())
        at_copy = self._source_defs_at_copy(copy_def)
        if not at_copy and not at_query:
            # Never bound in this function (parameter, free variable):
            # the source cannot have been shadowed.
            return True
        return bool(at_copy & set(at_query))

    # -- queries -------------------------------------------------------------

    def _defs_by_name(self, block: Block,
                      idx: int) -> dict[str, set[Definition]]:
        by_name: dict[str, set[Definition]] = {}
        for d in self.reaching.reaching_before(block, idx):
            by_name.setdefault(d.name, set()).add(d)
        return by_name

    def may_aliases(self, block: Block, idx: int,
                    name: str) -> frozenset[str]:
        """Names that may denote the same object as ``name`` just
        before ``block.stmts[idx]`` (always includes ``name``)."""
        by_name = self._defs_by_name(block, idx)
        out = {name}
        work = [name]
        while work:
            current = work.pop()
            # forward: current was copied *from* some source
            for d in by_name.get(current, ()):
                source = self._copy_of.get(d)
                if source is None or source in out:
                    continue
                if self._copy_live(d, by_name):
                    out.add(source)
                    work.append(source)
            # backward: some other name was copied from current
            for other, defs in by_name.items():
                if other in out:
                    continue
                for d in defs:
                    if self._copy_of.get(d) != current:
                        continue
                    if self._copy_live(d, by_name):
                        out.add(other)
                        work.append(other)
                        break
        return frozenset(out)

    def must_alias(self, block: Block, idx: int, a: str, b: str) -> bool:
        """Do ``a`` and ``b`` provably denote the same object just
        before ``block.stmts[idx]``?  True only when one reaches the
        other through a chain of single, unshadowed copy definitions."""
        if a == b:
            return True
        by_name = self._defs_by_name(block, idx)
        return (
            self._must_chain(a, b, by_name)
            or self._must_chain(b, a, by_name)
        )

    def _must_chain(self, start: str, goal: str,
                    by_name: dict[str, set[Definition]]) -> bool:
        current = start
        seen = {start}
        while True:
            defs = by_name.get(current, set())
            if len(defs) != 1:
                return False
            (only,) = defs
            source = self._copy_of.get(only)
            if source is None or source in seen:
                return False
            # must: every binding of the source at the query must have
            # been in force at the copy (no path rebinds it in between)
            at_query = by_name.get(source, set())
            at_copy = self._source_defs_at_copy(only)
            if at_query and not set(at_query) <= set(at_copy):
                return False
            if source == goal:
                return True
            seen.add(source)
            current = source


__all__ = ["AliasAnalysis", "copy_source"]
