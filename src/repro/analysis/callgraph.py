"""Project-wide call graph with name-based resolution.

Interprocedural passes need to answer "what can this function end up
calling?" without running the program.  We build a conservative,
name-based call graph over every parsed module:

* ``self.X(...)`` inside a method resolves to method ``X`` on the
  enclosing class, or — walking the AST base-class *names* transitively,
  project-wide — on any base class that defines it.  The own-class
  definition shadows base definitions.
* a bare ``X(...)`` resolves to a module-level ``def X`` in the same
  module.
* everything else (attribute chains like ``self.endpoint.rpc``, calls
  through locals, imported names) stays unresolved: edges we cannot
  prove are absent, so the graph under-approximates reachability through
  *project* code and never invents paths.  Blocking *sinks* are matched
  syntactically at each call site by the rules instead.

Nested ``def``/``lambda`` bodies are not treated as part of the
enclosing function: they run later (or never), possibly under a
different lock/process context.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.base import Module, Project, iter_methods, self_attr_name


@dataclass(frozen=True)
class FuncKey:
    """Stable identity of one function: file path + dotted qualname."""

    path: str
    qualname: str  # "Class.method" or "function"


@dataclass
class FuncInfo:
    key: FuncKey
    module: Module
    node: ast.FunctionDef
    cls: str | None  # enclosing class name, None for module-level defs

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def label(self) -> str:
        return self.key.qualname


def direct_calls(node: ast.AST):
    """Call nodes lexically inside ``node``, skipping nested defs and
    lambdas (they execute under a different context, if at all)."""
    stack: list[ast.AST] = (
        list(node.body) if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) else [node]
    )
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(item, ast.Call):
            yield item
        stack.extend(ast.iter_child_nodes(item))


def _base_names(klass: ast.ClassDef) -> set[str]:
    """Last dotted component of each AST base (``agents.Foo`` -> Foo)."""
    names: set[str] = set()
    for base in klass.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


class CallGraph:
    """Name-based call graph over a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.functions: dict[FuncKey, FuncInfo] = {}
        #: (class name, method name) -> every matching method, project-wide
        self._methods: dict[tuple[str, str], list[FuncKey]] = {}
        #: (path, function name) -> module-level def
        self._module_level: dict[tuple[str, str], FuncKey] = {}
        #: class name -> union of its AST base-class names, project-wide
        self._bases: dict[str, set[str]] = {}
        for module in project.modules:
            self._index_module(module)

    def _index_module(self, module: Module) -> None:
        for item in module.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = FuncKey(module.path, item.name)
                self.functions[key] = FuncInfo(key, module, item, None)
                self._module_level[(module.path, item.name)] = key
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            self._bases.setdefault(node.name, set()).update(
                _base_names(node)
            )
            for method in iter_methods(node):
                key = FuncKey(module.path, f"{node.name}.{method.name}")
                self.functions[key] = FuncInfo(
                    key, module, method, node.name
                )
                self._methods.setdefault(
                    (node.name, method.name), []
                ).append(key)

    # -- resolution ----------------------------------------------------------

    def _class_closure(self, cls: str) -> list[str]:
        """``cls`` plus its transitive base-class names (BFS order)."""
        order = [cls]
        seen = {cls}
        i = 0
        while i < len(order):
            for base in sorted(self._bases.get(order[i], ())):
                if base not in seen:
                    seen.add(base)
                    order.append(base)
            i += 1
        return order

    def resolve(self, caller: FuncInfo, call: ast.Call) -> list[FuncInfo]:
        """Project functions ``call`` may invoke (possibly empty)."""
        func = call.func
        # self.X(...) -> method on the enclosing class or its bases
        attr = self_attr_name(func)
        if attr is not None and caller.cls is not None:
            for cls in self._class_closure(caller.cls):
                keys = self._methods.get((cls, attr))
                if keys:
                    return [self.functions[k] for k in keys]
            return []
        # bare X(...) -> module-level def in the same file
        if isinstance(func, ast.Name):
            key = self._module_level.get((caller.key.path, func.id))
            return [self.functions[key]] if key else []
        return []

    def callees(self, info: FuncInfo):
        """Resolved ``(callee, call node)`` edges out of ``info``."""
        for call in direct_calls(info.node):
            for target in self.resolve(info, call):
                yield target, call

    # -- whole-graph structure ----------------------------------------------

    def edges(self) -> dict[FuncKey, set[FuncKey]]:
        """Caller -> resolved callee keys, for every project function."""
        out: dict[FuncKey, set[FuncKey]] = {
            key: set() for key in self.functions
        }
        for key, info in self.functions.items():
            for target, _call in self.callees(info):
                out[key].add(target.key)
        return out

    def scc_order(self) -> list[list[FuncKey]]:
        """Strongly connected components in bottom-up (callees-first)
        order — the propagation order for interprocedural summaries:
        when an SCC is processed, every function it calls outside the
        SCC already has a stable summary; mutual recursion inside an
        SCC is iterated to a fixpoint by the consumer.

        Iterative Tarjan (no recursion: deep call chains in analyzed
        code must not overflow the analyzer's own stack).  Tarjan emits
        components in reverse topological order of the condensation,
        which for caller->callee edges *is* callees-first.
        """
        edges = self.edges()
        index: dict[FuncKey, int] = {}
        low: dict[FuncKey, int] = {}
        on_stack: set[FuncKey] = set()
        stack: list[FuncKey] = []
        sccs: list[list[FuncKey]] = []
        counter = 0
        for root in self.functions:
            if root in index:
                continue
            # (node, iterator over its successors) explicit DFS stack
            work: list[tuple[FuncKey, list[FuncKey]]] = [
                (root, sorted(edges[root], key=repr))
            ]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, succs = work[-1]
                advanced = False
                while succs:
                    nxt = succs.pop()
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter
                        counter += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, sorted(edges[nxt], key=repr)))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp: list[FuncKey] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        comp.append(member)
                        if member == node:
                            break
                    sccs.append(comp)
        return sccs
