"""Migration/serialization-safety analysis.

The 4-step migration protocol (paper Figure 3), ``FETCH_STATE`` and the
persistence store all pickle the live instance.  An attribute holding a
lock, thread, socket, open file or generator makes the whole object
unpicklable — the object works fine until the first ``migrate()`` or
``store()``, then fails at the worst possible moment (this is the core
hazard Ellahi et al. identify for migrating thread-bearing state).

Rule
----
``unserializable-attr`` (error)
    A remotely instantiable class (``@jsclass``-decorated or registered
    via ``ClassRegistry.register``) assigns ``self.x`` from a factory
    known to produce unpicklable state, or binds a generator expression
    or lambda to an attribute.
"""

from __future__ import annotations

import ast

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
    dotted_name,
    self_attr_name,
)

#: dotted call targets whose results never survive pickling
UNSERIALIZABLE_FACTORIES = {
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "an event",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "threading.Barrier": "a barrier",
    "threading.Thread": "a thread",
    "threading.local": "thread-local storage",
    "open": "an open file handle",
    "io.open": "an open file handle",
    "os.fdopen": "an open file handle",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "subprocess.Popen": "a subprocess handle",
    "queue.Queue": "a queue (contains locks)",
    "queue.LifoQueue": "a queue (contains locks)",
    "queue.PriorityQueue": "a queue (contains locks)",
    "queue.SimpleQueue": "a queue (contains locks)",
    "sqlite3.connect": "a database connection",
}


def _registered_class_names(tree: ast.Module) -> set[str]:
    """Class names passed to ``ClassRegistry.register(Cls, ...)``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = dotted_name(node.func)
        if target is None or not target.endswith("register"):
            continue
        if "ClassRegistry" not in target:
            continue
        if node.args and isinstance(node.args[0], ast.Name):
            names.add(node.args[0].id)
    return names


def _is_jsclass(klass: ast.ClassDef, registered: set[str]) -> bool:
    if klass.name in registered:
        return True
    for deco in klass.decorator_list:
        name = dotted_name(deco)
        if name is not None and name.split(".")[-1] == "jsclass":
            return True
    return False


class MigrationSafetyChecker(Checker):
    name = "migration-safety"
    rules = {"unserializable-attr": Severity.ERROR}

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            registered = _registered_class_names(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and \
                        _is_jsclass(node, registered):
                    findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: Module, klass: ast.ClassDef):
        for node in ast.walk(klass):
            targets: list[ast.AST]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            attrs = [
                a for a in map(self_attr_name, targets) if a is not None
            ]
            if not attrs:
                continue
            what = self._unserializable_value(value)
            if what is None:
                continue
            for attr in attrs:
                yield self.finding(
                    "unserializable-attr",
                    module.path,
                    node,
                    f"{klass.name}.{attr} is assigned {what}; the "
                    "instance can no longer be pickled, so MIGRATE_OUT, "
                    "FETCH_STATE and persistence (store/load) will all "
                    f"fail for every {klass.name} object",
                    symbol=f"{klass.name}.{attr}",
                )

    @staticmethod
    def _unserializable_value(value: ast.AST) -> str | None:
        if isinstance(value, ast.GeneratorExp):
            return "a generator expression"
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Call):
            target = dotted_name(value.func)
            if target is None:
                return None
            if target in UNSERIALIZABLE_FACTORIES:
                return UNSERIALIZABLE_FACTORIES[target]
            # match on the trailing segments too (e.g. _threading.Lock)
            tail = ".".join(target.split(".")[-2:])
            if tail in UNSERIALIZABLE_FACTORIES:
                return UNSERIALIZABLE_FACTORIES[tail]
        return None
