"""File collection, checker orchestration and report rendering."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.analysis.base import Checker, Finding, Module, Project, Severity
from repro.analysis.blocking import BlockingHandlerChecker
from repro.analysis.interprocedural import InterproceduralChecker
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.locality import LocalityChecker
from repro.analysis.migration_safety import MigrationSafetyChecker
from repro.analysis.obs_discipline import ObsDisciplineChecker
from repro.analysis.protocol import ProtocolChecker
from repro.analysis.retry import RetryDisciplineChecker
from repro.analysis.share import SymshareChecker

SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def default_checkers() -> list[Checker]:
    return [
        LockDisciplineChecker(),
        ProtocolChecker(),
        MigrationSafetyChecker(),
        BlockingHandlerChecker(),
        ObsDisciplineChecker(),
        InterproceduralChecker(),
        RetryDisciplineChecker(),
        LocalityChecker(),
        SymshareChecker(),
    ]


def known_rules() -> dict[str, Severity]:
    rules: dict[str, Severity] = {"parse-error": Severity.ERROR}
    for checker in default_checkers():
        rules.update(checker.rules)
    return rules


def rule_groups() -> dict[str, set[str]]:
    """Checker name -> its rule ids, so ``--rules locality`` selects a
    whole pass at once."""
    return {c.name: set(c.rules) for c in default_checkers()}


def expand_rules(tokens: set[str]) -> tuple[set[str], set[str]]:
    """Expand group names in ``tokens``; returns (rules, unknown)."""
    groups = rule_groups()
    known = set(known_rules())
    rules: set[str] = set()
    unknown: set[str] = set()
    for token in tokens:
        if token in groups:
            rules |= groups[token]
        elif token in known:
            rules.add(token)
        else:
            unknown.add(token)
    return rules, unknown


@dataclass
class Report:
    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    #: findings filtered out because they matched a ``--baseline`` file
    baselined: int = 0

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files": self.files,
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "error": self.count(Severity.ERROR),
                "warning": self.count(Severity.WARNING),
                "info": self.count(Severity.INFO),
            },
        }


def collect_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in SKIP_DIRS)
            files.extend(
                os.path.join(root, n) for n in sorted(names)
                if n.endswith(".py")
            )
    # de-duplicate while preserving order
    seen: set[str] = set()
    unique = []
    for f in files:
        norm = os.path.normpath(f)
        if norm not in seen:
            seen.add(norm)
            unique.append(norm)
    return unique


def load_project(paths: list[str]) -> tuple[Project, list[Finding]]:
    modules: list[Module] = []
    parse_failures: list[Finding] = []
    for path in collect_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            modules.append(Module.parse(path, source))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            lineno = getattr(exc, "lineno", 0) or 0
            parse_failures.append(
                Finding(
                    rule="parse-error",
                    severity=Severity.ERROR,
                    path=path,
                    line=lineno,
                    col=0,
                    message=f"cannot analyze file: {exc}",
                )
            )
    return Project(modules), parse_failures


def analyze_paths(
    paths: list[str],
    rules: set[str] | None = None,
    checkers: list[Checker] | None = None,
) -> Report:
    """Run the analysis over ``paths`` (files or directories).

    ``rules`` restricts the report to the given rule ids; suppression
    pragmas in the source are always honored.
    """
    project, findings = load_project(paths)
    report = Report(files=len(project.modules))
    by_path = {m.path: m for m in project.modules}
    for checker in checkers if checkers is not None else default_checkers():
        findings.extend(checker.check(project))
    for finding in findings:
        if rules is not None and finding.rule not in rules:
            continue
        module = by_path.get(finding.path)
        if module is not None and \
                module.is_suppressed(finding.rule, finding.line):
            report.suppressed += 1
            continue
        report.findings.append(finding)
    # Deterministic output: drop exact duplicates (two checkers can
    # flag the same site) and order by location, then rule.
    report.findings = sorted(
        set(report.findings),
        key=lambda f: (f.path, f.line, f.rule, f.col, f.message),
    )
    return report


def render_text(report: Report) -> str:
    lines = []
    for f in report.findings:
        symbol = f" [{f.symbol}]" if f.symbol else ""
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.severity}: "
            f"{f.rule}: {f.message}{symbol}"
        )
    lines.append(
        f"symlint: {report.files} files, "
        f"{report.count(Severity.ERROR)} errors, "
        f"{report.count(Severity.WARNING)} warnings"
        + (f", {report.suppressed} suppressed" if report.suppressed else "")
        + (f", {report.baselined} baselined" if report.baselined else "")
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# baselines: land new rules strict without blocking on existing findings
# ---------------------------------------------------------------------------


def baseline_key(finding: Finding) -> tuple[str, str, str, str]:
    """Identity of a finding for baseline matching.  Line and column are
    deliberately excluded so unrelated edits shifting code do not churn
    the baseline; rule + path + symbol + message pin the actual defect."""
    return (finding.rule, finding.path, finding.symbol, finding.message)


def write_baseline(report: Report, path: str) -> int:
    """Persist the report's findings as a baseline file; returns the
    number of entries written."""
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "symbol": f.symbol,
            "message": f.message,
        }
        for f in report.findings
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": 1, "findings": entries}, fh, indent=2)
        fh.write("\n")
    return len(entries)


def load_baseline(path: str) -> dict[tuple[str, str, str, str], int]:
    """Baseline key -> how many findings it absorbs."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    counts: dict[tuple[str, str, str, str], int] = {}
    for entry in doc.get("findings", []):
        key = (
            entry.get("rule", ""),
            entry.get("path", ""),
            entry.get("symbol", ""),
            entry.get("message", ""),
        )
        counts[key] = counts.get(key, 0) + 1
    return counts


def apply_baseline(
    report: Report, baseline: dict[tuple[str, str, str, str], int]
) -> Report:
    """Drop findings matched by ``baseline`` (each entry absorbs at most
    its multiplicity); only genuinely new findings remain."""
    remaining = dict(baseline)
    kept: list[Finding] = []
    baselined = 0
    for finding in report.findings:
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined += 1
        else:
            kept.append(finding)
    return Report(
        findings=kept,
        files=report.files,
        suppressed=report.suppressed,
        baselined=report.baselined + baselined,
    )


def render_json(report: Report) -> str:
    return json.dumps(report.to_dict(), indent=2)


def render_sarif(report: Report) -> str:
    """SARIF 2.1.0, the exchange format GitHub code scanning ingests.
    One run, tool ``symlint``; every rule that appears in the findings
    gets a driver rule entry so viewers can show severities and help."""
    level = {
        Severity.ERROR: "error",
        Severity.WARNING: "warning",
        Severity.INFO: "note",
    }
    all_rules = known_rules()
    used = sorted({f.rule for f in report.findings})
    rules = [
        {
            "id": rule,
            "defaultConfiguration": {
                "level": level[all_rules.get(rule, Severity.WARNING)],
            },
        }
        for rule in used
    ]
    rule_index = {rule: i for i, rule in enumerate(used)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": level[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace(os.sep, "/"),
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    },
                }
            ],
        }
        for f in report.findings
    ]
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "symlint",
                        "informationUri":
                            "https://github.com/pysymphony/pysymphony",
                        "rules": rules,
                    },
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


def render_github(report: Report) -> str:
    """GitHub Actions workflow commands: each finding becomes an
    ``::error``/``::warning`` annotation on the offending file line."""
    level = {
        Severity.ERROR: "error",
        Severity.WARNING: "warning",
        Severity.INFO: "notice",
    }
    lines = []
    for f in report.findings:
        # Annotation bodies are single-line; newlines would end the
        # workflow command early.
        message = f"{f.rule}: {f.message}".replace("\n", " ")
        lines.append(
            f"::{level[f.severity]} file={f.path},line={f.line},"
            f"col={f.col}::{message}"
        )
    lines.append(
        f"symlint: {report.files} files, "
        f"{report.count(Severity.ERROR)} errors, "
        f"{report.count(Severity.WARNING)} warnings"
        + (f", {report.suppressed} suppressed" if report.suppressed else "")
        + (f", {report.baselined} baselined" if report.baselined else "")
    )
    return "\n".join(lines)
