"""Per-function escape summaries, propagated bottom-up over SCCs.

For every project function we answer, flow-insensitively: *where can
each parameter's object end up, and which parameters does the function
mutate?*  The escape kinds mirror the boundaries that matter in a
copy-semantics RMI system (paper §4.4–4.6: arguments cross hosts **by
value**, local aliases stay **by reference**):

* ``"remote"`` — flows into an argument of ``sinvoke``/``ainvoke``/
  ``oinvoke``/``minvoke`` (pickled and copied to another host);
* ``"return"`` — returned to the caller;
* ``"field"`` — stored into an attribute or subscript (outlives the
  call);
* ``"closure"`` — captured free by a nested ``def``/``lambda`` (may run
  later, on another thread).

Summaries compose interprocedurally: passing ``x`` to a callee
parameter that itself escapes remotely marks ``x`` remote in the
caller.  Propagation follows :meth:`CallGraph.scc_order` — callees
first, mutual recursion iterated to a fixpoint inside each SCC.  All
facts are unions over a finite kind set and callee summaries only ever
*grow* a caller's summary, so each SCC converges; the same argument
makes summaries monotone under adding call edges
(``tests/test_escape.py`` checks this property).

Names are connected flow-insensitively through plain copies
(``a = b``): the summary is a may-analysis, deliberately coarser than
:mod:`repro.analysis.alias` — a summary says "could escape", the alias
layer says "at this point".  Attribute chains and calls the
name-based call graph cannot resolve contribute nothing (the graph
under-approximates), so summaries can miss escapes through dynamic
dispatch — rules pair them with syntactic sink checks at call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import Project
from repro.analysis.callgraph import CallGraph, FuncInfo, FuncKey

#: remote-invoke methods: every argument crosses a host boundary by copy
REMOTE_INVOKES = {"sinvoke", "ainvoke", "oinvoke", "minvoke"}
#: invoke flavours whose value is a result handle
HANDLE_INVOKES = {"ainvoke", "minvoke"}
#: receiver methods that mutate the receiver in place
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "add", "discard", "setdefault", "popitem",
    "appendleft", "popleft", "write",
}

ESCAPE_KINDS = ("remote", "return", "field", "closure")


@dataclass
class Summary:
    """Escape/mutation facts of one function, keyed by parameter name."""

    escapes: dict[str, frozenset[str]] = field(default_factory=dict)
    mutates: frozenset[str] = frozenset()
    returns_handle: bool = False

    def escape_kinds(self, param: str) -> frozenset[str]:
        return self.escapes.get(param, frozenset())


def param_names(info: FuncInfo) -> list[str]:
    """Positional-parameter names in call-mapping order — ``self``
    excluded for methods (the receiver is not an AST argument)."""
    args = info.node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if info.cls is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _keyword_params(info: FuncInfo) -> set[str]:
    args = info.node.args
    return {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}


def _walk_no_opaque(node: ast.AST):
    """AST walk that does not descend into nested def/lambda bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        item = stack.pop()
        yield item
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(item))


def _invoke_method(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute) and \
            call.func.attr in REMOTE_INVOKES:
        return call.func.attr
    return None


def arg_value_names(arg: ast.AST) -> set[str]:
    """Plain names an argument expression passes along: a bare name,
    the elements of a list/tuple/set literal, or a starred name."""
    if isinstance(arg, ast.Name):
        return {arg.id}
    if isinstance(arg, ast.Starred):
        return arg_value_names(arg.value)
    if isinstance(arg, (ast.List, ast.Tuple, ast.Set)):
        names: set[str] = set()
        for element in arg.elts:
            names |= arg_value_names(element)
        return names
    return set()


class _Groups:
    """Union-find over names connected by plain copies ``a = b``."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, name: str) -> str:
        root = name
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        while self._parent.get(name, name) != root:
            self._parent[name], name = root, self._parent[name]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


class EscapeAnalysis:
    """Summaries for every function in the project call graph."""

    def __init__(self, project: Project,
                 graph: CallGraph | None = None) -> None:
        self.graph = graph if graph is not None else CallGraph(project)
        self.summaries: dict[FuncKey, Summary] = {
            key: Summary() for key in self.graph.functions
        }
        for component in self.graph.scc_order():
            self._solve_scc(component)

    def summary(self, key: FuncKey) -> Summary:
        return self.summaries.get(key, Summary())

    # -- per-SCC fixpoint ----------------------------------------------------

    def _solve_scc(self, component: list[FuncKey]) -> None:
        changed = True
        while changed:
            changed = False
            for key in component:
                new = self._summarize(self.graph.functions[key])
                if new != self.summaries[key]:
                    self.summaries[key] = new
                    changed = True

    # -- one function --------------------------------------------------------

    def _summarize(self, info: FuncInfo) -> Summary:
        groups = _Groups()
        kinds: dict[str, set[str]] = {}
        mutated: set[str] = set()
        handle_names: set[str] = set()
        returns_handle = False

        def mark(name: str, kind: str) -> None:
            kinds.setdefault(groups.find(name), set()).add(kind)

        # pass 1: copy groups and handle-producing bindings
        for node in _walk_no_opaque(info.node):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Name):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        groups.union(target.id, node.value.id)
            if isinstance(node, ast.Assign) and \
                    self._is_handle_value(info, node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        handle_names.add(target.id)

        # pass 2: escape and mutation events
        for node in _walk_no_opaque(info.node):
            if isinstance(node, ast.Call):
                self._call_events(info, node, mark, mutated, groups)
            elif isinstance(node, ast.Return) and node.value is not None:
                for name in arg_value_names(node.value):
                    mark(name, "return")
                if self._is_handle_value(info, node.value) or (
                    isinstance(node.value, ast.Name)
                    and node.value.id in handle_names
                ):
                    returns_handle = True
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        for name in arg_value_names(node.value):
                            mark(name, "field")
                        for base in arg_value_names(target.value):
                            mutated.add(groups.find(base))
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name):
                    mutated.add(groups.find(target.id))
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    for base in arg_value_names(target.value):
                        mutated.add(groups.find(base))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                for name in _free_loads(node):
                    mark(name, "closure")

        # project onto parameters
        escapes: dict[str, frozenset[str]] = {}
        param_mutates: set[str] = set()
        for param in _keyword_params(info):
            root = groups.find(param)
            got = kinds.get(root)
            if got:
                escapes[param] = frozenset(got)
            if root in mutated:
                param_mutates.add(param)
        return Summary(
            escapes=escapes,
            mutates=frozenset(param_mutates),
            returns_handle=returns_handle,
        )

    def _call_events(self, info: FuncInfo, call: ast.Call, mark,
                     mutated: set[str], groups: _Groups) -> None:
        # remote sinks: every argument (not the receiver) is copied out
        if _invoke_method(call) is not None:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for name in arg_value_names(arg):
                    mark(name, "remote")
        # in-place mutator methods mutate their receiver
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in MUTATOR_METHODS and \
                isinstance(call.func.value, ast.Name):
            mutated.add(groups.find(call.func.value.id))
        # resolved callees propagate their parameter facts to our args
        for callee in self.graph.resolve(info, call):
            summ = self.summaries.get(callee.key)
            if summ is None:
                continue
            for param, arg in map_call_args(callee, call):
                for name in arg_value_names(arg):
                    for kind in summ.escape_kinds(param):
                        mark(name, kind)
                    if param in summ.mutates:
                        mutated.add(groups.find(name))

    def _is_handle_value(self, info: FuncInfo, value: ast.AST) -> bool:
        """Does this expression evaluate to a result handle?  Direct
        ``ainvoke``/``minvoke`` calls, or calls into a project function
        already summarized as handle-returning."""
        if not isinstance(value, ast.Call):
            return False
        if isinstance(value.func, ast.Attribute) and \
                value.func.attr in HANDLE_INVOKES:
            return True
        for callee in self.graph.resolve(info, value):
            summ = self.summaries.get(callee.key)
            if summ is not None and summ.returns_handle:
                return True
        return False

    # -- call-site view for rules -------------------------------------------

    def arg_effects(self, info: FuncInfo,
                    call: ast.Call) -> dict[str, set[str]]:
        """What resolved callees do with each plain-name argument of
        ``call``: escape kinds plus ``"mutate"``.  Empty when the call
        graph cannot resolve the callee."""
        effects: dict[str, set[str]] = {}
        for callee in self.graph.resolve(info, call):
            summ = self.summaries.get(callee.key)
            if summ is None:
                continue
            for param, arg in map_call_args(callee, call):
                for name in arg_value_names(arg):
                    got = effects.setdefault(name, set())
                    got |= summ.escape_kinds(param)
                    if param in summ.mutates:
                        got.add("mutate")
        return effects


def map_call_args(callee: FuncInfo, call: ast.Call):
    """``(parameter name, argument expression)`` pairs for one call."""
    positional = param_names(callee)
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        if i >= len(positional):
            break
        yield positional[i], arg
    valid = _keyword_params(callee)
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in valid:
            yield kw.arg, kw.value


def _free_loads(func: ast.AST) -> set[str]:
    """Names a nested def/lambda reads that it does not itself bind."""
    bound: set[str] = set()
    args = func.args
    for a in (args.posonlyargs + args.args + args.kwonlyargs):
        bound.add(a.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    loads: set[str] = set()
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    bound.add(node.id)
                elif isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
    return loads - bound


__all__ = [
    "ESCAPE_KINDS",
    "EscapeAnalysis",
    "HANDLE_INVOKES",
    "MUTATOR_METHODS",
    "REMOTE_INVOKES",
    "Summary",
    "arg_value_names",
    "map_call_args",
    "param_names",
]
