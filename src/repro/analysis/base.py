"""Checker framework: findings, severities, modules, suppressions.

A :class:`Checker` sees the whole :class:`Project` (every parsed module)
so cross-file passes like protocol completeness are first-class.  Line
suppressions use ``# symlint: disable=rule-a,rule-b`` on the offending
line or on the line directly above it, or
``# symlint: disable-next-line=rule-a`` to cover exactly the following
line; anything after the rule list is treated as the justification and
ignored by the parser.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""  # e.g. "RealKernel.processes" or a message kind

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


_SUPPRESS_RE = re.compile(r"#\s*symlint:\s*disable=([\w\-,]+)")
_SUPPRESS_NEXT_RE = re.compile(
    r"#\s*symlint:\s*disable-next-line=([\w\-,]+)"
)
_ALL = "all"


@dataclass
class Module:
    """A parsed source file plus its suppression table."""

    path: str
    tree: ast.Module
    source_lines: list[str]
    #: line number -> set of suppressed rule names ("all" disables all)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "Module":
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        suppressions: dict[int, set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = _SUPPRESS_NEXT_RE.search(text)
            if match:
                # disable-next-line covers exactly the following line,
                # never its own (trailing use is an explicit choice to
                # leave this line checked).
                rules = {
                    r.strip()
                    for r in match.group(1).split(",") if r.strip()
                }
                suppressions.setdefault(lineno + 1, set()).update(rules)
                continue
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            suppressions.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                # A pragma on its own line covers the next line too.
                suppressions.setdefault(lineno + 1, set()).update(rules)
        return cls(path, tree, lines, suppressions)

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and (rule in rules or _ALL in rules)


@dataclass
class Project:
    """Every module under analysis, addressable by path."""

    modules: list[Module]

    def by_basename(self, basename: str) -> list[Module]:
        return [
            m for m in self.modules
            if m.path.rsplit("/", 1)[-1] == basename
        ]


class Checker:
    """Base class for one analysis pass.

    ``rules`` maps each rule id this checker can emit to its default
    :class:`Severity`; the runner uses it for ``--rules`` filtering and
    documentation.
    """

    name: str = "checker"
    rules: dict[str, Severity] = {}

    def check(self, project: Project) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        rule: str,
        path: str,
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=rule,
            severity=self.rules[rule],
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr_name(node: ast.AST) -> str | None:
    """``x`` for ``self.x``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_methods(klass: ast.ClassDef):
    for item in klass.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def is_init_method(name: str) -> bool:
    """Constructor-ish methods: writes there happen before the object is
    shared across threads, so lock discipline does not apply yet."""
    return name in ("__init__", "__post_init__") or name.startswith("init")
