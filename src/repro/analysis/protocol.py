"""JRS protocol-completeness analysis.

Cross-references every message-kind constant defined in a ``messages.py``
module (``NAME = "NAME"`` at module level) against the project's dispatch
sites: ``endpoint.register(M.KIND, handler)`` registrations and
``rpc``/``rpc_async``/``send_oneway``/``send`` transmissions.

Rules
-----
``unhandled-kind`` (error)
    A kind is sent somewhere but no endpoint in the analyzed project
    registers a handler for it — the receiver would raise
    ``TransportError: no handler`` at run time (reported at the first
    send site).

``dead-kind`` (warning)
    A kind is declared in the messages module but never sent: dead
    protocol surface (reported at the declaration).

``raw-kind-literal`` (error)
    A dispatch site spells a known kind as a raw string literal instead
    of the constant, silently decoupling it from the declaration it
    shadows.  Literals that match no declared kind (application-level
    ad-hoc kinds) are not flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
)

SEND_FUNCS = {"rpc", "rpc_async", "send_oneway", "send"}
REGISTER_FUNCS = {"register"}


@dataclass
class _Site:
    module: Module
    node: ast.AST


@dataclass
class _Usage:
    #: kind name -> declaration (module, assign node)
    declared: dict[str, _Site] = field(default_factory=dict)
    values: dict[str, str] = field(default_factory=dict)  # value -> name
    sent: dict[str, _Site] = field(default_factory=dict)
    handled: dict[str, _Site] = field(default_factory=dict)


def _messages_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to a ``messages`` module by imports."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "messages":
                    aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.endswith(".messages") or \
                        alias.name == "messages":
                    if alias.asname:
                        aliases.add(alias.asname)
                    elif alias.name == "messages":
                        aliases.add("messages")
    return aliases


def _declared_kinds(module: Module) -> dict[str, tuple[str, ast.AST]]:
    """Module-level ``NAME = "VALUE"`` string constants, uppercase only."""
    kinds: dict[str, tuple[str, ast.AST]] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or not target.id.isupper():
            continue
        if isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            kinds[target.id] = (node.value.value, node)
    return kinds


class ProtocolChecker(Checker):
    name = "protocol"
    rules = {
        "unhandled-kind": Severity.ERROR,
        "dead-kind": Severity.WARNING,
        "raw-kind-literal": Severity.ERROR,
    }

    def check(self, project: Project) -> list[Finding]:
        usage = _Usage()
        message_modules = project.by_basename("messages.py")
        for module in message_modules:
            for name, (value, node) in _declared_kinds(module).items():
                usage.declared.setdefault(name, _Site(module, node))
                usage.values.setdefault(value, name)
        if not usage.declared:
            return []

        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self._scan_dispatch(module, usage))

        for name, site in usage.declared.items():
            if name in usage.sent:
                continue
            finding = self.finding(
                "dead-kind",
                site.module.path,
                site.node,
                f"message kind {name} is declared but never sent "
                "anywhere in the analyzed code: dead protocol surface "
                "(or the sender was not included in the lint paths)",
                symbol=name,
            )
            findings.append(finding)

        for name, site in usage.sent.items():
            if name in usage.handled:
                continue
            findings.append(
                self.finding(
                    "unhandled-kind",
                    site.module.path,
                    site.node,
                    f"message kind {name} is sent here but no endpoint "
                    "in the analyzed code registers a handler for it; "
                    "the receiving agent would raise 'no handler for "
                    f"message kind {name!r}' at run time",
                    symbol=name,
                )
            )
        return findings

    def _scan_dispatch(self, module: Module, usage: _Usage):
        aliases = _messages_aliases(module.tree)
        is_messages_module = module.path.endswith("messages.py")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in SEND_FUNCS:
                bucket = usage.sent
            elif func.attr in REGISTER_FUNCS:
                bucket = usage.handled
            else:
                continue
            args = list(node.args) + [
                kw.value for kw in node.keywords if kw.arg == "kind"
            ]
            for arg in args:
                name = self._constant_ref(arg, aliases, usage)
                if name is not None:
                    bucket.setdefault(name, _Site(module, arg))
                    continue
                if (
                    not is_messages_module
                    and isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value in usage.values
                ):
                    kind = usage.values[arg.value]
                    bucket.setdefault(kind, _Site(module, arg))
                    yield self.finding(
                        "raw-kind-literal",
                        module.path,
                        arg,
                        f"raw string {arg.value!r} used as a message "
                        f"kind; use the {kind} constant from the "
                        "messages module so the protocol checker can "
                        "track it",
                        symbol=kind,
                    )

    @staticmethod
    def _constant_ref(
        node: ast.AST, aliases: set[str], usage: _Usage
    ) -> str | None:
        """``M.KIND`` / ``messages.KIND`` -> "KIND" when KIND is known."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in aliases
            and node.attr in usage.declared
        ):
            return node.attr
        return None
