"""Tracer-under-lock analysis.

The obs tracer is designed to be safe from anywhere *except* inside a
lock-held region: ``tracer.count``/``observe`` take the metrics registry
lock, so calling them while holding a runtime lock (``_holder_lock``,
the kernel's ``_lock``, ...) adds a lock-order edge between runtime and
observability — and even the lock-free ``emit`` path pays its cost
inside the critical section, stretching every contender's wait.  The
hook-point convention is: leave the ``with`` block first, then trace.

Rules
-----
``tracer-call-under-lock`` (warning)
    ``*.emit(...)`` / ``*.count(...)`` / ``*.observe(...)`` /
    ``*.emit_span(...)`` / ``*.begin_span(...)`` / ``*.end_span(...)``
    on anything named ``tracer`` lexically inside a ``with <lock>:``
    block.  The span calls are covered too: ``begin_span`` mutates the
    open-span registry and installs thread-local context, and
    ``end_span`` re-enters ``emit`` — none of that belongs inside a
    runtime critical section.

``registry-call-under-lock`` (warning)
    The same discipline for the rest of the telemetry plane:
    ``count`` / ``observe`` / ``merge`` / ``merge_snapshot`` /
    ``ingest`` / ``record`` on a receiver whose attribute chain
    mentions ``metrics``, ``recorder``, ``flight`` or ``telemetry``,
    inside a ``with <lock>:`` block.  Registry mutation takes the
    registry mutex and ``FlightRecorder.record`` snapshots the whole
    ring — both stretch the caller's critical section and add a
    runtime→obs lock-order edge.  When the receiver also mentions
    ``tracer`` the tracer rule wins (one finding, not two).

Lock-ness is judged the same way as in
:mod:`repro.analysis.lock_discipline`: the context expression's name
mentions "lock".  Nested function definitions are skipped — they do not
run under the enclosing ``with``.
"""

from __future__ import annotations

import ast

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
)

TRACER_METHODS = {
    "emit", "count", "observe", "emit_span", "begin_span", "end_span",
}

REGISTRY_METHODS = {
    "count", "observe", "merge", "merge_snapshot", "ingest", "record",
}

REGISTRY_WORDS = ("metrics", "recorder", "flight", "telemetry")


def _attr_chain(expr: ast.AST) -> list[str]:
    """["self", "world", "tracer", "emit"] for self.world.tracer.emit."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _is_tracer_call(call: ast.Call) -> bool:
    chain = _attr_chain(call.func)
    if len(chain) < 2 or chain[-1] not in TRACER_METHODS:
        return False
    return any("tracer" in part.lower() for part in chain[:-1])


def _is_registry_call(call: ast.Call) -> bool:
    chain = _attr_chain(call.func)
    if len(chain) < 2 or chain[-1] not in REGISTRY_METHODS:
        return False
    receiver = [part.lower() for part in chain[:-1]]
    if any("tracer" in part for part in receiver):
        return False  # the tracer rule owns this call
    return any(word in part for part in receiver for word in REGISTRY_WORDS)


def _lockish(expr: ast.AST) -> bool:
    chain = _attr_chain(expr)
    return any("lock" in part.lower() for part in chain)


class _FunctionScanner(ast.NodeVisitor):
    """Tracks lexical ``with <lock>`` nesting within one function body."""

    def __init__(self) -> None:
        self.held: list[str] = []
        self.hits: list[tuple[str, ast.Call, str]] = []

    def visit_With(self, node: ast.With) -> None:
        acquired = [
            ".".join(_attr_chain(item.context_expr)) or "<lock>"
            for item in node.items
            if _lockish(item.context_expr)
        ]
        self.held.extend(acquired)
        self.generic_visit(node)
        del self.held[len(self.held) - len(acquired):]

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            if _is_tracer_call(node):
                self.hits.append(
                    ("tracer-call-under-lock", node, self.held[-1])
                )
            elif _is_registry_call(node):
                self.hits.append(
                    ("registry-call-under-lock", node, self.held[-1])
                )
        self.generic_visit(node)

    # A nested def under a ``with`` executes later, not under the lock.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class ObsDisciplineChecker(Checker):
    name = "obs-discipline"
    rules = {
        "tracer-call-under-lock": Severity.WARNING,
        "registry-call-under-lock": Severity.WARNING,
    }

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: Module):
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scanner = _FunctionScanner()
            for stmt in node.body:
                scanner.visit(stmt)
            for rule, call, lock in scanner.hits:
                method = call.func.attr if isinstance(
                    call.func, ast.Attribute
                ) else "?"
                what = ("tracer" if rule == "tracer-call-under-lock"
                        else "telemetry registry")
                yield self.finding(
                    rule,
                    module.path,
                    call,
                    f"{what} .{method}() inside 'with {lock}': move the "
                    "call after the lock is released — it takes the "
                    "metrics lock and stretches the critical section",
                    symbol=node.name,
                )
