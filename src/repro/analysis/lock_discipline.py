"""Lock-discipline and deadlock-order analysis.

Per class, builds the map of ``self.*`` attributes touched under a
``with self._lock:`` block versus outside one, and a lock-acquisition
order graph across the whole project.

Rules
-----
``unguarded-write`` (error)
    An attribute is read or written under a lock somewhere in the class
    but written *outside* any lock elsewhere — the classic
    check-then-act race (paper Section 5.2 runs one thread per request,
    so holder tables are genuinely shared).

``unlocked-mutation`` (warning)
    A class that owns a ``threading.Lock``/``RLock`` mutates a container
    attribute (append/pop/subscript-store/...) outside any lock.  Plain
    rebinding assignments are not flagged — only mutations that are
    non-atomic read-modify-write sequences.

``lock-order-cycle`` (error)
    Two locks are acquired in opposite nesting orders on different code
    paths: a potential deadlock (detected as a cycle in the
    acquisition-order graph, via networkx).

Constructor-like methods (``__init__``, ``init_*``) are exempt: the
object is not yet shared while they run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
    dotted_name,
    is_init_method,
    iter_methods,
    self_attr_name,
)

LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "Lock",
    "RLock",
}

#: container mutations that are read-modify-write, not atomic rebinds
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "appendleft", "popleft",
}


@dataclass
class _Access:
    attr: str
    method: str
    node: ast.AST
    kind: str  # "write" | "mutate" | "read"
    guards: frozenset[str]


@dataclass
class _ClassReport:
    lock_attrs: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)
    #: (outer_lock, inner_lock) -> acquisition site
    order_edges: dict[tuple[str, str], ast.AST] = field(default_factory=dict)


def _lock_name_of(expr: ast.AST) -> str | None:
    """The lock identity acquired by a ``with`` item, if it looks like
    one: ``self.x`` / bare name whose name mentions 'lock', or any
    ``self.x`` (resolved against the class's known lock attrs later)."""
    name = self_attr_name(expr)
    if name is not None:
        return name
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class _MethodScanner(ast.NodeVisitor):
    """Walks one method body tracking the stack of held locks."""

    def __init__(self, report: _ClassReport, method: str) -> None:
        self.report = report
        self.method = method
        self.held: list[str] = []

    def _is_lock(self, name: str) -> bool:
        return name in self.report.lock_attrs or "lock" in name.lower()

    def _guards(self) -> frozenset[str]:
        return frozenset(self.held)

    def _record(self, attr: str, node: ast.AST, kind: str) -> None:
        self.report.accesses.append(
            _Access(attr, self.method, node, kind, self._guards())
        )

    # -- lock tracking ------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            name = _lock_name_of(item.context_expr)
            if name is not None and self._is_lock(name):
                for outer in self.held:
                    if outer != name:
                        self.report.order_edges.setdefault(
                            (outer, name), item.context_expr
                        )
                self.held.append(name)
                acquired.append(name)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With

    # -- attribute accesses ---------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self_attr_name(node.target)
        if attr is not None:
            # += on an attribute is a read-modify-write: a mutation.
            self._record(attr, node, "mutate")
        else:
            self._record_target(node.target)
        self.visit(node.value)

    def _record_target(self, target: ast.AST) -> None:
        attr = self_attr_name(target)
        if attr is not None:
            self._record(attr, target, "write")
            return
        if isinstance(target, ast.Subscript):
            # self.x[k] = v mutates container self.x
            attr = self_attr_name(target.value)
            if attr is not None:
                self._record(attr, target, "mutate")
            else:
                self.visit(target.value)
            self.visit(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
        ):
            attr = self_attr_name(func.value)
            if attr is not None:
                self._record(attr, node, "mutate")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            attr = self_attr_name(node)
            if attr is not None:
                self._record(attr, node, "read")
        self.generic_visit(node)

    # Nested functions/lambdas run later, possibly without the lock held;
    # analyzing them with the current guard stack would be wrong, and
    # without it would be noise — skip their bodies.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _collect_lock_attrs(klass: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(klass):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        factory = dotted_name(node.value.func)
        if factory not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attr_name(target)
            if attr is not None:
                locks.add(attr)
    return locks


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    rules = {
        "unguarded-write": Severity.ERROR,
        "unlocked-mutation": Severity.WARNING,
        "lock-order-cycle": Severity.ERROR,
    }

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: Module, klass: ast.ClassDef
    ) -> list[Finding]:
        report = _ClassReport(lock_attrs=_collect_lock_attrs(klass))
        for method in iter_methods(klass):
            scanner = _MethodScanner(report, method.name)
            for stmt in method.body:
                scanner.visit(stmt)
        findings = list(self._discipline_findings(module, klass, report))
        findings.extend(self._order_findings(module, klass, report))
        return findings

    # -- unguarded-write / unlocked-mutation --------------------------------

    def _discipline_findings(
        self, module: Module, klass: ast.ClassDef, report: _ClassReport
    ):
        guarded_attrs = {
            a.attr for a in report.accesses
            if a.guards and a.attr not in report.lock_attrs
        }
        flagged: set[tuple[str, int]] = set()
        for access in report.accesses:
            if access.kind == "read" or access.guards:
                continue
            if is_init_method(access.method):
                continue
            if access.attr in report.lock_attrs:
                continue
            line = getattr(access.node, "lineno", 0)
            if access.attr in guarded_attrs:
                if (access.attr, line) in flagged:
                    continue
                flagged.add((access.attr, line))
                locks = sorted(
                    lock
                    for a in report.accesses
                    for lock in a.guards
                    if a.attr == access.attr
                )
                yield self.finding(
                    "unguarded-write",
                    module.path,
                    access.node,
                    f"attribute '{access.attr}' is accessed under "
                    f"lock(s) {', '.join(locks)} elsewhere in "
                    f"{klass.name} but written here without holding a "
                    f"lock (method {access.method})",
                    symbol=f"{klass.name}.{access.attr}",
                )
            elif access.kind == "mutate" and report.lock_attrs:
                yield self.finding(
                    "unlocked-mutation",
                    module.path,
                    access.node,
                    f"{klass.name} owns lock(s) "
                    f"{', '.join(sorted(report.lock_attrs))} but mutates "
                    f"container attribute '{access.attr}' outside any "
                    f"lock (method {access.method}); read-modify-write "
                    "is not atomic under the wall-clock kernel",
                    symbol=f"{klass.name}.{access.attr}",
                )

    # -- lock-order-cycle ----------------------------------------------------

    def _order_findings(
        self, module: Module, klass: ast.ClassDef, report: _ClassReport
    ):
        if not report.order_edges:
            return
        import networkx as nx

        graph = nx.DiGraph()
        for (outer, inner), site in report.order_edges.items():
            graph.add_edge(outer, inner, site=site)
        for cycle in nx.simple_cycles(graph):
            if len(cycle) < 2:
                continue
            order = " -> ".join(cycle + [cycle[0]])
            pairs = list(zip(cycle, cycle[1:] + [cycle[0]]))
            sites = ", ".join(
                f"{a}->{b} at line "
                f"{getattr(report.order_edges[(a, b)], 'lineno', '?')}"
                for a, b in pairs
                if (a, b) in report.order_edges
            )
            first_site = report.order_edges[pairs[0]]
            yield self.finding(
                "lock-order-cycle",
                module.path,
                first_site,
                f"locks in {klass.name} are acquired in conflicting "
                f"orders ({order}): potential deadlock ({sites})",
                symbol=f"{klass.name}:{'/'.join(sorted(set(cycle)))}",
            )
