"""Blocking-call-in-handler analysis.

Agent message handlers run one transport process per incoming request
(paper: "one thread per request on the PubOA"), but a handler that
sleeps or performs a nested synchronous RPC ties up its request slot,
holds the per-object executing flag, and — when the peer calls back into
the sender — can produce a distributed call cycle that only resolves by
timeout.

Rules
-----
``blocking-sleep-in-handler`` (error)
    ``time.sleep`` / ``kernel.sleep`` directly inside a message handler.

``blocking-rpc-in-handler`` (warning)
    A synchronous ``.rpc(...)`` call directly inside a message handler;
    prefer ``rpc_async``/``send_oneway`` or justify with a suppression
    (the migration push in Figure 3 is the one legitimate case).

Handlers are methods named ``_h_*`` or ``_on_*``, plus any function
referenced as the handler argument of ``endpoint.register(kind, fn)``.
Only direct calls are flagged; nested function definitions are skipped.

Call enumeration runs on the shared CFG engine
(:mod:`repro.analysis.cfg`): the handler body is lowered to basic
blocks and each block's statement-granular call sites are inspected —
the same traversal symloc's locality rules use.
"""

from __future__ import annotations

import ast

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
    iter_methods,
    self_attr_name,
)
from repro.analysis.cfg import build_cfg, calls_in_stmt

HANDLER_PREFIXES = ("_h_", "_on_")


def _registered_handler_names(tree: ast.Module) -> set[str]:
    """Function/method names passed as the handler to ``.register``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "register":
            continue
        if len(node.args) < 2:
            continue
        handler = node.args[1]
        if isinstance(handler, ast.Name):
            names.add(handler.id)
        else:
            attr = self_attr_name(handler)
            if attr is not None:
                names.add(attr)
    return names


def _is_handler(func: ast.FunctionDef, registered: set[str]) -> bool:
    return func.name.startswith(HANDLER_PREFIXES) or func.name in registered


def _direct_calls(func: ast.FunctionDef):
    """Call nodes in the handler body, skipping nested defs/lambdas.

    Enumerated via the CFG so blocking shares one notion of "executes
    in this function" with the locality rules.
    """
    cfg = build_cfg(func)
    for _block, _idx, stmt in cfg.statements():
        for call, _comp_depth in calls_in_stmt(stmt):
            yield call


class BlockingHandlerChecker(Checker):
    name = "blocking-handler"
    rules = {
        "blocking-sleep-in-handler": Severity.ERROR,
        "blocking-rpc-in-handler": Severity.WARNING,
    }

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            registered = _registered_handler_names(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for method in iter_methods(node):
                    if not _is_handler(method, registered):
                        continue
                    findings.extend(
                        self._check_handler(module, node, method)
                    )
        return findings

    def _check_handler(
        self, module: Module, klass: ast.ClassDef, method: ast.FunctionDef
    ):
        where = f"{klass.name}.{method.name}"
        for call in _direct_calls(method):
            func = call.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name == "sleep":
                yield self.finding(
                    "blocking-sleep-in-handler",
                    module.path,
                    call,
                    f"message handler {where} sleeps; it stalls its "
                    "request process and delays every invocation queued "
                    "behind this object",
                    symbol=where,
                )
            elif name == "rpc":
                yield self.finding(
                    "blocking-rpc-in-handler",
                    module.path,
                    call,
                    f"message handler {where} performs a synchronous "
                    "RPC; a peer that calls back into this agent can "
                    "deadlock until the timeout. Use rpc_async/"
                    "send_oneway or suppress with a justification",
                    symbol=where,
                )
