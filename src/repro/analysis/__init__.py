"""symlint: PySymphony-aware static analysis.

AST-based checkers for the paper invariants the runtime relies on but
cannot enforce mechanically at run time:

* lock discipline / race detection in the multi-threaded kernel and the
  holder endpoints (``lock_discipline``);
* JRS protocol completeness — every message kind handled, no dead kinds,
  no raw string kinds bypassing :mod:`repro.agents.messages`
  (``protocol``);
* migration/serialization safety of remotely instantiable classes
  (``migration_safety``);
* no blocking calls inside agent message handlers (``blocking``);
* locality & communication cost — symloc's CFG/dataflow-backed rules
  against chatty synchronous RMI, dropped handles, migration thrash and
  per-iteration re-serialization (``locality``, on the reusable
  :mod:`repro.analysis.cfg` + :mod:`repro.analysis.dataflow` engine).

Run it as ``python -m repro lint [paths]`` or through
:func:`analyze_paths`.
"""

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
)
from repro.analysis.blocking import BlockingHandlerChecker
from repro.analysis.cfg import CFG, Block, build_cfg, function_cfgs
from repro.analysis.dataflow import Liveness, ReachingDefinitions
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.locality import LocalityChecker
from repro.analysis.migration_safety import MigrationSafetyChecker
from repro.analysis.protocol import ProtocolChecker
from repro.analysis.runner import (
    Report,
    analyze_paths,
    default_checkers,
    render_json,
    render_text,
)

__all__ = [
    "Block",
    "BlockingHandlerChecker",
    "CFG",
    "Checker",
    "Finding",
    "Liveness",
    "LocalityChecker",
    "LockDisciplineChecker",
    "MigrationSafetyChecker",
    "Module",
    "Project",
    "ProtocolChecker",
    "ReachingDefinitions",
    "Report",
    "Severity",
    "analyze_paths",
    "build_cfg",
    "default_checkers",
    "function_cfgs",
    "render_json",
    "render_text",
]
