"""symlint: PySymphony-aware static analysis.

AST-based checkers for the paper invariants the runtime relies on but
cannot enforce mechanically at run time:

* lock discipline / race detection in the multi-threaded kernel and the
  holder endpoints (``lock_discipline``);
* JRS protocol completeness — every message kind handled, no dead kinds,
  no raw string kinds bypassing :mod:`repro.agents.messages`
  (``protocol``);
* migration/serialization safety of remotely instantiable classes
  (``migration_safety``);
* no blocking calls inside agent message handlers (``blocking``);
* locality & communication cost — symloc's CFG/dataflow-backed rules
  against chatty synchronous RMI, dropped handles, migration thrash and
  per-iteration re-serialization (``locality``, on the reusable
  :mod:`repro.analysis.cfg` + :mod:`repro.analysis.dataflow` engine);
* copy-semantics & stale-reference safety — symshare's alias, escape
  and typestate layers (:mod:`repro.analysis.alias`,
  :mod:`repro.analysis.escape`, :mod:`repro.analysis.typestate`)
  catching mutate-after-send, live resources in remote arguments,
  stale cached locations after ``migrate``, consumed oneway results
  and project-wide never-awaited handles (``share``).

Run it as ``python -m repro lint [paths]`` or through
:func:`analyze_paths`.
"""

from repro.analysis.alias import AliasAnalysis
from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
)
from repro.analysis.blocking import BlockingHandlerChecker
from repro.analysis.cfg import CFG, Block, build_cfg, function_cfgs
from repro.analysis.dataflow import Liveness, ReachingDefinitions
from repro.analysis.escape import EscapeAnalysis, Summary
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.locality import LocalityChecker
from repro.analysis.migration_safety import MigrationSafetyChecker
from repro.analysis.protocol import ProtocolChecker
from repro.analysis.retry import RetryDisciplineChecker
from repro.analysis.runner import (
    Report,
    analyze_paths,
    default_checkers,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.share import SymshareChecker
from repro.analysis.typestate import (
    TSEvent,
    TypestateAnalysis,
    TypestateSpec,
)

__all__ = [
    "AliasAnalysis",
    "Block",
    "BlockingHandlerChecker",
    "CFG",
    "Checker",
    "EscapeAnalysis",
    "Finding",
    "Liveness",
    "LocalityChecker",
    "LockDisciplineChecker",
    "MigrationSafetyChecker",
    "Module",
    "Project",
    "ProtocolChecker",
    "RetryDisciplineChecker",
    "ReachingDefinitions",
    "Report",
    "Severity",
    "Summary",
    "SymshareChecker",
    "TSEvent",
    "TypestateAnalysis",
    "TypestateSpec",
    "analyze_paths",
    "build_cfg",
    "default_checkers",
    "function_cfgs",
    "render_json",
    "render_sarif",
    "render_text",
]
