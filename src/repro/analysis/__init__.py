"""symlint: PySymphony-aware static analysis.

AST-based checkers for the paper invariants the runtime relies on but
cannot enforce mechanically at run time:

* lock discipline / race detection in the multi-threaded kernel and the
  holder endpoints (``lock_discipline``);
* JRS protocol completeness — every message kind handled, no dead kinds,
  no raw string kinds bypassing :mod:`repro.agents.messages`
  (``protocol``);
* migration/serialization safety of remotely instantiable classes
  (``migration_safety``);
* no blocking calls inside agent message handlers (``blocking``).

Run it as ``python -m repro lint [paths]`` or through
:func:`analyze_paths`.
"""

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
)
from repro.analysis.blocking import BlockingHandlerChecker
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.migration_safety import MigrationSafetyChecker
from repro.analysis.protocol import ProtocolChecker
from repro.analysis.runner import (
    Report,
    analyze_paths,
    default_checkers,
    render_json,
    render_text,
)

__all__ = [
    "BlockingHandlerChecker",
    "Checker",
    "Finding",
    "LockDisciplineChecker",
    "MigrationSafetyChecker",
    "Module",
    "Project",
    "ProtocolChecker",
    "Report",
    "Severity",
    "analyze_paths",
    "default_checkers",
    "render_json",
    "render_text",
]
