"""symloc: locality & communication-cost rules on the CFG/dataflow engine.

JavaSymphony's premise is that the *programmer* controls locality —
placement, migration, and the three invocation modes (``sinvoke`` /
``ainvoke`` / ``oinvoke``) are the knobs.  These rules statically catch
the communication anti-patterns the paper's evaluation warns against:
chatty fine-grained synchronous RMI, synchronous calls where
asynchrony would overlap, dropped result handles, migration thrash,
and re-serializing a large argument per call instead of installing it
once (the matmul ``oinvoke("init", B)`` idiom).

Rules
-----
``remote-invoke-in-loop`` (warning; **error** at loop depth >= 2)
    A synchronous remote call inside a loop: a bare ``sinvoke``, an
    ``ainvoke(...).get_result()`` chain, or an ainvoke whose handle is
    awaited immediately in the same iteration.  Each iteration pays a
    full network round-trip; ship the call set as one ``minvoke`` batch
    (or batch the ainvokes and collect the handles after the loop), or
    use ``oinvoke`` when the result is unused.

``sync-invoke-async-opportunity`` (info)
    A ``sinvoke`` whose result is provably not needed for the next
    :data:`OVERLAP_WINDOW` statements (statement-level liveness): the
    round-trip could overlap that work via ``ainvoke`` — or ``oinvoke``
    if the result is never read at all.

``dropped-result-handle`` (warning)
    An ``ainvoke`` handle that dies without ``get_result()`` /
    ``is_ready()``: remote exceptions are silently lost.  Use
    ``oinvoke`` for genuine fire-and-forget (it never materializes a
    result) or collect the handle.

``migrate-in-loop`` (warning)
    ``migrate`` inside a loop moves the whole object state per
    iteration; hoist placement before the loop or guard it so it can
    fire at most once.

``repeated-remote-no-migration`` (info)
    The same loop-invariant object is invoked at several sites per
    iteration and the function never migrates or explicitly places it;
    co-locating it (``obj.migrate(...)``, creation constraints) would
    turn every call local.

``large-arg-resend`` (warning)
    An invocation inside a loop re-sends a large-looking argument (a
    name bound to a ``Payload(...)``) that is loop-invariant, to a
    loop-invariant receiver: the same bytes are re-serialized every
    iteration.  Install the data once on the object instead (matmul's
    replicated-B ``oinvoke("init", paramB)``).

Receivers created as ``JSObj(cls, "local")`` are exempt everywhere:
invoking a home-node object is a direct call, not communication.
"""

from __future__ import annotations

import ast

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
    dotted_name,
)
from repro.analysis.cfg import (
    CFG,
    FunctionNode,
    calls_in_stmt,
    function_cfgs,
    stmt_defs,
    stmt_uses,
)
from repro.analysis.dataflow import Definition, Liveness, ReachingDefinitions

#: a sinvoke result untouched for this many following statements is an
#: overlap opportunity
OVERLAP_WINDOW = 2

_INVOKES = ("sinvoke", "ainvoke", "oinvoke")


def _receiver(call: ast.Call) -> str | None:
    """Dotted receiver of a method call (``a.b`` for ``a.b.m(...)``)."""
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


def _method_name(call: ast.Call) -> str:
    """The invoked remote method, when passed as a literal."""
    if call.args and isinstance(call.args[0], ast.Constant) and \
            isinstance(call.args[0].value, str):
        return call.args[0].value
    return "?"


def _is_local_ctor(value: ast.AST) -> bool:
    """``JSObj(cls, "local")`` — a home-node object, zero-cost calls."""
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "JSObj"
        and len(value.args) >= 2
        and isinstance(value.args[1], ast.Constant)
        and value.args[1].value == "local"
    )


def _single_name_target(stmt: ast.AST) -> str | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
            isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id
    return None


def _def_depth(cfg: CFG, definition: Definition) -> int:
    """Loop depth at which a definition takes effect.  A ``for`` target
    rebinds per iteration even though its header block sits at the
    outer depth."""
    block = cfg.block(definition.block)
    stmt = block.stmts[definition.index]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return block.loop_depth + 1
    return block.loop_depth


class _FunctionFacts:
    """Everything the rules need about one function, computed once."""

    def __init__(self, func: FunctionNode, cfg: CFG) -> None:
        self.func = func
        self.cfg = cfg
        self.liveness = Liveness(cfg)
        self.reaching = ReachingDefinitions(cfg)
        self.local_names: set[str] = set()
        self.payload_names: set[str] = set()
        self.migrated: set[str] = set()
        for block in cfg.blocks:
            for idx, stmt in enumerate(block.stmts):
                target = _single_name_target(stmt)
                if target is not None and _is_local_ctor(stmt.value):
                    self.local_names.add(target)
                if target is not None and self._is_payload(stmt.value):
                    self.payload_names.add(target)
                for call, _ in calls_in_stmt(stmt):
                    if isinstance(call.func, ast.Attribute) and \
                            call.func.attr == "migrate":
                        recv = _receiver(call)
                        if recv:
                            self.migrated.add(recv)

    @staticmethod
    def _is_payload(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = dotted_name(value.func)
        return bool(name) and name.rsplit(".", 1)[-1] == "Payload"

    def is_payload_def(self, definition: Definition) -> bool:
        stmt = self.cfg.block(definition.block).stmts[definition.index]
        return (
            _single_name_target(stmt) == definition.name
            and self._is_payload(stmt.value)
        )


class LocalityChecker(Checker):
    name = "locality"
    rules = {
        "remote-invoke-in-loop": Severity.WARNING,
        "sync-invoke-async-opportunity": Severity.INFO,
        "dropped-result-handle": Severity.WARNING,
        "migrate-in-loop": Severity.WARNING,
        "repeated-remote-no-migration": Severity.INFO,
        "large-arg-resend": Severity.WARNING,
    }

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            for qualname, func, cfg in function_cfgs(module.tree):
                findings.extend(
                    self._check_function(module, qualname, func, cfg)
                )
            findings.extend(self._check_repeated_remote(module))
        return findings

    # -- CFG/dataflow-backed rules ------------------------------------------

    def _check_function(
        self, module: Module, qualname: str, func: FunctionNode, cfg: CFG
    ):
        facts = _FunctionFacts(func, cfg)
        for block, idx, stmt in cfg.statements():
            for call, comp_depth in calls_in_stmt(stmt):
                if not isinstance(call.func, ast.Attribute):
                    continue
                depth = block.loop_depth + comp_depth
                attr = call.func.attr
                recv = _receiver(call)
                if recv in facts.local_names:
                    continue
                if attr == "sinvoke":
                    yield from self._check_sinvoke(
                        module, facts, block, idx, stmt, call, depth
                    )
                elif attr == "ainvoke":
                    yield from self._check_ainvoke(
                        module, facts, block, idx, stmt, call
                    )
                elif attr in ("get_result", "is_ready"):
                    yield from self._check_wait(
                        module, block, idx, call, depth
                    )
                elif attr == "migrate" and depth >= 1:
                    yield self.finding(
                        "migrate-in-loop", module.path, call,
                        f"migrate inside a loop (depth {depth}) moves "
                        "the whole object state every iteration; hoist "
                        "the placement before the loop or guard it to "
                        "fire at most once",
                        symbol=recv or "",
                    )
                if attr in _INVOKES and depth >= 1:
                    yield from self._check_large_arg(
                        module, facts, block, idx, call, depth
                    )

    def _in_loop_finding(self, module: Module, call: ast.Call,
                         depth: int, message: str, symbol: str) -> Finding:
        severity = Severity.ERROR if depth >= 2 else Severity.WARNING
        return Finding(
            rule="remote-invoke-in-loop",
            severity=severity,
            path=module.path,
            line=call.lineno,
            col=call.col_offset,
            message=message,
            symbol=symbol,
        )

    def _check_sinvoke(self, module, facts, block, idx, stmt, call, depth):
        recv = _receiver(call) or "?"
        method = _method_name(call)
        symbol = f"{recv}.{method}"
        if depth >= 1:
            yield self._in_loop_finding(
                module, call, depth,
                f"synchronous sinvoke({method!r}) inside a loop "
                f"(depth {depth}): every iteration blocks for a full "
                "network round-trip; ship the whole call set as one "
                "minvoke batch (or batch with ainvoke and collect the "
                "handles after the loop), or oinvoke if the result is "
                "unused",
                symbol,
            )
            return
        # Overlap opportunities only make sense at statement level —
        # skip sinvokes buried in larger expressions (their result is
        # consumed immediately by construction).
        if isinstance(stmt, ast.Expr) and stmt.value is call:
            trailing = block.stmts[idx + 1:idx + 1 + OVERLAP_WINDOW]
            if len(block.stmts) - (idx + 1) >= OVERLAP_WINDOW and not any(
                self._invokes_receiver(s, recv) for s in trailing
            ):
                yield self.finding(
                    "sync-invoke-async-opportunity", module.path, call,
                    f"result of sinvoke({method!r}) is discarded but "
                    "the call still blocks for the reply; oinvoke is "
                    "one-sided, or ainvoke to overlap the round-trip "
                    "with the following statements",
                    symbol=symbol,
                )
            return
        target = _single_name_target(stmt)
        if target is None or stmt.value is not call:
            return
        distance = None
        for offset, later in enumerate(block.stmts[idx + 1:], start=1):
            if target in stmt_uses(later):
                distance = offset
                break
            if target in stmt_defs(later):
                distance = None  # rebound before any use: dead result
                break
        if distance is not None and distance > OVERLAP_WINDOW:
            yield self.finding(
                "sync-invoke-async-opportunity", module.path, call,
                f"{target!r} is not read for the next {distance - 1} "
                f"statement(s); ainvoke here and get_result() at first "
                "use would overlap the round-trip with that work",
                symbol=symbol,
            )
        elif distance is None and \
                target not in facts.liveness.live_after(block, idx):
            yield self.finding(
                "sync-invoke-async-opportunity", module.path, call,
                f"{target!r} is never read after this sinvoke"
                f"({method!r}); the call blocks for a result nothing "
                "uses — oinvoke would not",
                symbol=symbol,
            )

    def _check_ainvoke(self, module, facts, block, idx, stmt, call):
        recv = _receiver(call) or "?"
        method = _method_name(call)
        symbol = f"{recv}.{method}"
        if isinstance(stmt, ast.Expr) and stmt.value is call:
            yield self.finding(
                "dropped-result-handle", module.path, call,
                f"handle from ainvoke({method!r}) is discarded at the "
                "call site: a remote exception would be silently lost. "
                "Keep the handle and get_result() it, or use oinvoke "
                "for genuine fire-and-forget",
                symbol=symbol,
            )
            return
        target = _single_name_target(stmt)
        if target is None or stmt.value is not call:
            return
        if target not in facts.liveness.live_after(block, idx):
            yield self.finding(
                "dropped-result-handle", module.path, call,
                f"handle {target!r} dies without get_result(): remote "
                f"errors from {method!r} are silently lost. Await the "
                "handle or use oinvoke for fire-and-forget",
                symbol=symbol,
            )

    def _check_wait(self, module, block, idx, call, depth):
        if depth < 1:
            return
        waited = call.func.value
        attr = call.func.attr
        # obj.ainvoke(...).get_result(): a sync call in disguise.
        if isinstance(waited, ast.Call) and \
                isinstance(waited.func, ast.Attribute) and \
                waited.func.attr == "ainvoke":
            recv = _receiver(waited) or "?"
            method = _method_name(waited)
            yield self._in_loop_finding(
                module, call, depth,
                f"ainvoke({method!r}).{attr}() chained inside a loop "
                "is a synchronous call in disguise — nothing overlaps. "
                "Ship the call set as one minvoke batch, or issue the "
                "ainvokes across iterations first and collect the "
                "handles",
                f"{recv}.{method}",
            )
            return
        # h = obj.ainvoke(...) immediately followed by h.get_result()
        # in the same iteration: no overlap either.
        if not isinstance(waited, ast.Name) or idx == 0:
            return
        prev = block.stmts[idx - 1]
        if _single_name_target(prev) == waited.id and \
                isinstance(prev.value, ast.Call) and \
                isinstance(prev.value.func, ast.Attribute) and \
                prev.value.func.attr == "ainvoke":
            method = _method_name(prev.value)
            yield self._in_loop_finding(
                module, call, depth,
                f"handle {waited.id!r} is awaited immediately after "
                f"its ainvoke({method!r}) in the same loop iteration: "
                "the round-trips serialize. Ship the call set as one "
                "minvoke batch, or collect the handles and await them "
                "after the loop",
                f"{waited.id}.{method}",
            )

    def _check_large_arg(self, module, facts, block, idx, call, depth):
        recv = _receiver(call)
        if recv is None or "." in recv:
            return
        reaching = None
        arg_names = self._argument_names(call)
        for name in arg_names:
            if name not in facts.payload_names:
                continue
            if reaching is None:
                reaching = facts.reaching.reaching_before(block, idx)
            payload_defs = [
                d for d in reaching
                if d.name == name and facts.is_payload_def(d)
            ]
            if not payload_defs or any(
                _def_depth(facts.cfg, d) >= depth for d in payload_defs
            ):
                continue  # (re)built inside the loop: not a resend
            recv_defs = [d for d in reaching if d.name == recv]
            if any(_def_depth(facts.cfg, d) >= depth for d in recv_defs):
                continue  # a different receiver each iteration
            yield self.finding(
                "large-arg-resend", module.path, call,
                f"large argument {name!r} (a Payload built outside the "
                f"loop) is re-serialized to {recv!r} every iteration; "
                "install it once on the object instead (the matmul "
                "oinvoke('init', B) idiom) and send only the small "
                "per-call data",
                symbol=f"{recv}.{_method_name(call)}",
            )

    @staticmethod
    def _argument_names(call: ast.Call) -> set[str]:
        names: set[str] = set()
        for arg in call.args:
            if isinstance(arg, ast.Name):
                names.add(arg.id)
            elif isinstance(arg, (ast.List, ast.Tuple)):
                names.update(
                    e.id for e in arg.elts if isinstance(e, ast.Name)
                )
        return names

    @staticmethod
    def _invokes_receiver(stmt: ast.AST, recv: str) -> bool:
        """Does ``stmt`` invoke a method on ``recv``?  Back-to-back
        calls on one object are ordered state updates, not an overlap
        opportunity."""
        for call, _ in calls_in_stmt(stmt):
            if isinstance(call.func, ast.Attribute) and \
                    _receiver(call) == recv:
                return True
        return False

    # -- AST loop rule (needs loop identity, not just depth) ----------------

    def _check_repeated_remote(self, module: Module):
        """Same loop-invariant receiver invoked at >= 2 sites per
        iteration, never migrated/placed in the function."""
        for qualname, func in _functions(module.tree):
            facts_migrated: set[str] = set()
            local: set[str] = set()
            for node in self._own_statements(func):
                target = _single_name_target(node)
                if target is not None and _is_local_ctor(node.value):
                    local.add(target)
                for call, _ in calls_in_stmt(node):
                    if isinstance(call.func, ast.Attribute) and \
                            call.func.attr == "migrate":
                        recv = _receiver(call)
                        if recv:
                            facts_migrated.add(recv)
            for loop in self._own_loops(func):
                yield from self._check_one_loop(
                    module, qualname, loop, facts_migrated, local
                )

    @staticmethod
    def _own_statements(func: FunctionNode):
        """Statement nodes belonging to ``func`` (nested defs opaque)."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(node, ast.stmt):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _own_loops(cls, func: FunctionNode):
        for node in cls._own_statements(func):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                yield node

    def _check_one_loop(self, module, qualname, loop, migrated, local):
        # Attribute each call to its *innermost* loop (the stack walk
        # stops at nested loops) so nested loops do not double-report.
        body_stmts: list[ast.AST] = []
        stack: list[ast.AST] = list(loop.body) + list(
            getattr(loop, "orelse", [])
        )
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            if isinstance(node, ast.stmt):
                body_stmts.append(node)
            stack.extend(ast.iter_child_nodes(node))
        bound: set[str] = set()
        for stmt in body_stmts:
            bound |= stmt_defs(stmt)
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            bound |= {
                n.id for n in ast.walk(loop.target)
                if isinstance(n, ast.Name)
            }
        sites: dict[str, list[ast.Call]] = {}
        for stmt in body_stmts:
            for call, _ in calls_in_stmt(stmt):
                if not isinstance(call.func, ast.Attribute):
                    continue
                if call.func.attr not in _INVOKES:
                    continue
                recv = _receiver(call)
                if not recv or recv in bound or recv in local or \
                        recv in migrated:
                    continue
                if recv.split(".", 1)[0] in bound:
                    continue
                sites.setdefault(recv, []).append(call)
        for recv, calls in sorted(sites.items()):
            if len(calls) < 2:
                continue
            first = min(calls, key=lambda c: (c.lineno, c.col_offset))
            yield self.finding(
                "repeated-remote-no-migration", module.path, first,
                f"{recv!r} is invoked at {len(calls)} sites every "
                f"iteration of the loop at line {loop.lineno} but "
                f"{qualname} never migrates or re-places it; "
                "co-locating it first (obj.migrate(...) or creation "
                "constraints) would make these calls local",
                symbol=recv,
            )


def _functions(tree: ast.Module):
    """``(qualname, func)`` for every function, methods included."""
    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)
    yield from walk(tree, "")


__all__ = ["LocalityChecker", "OVERLAP_WINDOW"]
