"""Exception hierarchy for PySymphony.

All library-raised exceptions derive from :class:`JSError` so callers can
catch the whole family with one clause, mirroring how JavaSymphony surfaced
``JSException`` from its class library.
"""

from __future__ import annotations


class JSError(Exception):
    """Base class for every PySymphony error."""


class KernelError(JSError):
    """Misuse of the execution kernel (bad state transitions, re-entry)."""


class SimDeadlockError(KernelError):
    """The virtual kernel ran out of events while processes were blocked."""


class WaitTimeout(KernelError):
    """A blocking wait (future, channel, semaphore) timed out."""


class SanDeadlockError(KernelError):
    """The symsan wait-for-graph detector found a lock-acquisition cycle.

    Raised in the thread whose blocking acquire would close the cycle, so
    the deadlock is broken (that thread unwinds and releases its locks)
    instead of hanging the kernel."""


class TransportError(JSError):
    """Message-layer failure (unknown endpoint, undeliverable message)."""


class RPCTimeoutError(TransportError):
    """An RPC did not receive a reply within its timeout."""


class NodeFailedError(TransportError):
    """The peer host has failed; the message was dropped."""


class RetriesExhaustedError(TransportError):
    """Every retry attempt of a reliable RPC failed.

    Carries the per-attempt trace (a list of
    :class:`repro.rmi.reliability.AttemptTrace`) so callers and incident
    bundles can see what was tried, against whom, and how each attempt
    died.  Deliberately *not* a subclass of :class:`RPCTimeoutError`:
    with a retry policy installed, raw timeouts are an internal signal
    and this typed error is the user-visible surface."""

    def __init__(self, message: str, attempts: list | None = None):
        super().__init__(message)
        self.attempts = list(attempts or [])


class CircuitOpenError(TransportError):
    """The per-host circuit breaker is open: the destination has failed
    enough consecutive calls that new traffic is shed without being
    sent (it would only burn the caller's timeout budget)."""


class RegistrationError(JSError):
    """Application registration/unregistration misuse."""


class AllocationError(JSError):
    """No physical node satisfies the requested constraints."""


class ArchitectureError(JSError):
    """Structural misuse of a virtual architecture (bad index, re-parenting,
    freeing a component twice, ...)."""


class ConstraintError(JSError):
    """Malformed constraint (unknown parameter, bad operator, type clash)."""


class ClassNotLoadedError(JSError):
    """Object creation was attempted on a node whose class registry does not
    hold the class (selective remote classloading was not performed)."""


class CodebaseError(JSError):
    """Codebase misuse (unknown entry, load after free, bad URL)."""


class ObjectStateError(JSError):
    """Operation on a freed/migrating object, or an invalid handle."""


class RemoteInvocationError(JSError):
    """A remote method raised; carries the remote exception as ``cause``."""

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause


class MethodNotFoundError(RemoteInvocationError):
    """The invoked method does not exist on the remote object."""

    def __init__(self, message: str):
        super().__init__(message, None)


class MigrationError(JSError):
    """Migration protocol failure (target unknown, object busy forever...)."""


class PersistenceError(JSError):
    """Store/load failure for persistent objects."""


class ShellError(JSError):
    """JS-Shell administration failure (unknown node, duplicate add...)."""
