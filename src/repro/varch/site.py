"""``Site``: a collection of clusters (paper Section 4.2).

``Site([2, 4, 5], constr)`` allocates three clusters of 2, 4 and 5 fresh
nodes; ``Site()`` + ``add_cluster`` composes existing clusters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro import context
from repro.constraints import JSConstraints
from repro.errors import ArchitectureError
from repro.varch.cluster import Cluster
from repro.varch.component import VAComponent
from repro.varch.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.varch.domain import Domain


class Site(VAComponent):
    _kind = "site"

    def __init__(
        self,
        nodes_per_cluster: Sequence[int] | None = None,
        constraints: JSConstraints | None = None,
        pool: Any = None,
    ) -> None:
        super().__init__(pool if pool is not None else context.require_pool())
        self._clusters: list[Cluster] = []
        self._domain: "Domain | None" = None
        self._implicit = False
        if nodes_per_cluster is not None:
            counts = list(nodes_per_cluster)
            if not counts or any(c < 1 for c in counts):
                raise ArchitectureError(
                    f"bad cluster sizes {counts}: each cluster needs >= 1 node"
                )
            # One grouped acquire keeps hosts distinct across clusters
            # and confines each cluster to one physical segment when
            # the pool allows it.
            groups = self._pool.acquire_grouped(
                counts, constraints=constraints
            )
            for group in groups:
                cluster = Cluster(pool=self._pool)
                for host in group:
                    node = Node._wrap(host, self._pool)
                    node._cluster = cluster
                    cluster._nodes.append(node)
                cluster._site = self
                self._clusters.append(cluster)

    @classmethod
    def _implicit_for(cls, cluster: Cluster) -> "Site":
        site = cls(pool=cluster._pool)
        site._implicit = True
        site._clusters.append(cluster)
        cluster._site = site
        return site

    # -- structure ---------------------------------------------------------------

    def clusters(self) -> list[Cluster]:
        self._check_active()
        return list(self._clusters)

    def nodes(self) -> list[Node]:
        self._check_active()
        return [n for c in self._clusters for n in c.nodes()]

    def nr_clusters(self) -> int:
        self._check_active()
        return len(self._clusters)

    def nr_nodes(self) -> int:
        self._check_active()
        return sum(c.nr_nodes() for c in self._clusters)

    def get_cluster(self, index: int) -> Cluster:
        self._check_active()
        if not 0 <= index < len(self._clusters):
            raise ArchitectureError(
                f"cluster index {index} out of range "
                f"[0, {len(self._clusters) - 1}]"
            )
        return self._clusters[index]

    def get_node(self, cluster_id: int, node_id: int) -> Node:
        """``site.get_node(c, n)`` == ``site.get_cluster(c).get_node(n)``."""
        return self.get_cluster(cluster_id).get_node(node_id)

    def add_cluster(self, cluster: Cluster) -> None:
        self._check_active()
        cluster._check_active()
        if cluster._site is not None and not (
            cluster._site._implicit and cluster._site.nr_clusters() == 1
        ):
            raise ArchitectureError("cluster already belongs to a site")
        if cluster._site is not None:
            cluster._site._freed = True
        mine = {n.hostname for n in self.nodes()}
        theirs = {n.hostname for n in cluster.nodes()}
        overlap = mine & theirs
        if overlap:
            raise ArchitectureError(
                f"hosts {sorted(overlap)} already present in this site"
            )
        cluster._site = self
        self._clusters.append(cluster)

    # -- hierarchy ---------------------------------------------------------------

    def get_domain(self) -> "Domain":
        self._check_active()
        if self._domain is None:
            from repro.varch.domain import Domain

            Domain._implicit_for(self)
        assert self._domain is not None
        return self._domain

    # -- lifecycle ---------------------------------------------------------------

    def free_node(self, cluster_id: int, node_id: int) -> None:
        self.get_cluster(cluster_id).free_node(node_id)

    def free_cluster(self, which: Cluster | int) -> None:
        self._check_active()
        cluster = (
            self.get_cluster(which) if isinstance(which, int) else which
        )
        if cluster not in self._clusters:
            raise ArchitectureError("cluster is not part of this site")
        cluster.free_cluster()

    def _forget_cluster(self, cluster: Cluster) -> None:
        if cluster in self._clusters:
            self._clusters.remove(cluster)

    def free_site(self) -> None:
        self._check_active()
        for cluster in list(self._clusters):
            cluster.free_cluster()
        self._freed = True
        if self._domain is not None:
            self._domain._forget_site(self)

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"{len(self._clusters)} clusters"
        return f"<Site {state}>"

    # Paper-style aliases.
    nrClusters = nr_clusters
    nrNodes = nr_nodes
    getCluster = get_cluster
    getNode = get_node
    addCluster = add_cluster
    getDomain = get_domain
    freeNode = free_node
    freeCluster = free_cluster
    freeSite = free_site
