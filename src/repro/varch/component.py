"""Base class for virtual-architecture components.

Every component — node, cluster, site, domain — supports the Section 4.6
introspection API: ``getSysParam`` (averaged across contained nodes for
aggregates) and ``constrHold``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.constraints import JSConstraints
from repro.errors import ArchitectureError
from repro.sysmon import SysParam, average_snapshots
from repro.sysmon.sampler import Snapshot

if TYPE_CHECKING:  # pragma: no cover
    from repro.varch.node import Node


class VAComponent:
    _kind = "component"

    def __init__(self, pool: Any) -> None:
        self._pool = pool
        self._freed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def freed(self) -> bool:
        return self._freed

    def _check_active(self) -> None:
        if self._freed:
            raise ArchitectureError(
                f"this {self._kind} has been freed"
            )

    # -- structure (subclasses provide) ----------------------------------------

    def nodes(self) -> "list[Node]":
        raise NotImplementedError

    def hostnames(self) -> list[str]:
        return [n.hostname for n in self.nodes()]

    # -- monitoring (Section 4.6) -------------------------------------------

    def snapshot(self) -> Snapshot:
        """This component's parameter snapshot; aggregates average across
        their nodes (as the paper's managers do)."""
        self._check_active()
        nodes = self.nodes()
        if not nodes:
            raise ArchitectureError(
                f"{self._kind} has no nodes to sample"
            )
        snaps = [self._pool.snapshot(n.hostname) for n in nodes]
        if len(snaps) == 1:
            return snaps[0]
        return average_snapshots(snaps).params

    def get_sys_param(self, param: SysParam | str) -> Any:
        if isinstance(param, str):
            param = SysParam.by_key(param)
        return self.snapshot()[param]

    def constr_hold(self, constraints: JSConstraints) -> bool:
        """True iff the constraints hold for **every** node of the
        component — the same per-node semantics used at allocation time."""
        self._check_active()
        return all(
            constraints.holds(self._pool.snapshot(n.hostname))
            for n in self.nodes()
        )

    # Paper-style camelCase aliases.
    getSysParam = get_sys_param
    constrHold = constr_hold
