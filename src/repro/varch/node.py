"""``Node``: the leaf of a virtual architecture (one physical machine).

Paper Section 4.2::

    Node n1 = new Node();          // any node, JRS picks
    Node n2 = new Node("rachel");  // that specific machine
    Node n3 = new Node(constr);    // any node satisfying the constraints
    Cluster c1 = n1.getCluster();  // every node has a unique
    Site s1 = n1.getSite();        //   (cluster, site, domain) triple
    Domain d1 = n1.getDomain();
    n1.freeNode();

A free-standing node's cluster/site/domain are implicit singletons,
created lazily, preserving the unique-triple invariant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro import context
from repro.constraints import JSConstraints
from repro.errors import ArchitectureError
from repro.varch.component import VAComponent

if TYPE_CHECKING:  # pragma: no cover
    from repro.varch.cluster import Cluster
    from repro.varch.domain import Domain
    from repro.varch.site import Site


class Node(VAComponent):
    _kind = "node"

    def __init__(
        self,
        arg: "str | JSConstraints | None" = None,
        pool: Any = None,
    ) -> None:
        super().__init__(pool if pool is not None else context.require_pool())
        if arg is None:
            (host,) = self._pool.acquire(1)
        elif isinstance(arg, str):
            (host,) = self._pool.acquire(name=arg)
        elif isinstance(arg, JSConstraints):
            (host,) = self._pool.acquire(1, constraints=arg)
        else:
            raise ArchitectureError(
                f"Node() takes a name, JSConstraints or nothing, "
                f"not {type(arg).__name__}"
            )
        self._host = host
        self._cluster: "Cluster | None" = None

    @classmethod
    def _wrap(cls, host: str, pool: Any) -> "Node":
        """Internal: adopt an already-acquired host (bulk allocations)."""
        node = cls.__new__(cls)
        VAComponent.__init__(node, pool)
        node._host = host
        node._cluster = None
        return node

    # -- identity --------------------------------------------------------------

    @property
    def hostname(self) -> str:
        return self._host

    def nodes(self) -> "list[Node]":
        self._check_active()
        return [self]

    def __repr__(self) -> str:
        state = "freed" if self._freed else "active"
        return f"<Node {self._host} ({state})>"

    # -- hierarchy --------------------------------------------------------------

    def get_cluster(self) -> "Cluster":
        """The unique cluster this node belongs to (implicit singleton for
        free-standing nodes)."""
        self._check_active()
        if self._cluster is None:
            from repro.varch.cluster import Cluster

            Cluster._implicit_for(self)
        assert self._cluster is not None
        return self._cluster

    def get_site(self) -> "Site":
        return self.get_cluster().get_site()

    def get_domain(self) -> "Domain":
        return self.get_cluster().get_domain()

    # -- lifecycle --------------------------------------------------------------

    def _release(self) -> None:
        self._check_active()
        self._freed = True
        self._pool.release(self._host)

    def free_node(self) -> None:
        """Release this node from the application (paper: ``freeNode``)."""
        if self._cluster is not None:
            self._cluster.free_node(self)
        else:
            self._release()

    free = free_node

    # Paper-style aliases.
    getCluster = get_cluster
    getSite = get_site
    getDomain = get_domain
    freeNode = free_node
