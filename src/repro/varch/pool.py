"""Resource pools: where virtual-architecture components get their nodes.

The pool answers "give me k hosts satisfying these constraints" using
*monitored* system parameters — the same data the Network Agent System
collects.  :class:`MonitoredPool` samples the simulated world directly
(used standalone and by the JRS, whose JS-Shell owns which hosts are
registered).

Allocation policy: when the requester gives no constraints the paper says
JRS picks "a node with low system load and reasonable resources
available".  The default ``available-compute`` policy ranks hosts by
``peak_mflops × idle%`` — idle fast machines first — which reduces to
lowest-load among equals and matches how an informed administrator would
hand out a heterogeneous pool.  ``min-load`` (pure lowest CPU load) and
``random`` (seeded) exist for ablations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from repro.constraints import JSConstraints
from repro.errors import AllocationError
from repro.simnet.world import SimWorld
from repro.sysmon import Snapshot, SysParam, sample_all


class ResourcePool(Protocol):
    def acquire(
        self,
        count: int = 1,
        constraints: JSConstraints | None = None,
        exclude: Iterable[str] = (),
        name: str | None = None,
    ) -> list[str]: ...

    def release(self, host: str) -> None: ...

    def snapshot(self, host: str) -> Snapshot: ...

    def alive_hosts(self) -> list[str]: ...


def _available_compute(snap: Snapshot) -> float:
    return snap[SysParam.PEAK_MFLOPS] * snap[SysParam.IDLE] / 100.0


class MonitoredPool:
    """Pool over a :class:`SimWorld`, sampling ground truth on demand.

    ``hosts`` restricts the pool to a subset of the world's machines
    (the JS-Shell's registered-node set); default is all of them.
    """

    POLICIES = ("available-compute", "min-load", "random")

    def __init__(
        self,
        world: SimWorld,
        hosts: Iterable[str] | None = None,
        policy: str = "available-compute",
        default_constraints: JSConstraints | None = None,
        snapshot_fn: Callable[[str], Snapshot] | None = None,
        site_fn: Callable[[str], str | None] | None = None,
    ) -> None:
        if policy not in self.POLICIES:
            raise AllocationError(
                f"unknown policy {policy!r}; expected one of {self.POLICIES}"
            )
        self.world = world
        self.policy = policy
        self.default_constraints = default_constraints
        self._hosts = set(hosts) if hosts is not None else set(world.machines)
        unknown = self._hosts - set(world.machines)
        if unknown:
            raise AllocationError(f"unknown hosts {sorted(unknown)}")
        #: allocation refcount per host (hosts may be shared across VAs)
        self.allocations: dict[str, int] = {}
        self._snapshot_fn = snapshot_fn
        #: physical site of a host (for site-confined shaped allocation);
        #: usually wired to ``NetworkAgentSystem.site_of``
        self._site_fn = site_fn
        self._rng = world.rng.stream("pool")

    # -- membership (JS-Shell drives this) --------------------------------

    def add_host(self, host: str) -> None:
        if host not in self.world.machines:
            raise AllocationError(f"unknown host {host!r}")
        self._hosts.add(host)

    def remove_host(self, host: str) -> None:
        self._hosts.discard(host)

    @property
    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    # -- monitoring view ---------------------------------------------------

    def snapshot(self, host: str) -> Snapshot:
        if self._snapshot_fn is not None:
            return self._snapshot_fn(host)
        machine = self.world.machine(host)
        return sample_all(machine, self.world.now(), self.world.topology)

    def alive_hosts(self) -> list[str]:
        return [
            h for h in sorted(self._hosts)
            if not self.world.machine(h).failed
        ]

    # -- allocation ----------------------------------------------------------

    def _rank(self, candidates: list[tuple[str, Snapshot]]) -> list[str]:
        # Hosts already handed out to this application's architectures are
        # expected to be busy soon, so they rank behind unallocated ones
        # regardless of what the (possibly not-yet-updated) monitor says.
        def refs(host: str) -> int:
            return self.allocations.get(host, 0)

        if self.policy == "available-compute":
            return [
                h for h, _ in sorted(
                    candidates,
                    key=lambda item: (
                        refs(item[0]),
                        -_available_compute(item[1]),
                        item[0],
                    ),
                )
            ]
        if self.policy == "min-load":
            return [
                h for h, _ in sorted(
                    candidates,
                    key=lambda item: (
                        refs(item[0]),
                        item[1][SysParam.CPU_LOAD],
                        item[0],
                    ),
                )
            ]
        names = [h for h, _ in candidates]
        self._rng.shuffle(names)
        return names

    def candidates(
        self,
        constraints: JSConstraints | None = None,
        exclude: Iterable[str] = (),
    ) -> list[str]:
        """Alive, non-excluded hosts satisfying constraints, best first."""
        merged = (
            constraints.merged_with(self.default_constraints)
            if constraints is not None
            else (self.default_constraints or JSConstraints())
        )
        excluded = set(exclude)
        scored: list[tuple[str, Snapshot]] = []
        for host in self.alive_hosts():
            if host in excluded:
                continue
            snap = self.snapshot(host)
            if merged.holds(snap):
                scored.append((host, snap))
        return self._rank(scored)

    def acquire(
        self,
        count: int = 1,
        constraints: JSConstraints | None = None,
        exclude: Iterable[str] = (),
        name: str | None = None,
    ) -> list[str]:
        if name is not None:
            if name not in self._hosts:
                raise AllocationError(
                    f"node {name!r} is not registered with this pool"
                )
            if self.world.machine(name).failed:
                raise AllocationError(f"node {name!r} has failed")
            if constraints is not None and not constraints.holds(
                self.snapshot(name)
            ):
                raise AllocationError(
                    f"node {name!r} does not satisfy the constraints"
                )
            self.allocations[name] = self.allocations.get(name, 0) + 1
            return [name]
        ranked = self.candidates(constraints, exclude)
        if len(ranked) < count:
            raise AllocationError(
                f"need {count} node(s) but only {len(ranked)} satisfy the "
                f"constraints (pool={len(self._hosts)} hosts)"
            )
        chosen = ranked[:count]
        for host in chosen:
            self.allocations[host] = self.allocations.get(host, 0) + 1
        return chosen

    def release(self, host: str) -> None:
        refs = self.allocations.get(host, 0)
        if refs <= 0:
            raise AllocationError(f"release of unallocated host {host!r}")
        if refs == 1:
            del self.allocations[host]
        else:
            self.allocations[host] = refs - 1

    # -- locality-aware bulk allocation -------------------------------------
    #
    # A virtual cluster "usually corresponds to a local PC/workstation
    # cluster" (Section 3): when several nodes are requested together we
    # try to confine each requested cluster to one physical network
    # segment, and each requested site to one physical site, falling back
    # to best-ranked mixed hosts when no single segment/site can satisfy
    # the request.

    def _segment_name(self, host: str) -> str:
        return self.world.topology.segment_of(host).name

    def _pick_confined(
        self,
        ranked: list[str],
        count: int,
        taken: set[str],
        group_of: Callable[[str], str | None],
    ) -> list[str]:
        """Best ``count`` hosts confined to one group, else best mixed."""
        free = [h for h in ranked if h not in taken]
        if len(free) < count:
            raise AllocationError(
                f"need {count} node(s) but only {len(free)} remain"
            )
        rank_index = {h: i for i, h in enumerate(ranked)}
        by_group: dict[str, list[str]] = {}
        for host in free:
            group = group_of(host)
            if group is not None:
                by_group.setdefault(group, []).append(host)
        best: tuple[float, list[str]] | None = None
        for hosts in by_group.values():
            if len(hosts) < count:
                continue
            chosen = hosts[:count]
            score = sum(rank_index[h] for h in chosen)
            if best is None or score < best[0]:
                best = (score, chosen)
        return best[1] if best is not None else free[:count]

    def acquire_grouped(
        self,
        counts: list[int],
        constraints: JSConstraints | None = None,
        exclude: Iterable[str] = (),
    ) -> list[list[str]]:
        """Acquire ``len(counts)`` disjoint groups, each preferring one
        physical network segment."""
        ranked = self.candidates(constraints, exclude)
        if sum(counts) > len(ranked):
            raise AllocationError(
                f"need {sum(counts)} node(s) but only {len(ranked)} "
                "satisfy the constraints"
            )
        taken: set[str] = set()
        groups: list[list[str]] = []
        for count in counts:
            chosen = self._pick_confined(
                ranked, count, taken, self._segment_name
            )
            taken.update(chosen)
            groups.append(chosen)
        for host in taken:
            self.allocations[host] = self.allocations.get(host, 0) + 1
        return groups

    def acquire_shaped(
        self,
        shape: list[list[int]],
        constraints: JSConstraints | None = None,
    ) -> list[list[list[str]]]:
        """Acquire a domain shape ``[[c1, c2], [c3], ...]``: each outer
        entry (a requested virtual site) prefers one physical site; each
        inner count (a virtual cluster) prefers one segment."""
        ranked = self.candidates(constraints)
        total = sum(sum(site) for site in shape)
        if total > len(ranked):
            raise AllocationError(
                f"need {total} node(s) but only {len(ranked)} satisfy "
                "the constraints"
            )
        taken: set[str] = set()
        sites: list[list[list[str]]] = []
        for counts in shape:
            site_need = sum(counts)
            site_fn = self._site_fn if self._site_fn is not None else (
                self._segment_name
            )
            site_hosts = self._pick_confined(
                ranked, site_need, taken, site_fn
            )
            # Within the chosen hosts, confine each cluster to a segment.
            rank_index = {h: i for i, h in enumerate(ranked)}
            pool_hosts = sorted(site_hosts, key=rank_index.__getitem__)
            site_taken: set[str] = set()
            clusters: list[list[str]] = []
            for count in counts:
                chosen = self._pick_confined(
                    pool_hosts, count, site_taken, self._segment_name
                )
                site_taken.update(chosen)
                clusters.append(chosen)
            taken.update(site_taken)
            sites.append(clusters)
        for host in taken:
            self.allocations[host] = self.allocations.get(host, 0) + 1
        return sites
