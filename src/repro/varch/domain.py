"""``Domain``: the top of a virtual architecture (paper Section 4.2).

``Domain([[1, 3, 5], [6, 4]])`` allocates two sites — the first with
clusters of 1, 3 and 5 nodes, the second with clusters of 6 and 4 —
matching the paper's multidimensional-array constructor.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import context
from repro.constraints import JSConstraints
from repro.errors import ArchitectureError
from repro.varch.cluster import Cluster
from repro.varch.component import VAComponent
from repro.varch.node import Node
from repro.varch.site import Site


class Domain(VAComponent):
    _kind = "domain"

    def __init__(
        self,
        nodes_per_site: Sequence[Sequence[int]] | None = None,
        constraints: JSConstraints | None = None,
        pool: Any = None,
    ) -> None:
        super().__init__(pool if pool is not None else context.require_pool())
        self._sites: list[Site] = []
        if nodes_per_site is not None:
            shape = [list(counts) for counts in nodes_per_site]
            if not shape or any(not counts for counts in shape):
                raise ArchitectureError(f"bad domain shape {shape}")
            if any(count < 1 for counts in shape for count in counts):
                raise ArchitectureError("each cluster needs >= 1 node")
            # Shaped acquire: virtual sites prefer one physical site,
            # virtual clusters one physical segment.
            allocated = self._pool.acquire_shaped(
                shape, constraints=constraints
            )
            for site_groups in allocated:
                site = Site(pool=self._pool)
                for group in site_groups:
                    cluster = Cluster(pool=self._pool)
                    for host in group:
                        node = Node._wrap(host, self._pool)
                        node._cluster = cluster
                        cluster._nodes.append(node)
                    cluster._site = site
                    site._clusters.append(cluster)
                site._domain = self
                self._sites.append(site)

    @classmethod
    def _implicit_for(cls, site: Site) -> "Domain":
        domain = cls(pool=site._pool)
        domain._sites.append(site)
        site._domain = domain
        return domain

    # -- structure ---------------------------------------------------------------

    def sites(self) -> list[Site]:
        self._check_active()
        return list(self._sites)

    def nodes(self) -> list[Node]:
        self._check_active()
        return [n for s in self._sites for n in s.nodes()]

    def nr_sites(self) -> int:
        self._check_active()
        return len(self._sites)

    def nr_clusters(self) -> int:
        self._check_active()
        return sum(s.nr_clusters() for s in self._sites)

    def nr_nodes(self) -> int:
        self._check_active()
        return sum(s.nr_nodes() for s in self._sites)

    def get_site(self, index: int) -> Site:
        self._check_active()
        if not 0 <= index < len(self._sites):
            raise ArchitectureError(
                f"site index {index} out of range "
                f"[0, {len(self._sites) - 1}]"
            )
        return self._sites[index]

    def get_node(self, site_id: int, cluster_id: int, node_id: int) -> Node:
        return self.get_site(site_id).get_node(cluster_id, node_id)

    def add_site(self, site: Site) -> None:
        self._check_active()
        site._check_active()
        if site._domain is not None:
            raise ArchitectureError("site already belongs to a domain")
        mine = {n.hostname for n in self.nodes()}
        theirs = {n.hostname for n in site.nodes()}
        overlap = mine & theirs
        if overlap:
            raise ArchitectureError(
                f"hosts {sorted(overlap)} already present in this domain"
            )
        site._domain = self
        self._sites.append(site)

    # -- lifecycle ---------------------------------------------------------------

    def free_node(self, site_id: int, cluster_id: int, node_id: int) -> None:
        self.get_site(site_id).free_node(cluster_id, node_id)

    def free_cluster(self, site_id: int, cluster_id: int) -> None:
        self.get_site(site_id).free_cluster(cluster_id)

    def free_site(self, which: Site | int) -> None:
        self._check_active()
        site = self.get_site(which) if isinstance(which, int) else which
        if site not in self._sites:
            raise ArchitectureError("site is not part of this domain")
        site.free_site()

    def _forget_site(self, site: Site) -> None:
        if site in self._sites:
            self._sites.remove(site)

    def free_domain(self) -> None:
        self._check_active()
        for site in list(self._sites):
            site.free_site()
        self._freed = True

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"{len(self._sites)} sites"
        return f"<Domain {state}>"

    # Paper-style aliases.
    nrSites = nr_sites
    nrClusters = nr_clusters
    nrNodes = nr_nodes
    getSite = get_site
    getNode = get_node
    addSite = add_site
    freeNode = free_node
    freeCluster = free_cluster
    freeSite = free_site
    freeDomain = free_domain
