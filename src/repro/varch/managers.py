"""Manager assignment rules for virtual-architecture components.

Paper Section 5.1: every component is controlled by a manager node which
is itself a node of the component; *only a cluster manager can be a site
manager and only a site manager can be a domain manager*.  Each manager
has a predefined backup (and a second backup activated when the first
takes over).  These are pure functions — the Network Agent System applies
them and handles the takeover protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArchitectureError


@dataclass
class ManagerAssignment:
    """Managers for one cluster: ``manager`` plus ordered backups."""

    manager: str
    backups: list[str] = field(default_factory=list)

    def successor(self) -> "ManagerAssignment":
        """Assignment after the manager fails: first backup takes over and
        the next backup (if any) is activated."""
        if not self.backups:
            raise ArchitectureError(
                f"manager {self.manager} failed and no backup exists"
            )
        return ManagerAssignment(
            manager=self.backups[0], backups=self.backups[1:]
        )

    def without(self, host: str) -> "ManagerAssignment":
        """Assignment after a *non-manager* member failed."""
        if host == self.manager:
            return self.successor()
        return ManagerAssignment(
            manager=self.manager,
            backups=[b for b in self.backups if b != host],
        )


def assign_cluster_managers(
    hosts: list[str], n_backups: int = 2
) -> ManagerAssignment:
    """First host manages; the next ``n_backups`` are (ordered) backups."""
    if not hosts:
        raise ArchitectureError("cannot assign managers to an empty cluster")
    return ManagerAssignment(
        manager=hosts[0], backups=list(hosts[1:1 + n_backups])
    )


@dataclass
class HierarchyManagers:
    """Complete manager map for a physical layout.

    ``clusters`` maps cluster name -> assignment; the site manager is the
    manager of the first cluster, the domain manager the manager of the
    first site — satisfying "only a cluster manager can be a site manager"
    by construction.
    """

    clusters: dict[str, ManagerAssignment]
    site_managers: dict[str, str]
    domain_manager: str

    def is_manager(self, host: str) -> bool:
        return (
            host == self.domain_manager
            or host in self.site_managers.values()
            or any(a.manager == host for a in self.clusters.values())
        )


def assign_hierarchy(
    layout: dict[str, dict[str, list[str]]],
) -> HierarchyManagers:
    """Assign managers for ``{site: {cluster: [hosts]}}``.

    Raises if any cluster is empty; validates the manager-nesting rule.
    """
    clusters: dict[str, ManagerAssignment] = {}
    site_managers: dict[str, str] = {}
    domain_manager: str | None = None
    for site_name, site_clusters in layout.items():
        if not site_clusters:
            raise ArchitectureError(f"site {site_name!r} has no clusters")
        first_cluster_mgr: str | None = None
        for cluster_name, hosts in site_clusters.items():
            assignment = assign_cluster_managers(hosts)
            clusters[cluster_name] = assignment
            if first_cluster_mgr is None:
                first_cluster_mgr = assignment.manager
        assert first_cluster_mgr is not None
        site_managers[site_name] = first_cluster_mgr
        if domain_manager is None:
            domain_manager = first_cluster_mgr
    if domain_manager is None:
        raise ArchitectureError("layout has no sites")
    return HierarchyManagers(
        clusters=clusters,
        site_managers=site_managers,
        domain_manager=domain_manager,
    )
