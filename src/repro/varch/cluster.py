"""``Cluster``: an ordered collection of nodes (paper Section 4.2).

Supports both allocation styles from the paper: ``Cluster(5, constr)``
asks the pool for five fresh nodes; ``Cluster()`` + ``add_node`` builds a
cluster from individually allocated nodes.  Node indices run from 0 to
``nr_nodes() - 1``; freeing a node renumbers the ones after it, exactly
like the paper's mutable clusters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro import context
from repro.constraints import JSConstraints
from repro.errors import ArchitectureError
from repro.varch.component import VAComponent
from repro.varch.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.varch.domain import Domain
    from repro.varch.site import Site


class Cluster(VAComponent):
    _kind = "cluster"

    def __init__(
        self,
        nr_nodes: int | None = None,
        constraints: JSConstraints | None = None,
        pool: Any = None,
    ) -> None:
        super().__init__(pool if pool is not None else context.require_pool())
        self._nodes: list[Node] = []
        self._site: "Site | None" = None
        self._implicit = False
        if nr_nodes is not None:
            if nr_nodes < 1:
                raise ArchitectureError("a cluster needs at least 1 node")
            # A cluster prefers one physical segment (Section 3: it
            # "usually corresponds to a local PC/workstation cluster").
            (hosts,) = self._pool.acquire_grouped(
                [nr_nodes], constraints=constraints
            )
            for host in hosts:
                node = Node._wrap(host, self._pool)
                node._cluster = self
                self._nodes.append(node)

    @classmethod
    def _implicit_for(cls, node: Node) -> "Cluster":
        cluster = cls(pool=node._pool)
        cluster._implicit = True
        cluster._nodes.append(node)
        node._cluster = cluster
        return cluster

    # -- structure ---------------------------------------------------------------

    def nodes(self) -> list[Node]:
        self._check_active()
        return list(self._nodes)

    def nr_nodes(self) -> int:
        self._check_active()
        return len(self._nodes)

    def get_node(self, index: int) -> Node:
        self._check_active()
        if not 0 <= index < len(self._nodes):
            raise ArchitectureError(
                f"node index {index} out of range "
                f"[0, {len(self._nodes) - 1}]"
            )
        return self._nodes[index]

    def add_node(self, node: Node) -> None:
        """Add an individually allocated node.  A node belongs to exactly
        one cluster (the unique-(cluster,site,domain) invariant)."""
        self._check_active()
        node._check_active()
        if node._cluster is not None and not (
            node._cluster._implicit and node._cluster.nr_nodes() == 1
        ):
            raise ArchitectureError(
                f"node {node.hostname} already belongs to a cluster"
            )
        if node._cluster is not None:
            # Dissolve the implicit singleton cluster.
            node._cluster._freed = True
        if any(n.hostname == node.hostname for n in self._nodes):
            raise ArchitectureError(
                f"cluster already contains host {node.hostname}"
            )
        node._cluster = self
        self._nodes.append(node)

    # -- hierarchy ---------------------------------------------------------------

    def get_site(self) -> "Site":
        self._check_active()
        if self._site is None:
            from repro.varch.site import Site

            Site._implicit_for(self)
        assert self._site is not None
        return self._site

    def get_domain(self) -> "Domain":
        return self.get_site().get_domain()

    # -- lifecycle ---------------------------------------------------------------

    def free_node(self, which: Node | int) -> None:
        """Release one node (by object or index) from the cluster."""
        self._check_active()
        node = self.get_node(which) if isinstance(which, int) else which
        if node not in self._nodes:
            raise ArchitectureError(
                f"node {node.hostname} is not in this cluster"
            )
        self._nodes.remove(node)
        node._cluster = None
        node._release()

    def free_cluster(self) -> None:
        """Release the whole cluster and all of its nodes."""
        self._check_active()
        for node in list(self._nodes):
            self._nodes.remove(node)
            node._cluster = None
            node._release()
        self._freed = True
        if self._site is not None:
            self._site._forget_cluster(self)

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"{len(self._nodes)} nodes"
        return f"<Cluster {state}>"

    # Paper-style aliases.
    nrNodes = nr_nodes
    getNode = get_node
    addNode = add_node
    getSite = get_site
    getDomain = get_domain
    freeNode = free_node
    freeCluster = free_cluster
