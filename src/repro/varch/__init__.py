"""Dynamic virtual distributed architectures (paper Sections 3 and 4.2)."""

from repro.varch.cluster import Cluster
from repro.varch.component import VAComponent
from repro.varch.domain import Domain
from repro.varch.managers import (
    HierarchyManagers,
    ManagerAssignment,
    assign_cluster_managers,
    assign_hierarchy,
)
from repro.varch.node import Node
from repro.varch.pool import MonitoredPool, ResourcePool
from repro.varch.site import Site

__all__ = [
    "Cluster",
    "VAComponent",
    "Domain",
    "HierarchyManagers",
    "ManagerAssignment",
    "assign_cluster_managers",
    "assign_hierarchy",
    "Node",
    "MonitoredPool",
    "ResourcePool",
    "Site",
]
