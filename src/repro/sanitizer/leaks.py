"""Shutdown-time leak checks: unfinished futures, unawaited handles,
stranded channel getters.

Tracking is registered at creation/wait time with the site that created
the object (captured by ``core.caller_site``), so every leak report
points at application code, not kernel internals.  Registries hold weak
references to the kernels so a registry shared across kernels (the
ambient sanitizer is process-global) never keeps a dead kernel alive;
entries for collected kernels are pruned on the next ``collect``.

The tracked future/handle itself is kept alive by its entry: entries are
keyed by ``id()``, and a strong reference pins the object so CPython
cannot recycle the address for a later future — an aliased id would
silently overwrite an earlier leak's entry.  Entries are dropped on
completion/await, so only genuine leaks are pinned, and only until the
owning kernel's shutdown sweep.

All methods run under the sanitizer's internal mutex.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable


class LeakRegistry:
    def __init__(self) -> None:
        #: id(future) -> (future, kernel weakref, creation site)
        self._futures: dict[
            int, tuple[Any, weakref.ref, tuple[str, int]]
        ] = {}
        #: id(handle) -> (handle, kernel weakref, creation site)
        self._handles: dict[
            int, tuple[Any, weakref.ref, tuple[str, int]]
        ] = {}
        #: ids of tracked handles that were polled (is_ready) but never
        #: awaited — a poll is not consumption, so the handle stays
        #: tracked; the leak report just names the sharper failure mode
        self._polled: set[int] = set()
        #: waiting thread id -> (channel label, kernel weakref, wait site)
        self._chan_waits: dict[
            int, tuple[str, weakref.ref, tuple[str, int]]
        ] = {}

    # -- registration ---------------------------------------------------------

    def track_future(self, fut: Any, kernel: Any,
                     site: tuple[str, int]) -> None:
        self._futures[id(fut)] = (fut, weakref.ref(kernel), site)

    def future_completed(self, fut: Any) -> None:
        self._futures.pop(id(fut), None)

    def track_handle(self, handle: Any, kernel: Any,
                     site: tuple[str, int]) -> None:
        self._handles[id(handle)] = (handle, weakref.ref(kernel), site)

    def handle_awaited(self, handle: Any) -> None:
        self._handles.pop(id(handle), None)
        self._polled.discard(id(handle))

    def handle_polled(self, handle: Any) -> None:
        if id(handle) in self._handles:
            self._polled.add(id(handle))

    def chan_wait(self, tid: int, chan: Any, kernel: Any,
                  site: tuple[str, int]) -> None:
        self._chan_waits[tid] = (
            type(chan).__name__, weakref.ref(kernel), site,
        )

    def chan_wait_done(self, tid: int) -> None:
        self._chan_waits.pop(tid, None)

    # -- shutdown sweep -------------------------------------------------------

    def collect(
        self, kernel: Any, name_of: Callable[[int], str]
    ) -> list[tuple[str, str, tuple[str, int], str]]:
        """Leaks belonging to ``kernel``: (rule, message, site, symbol).

        Entries for this kernel (and for kernels already collected) are
        removed so a second shutdown does not re-report them.
        """
        leaks: list[tuple[str, str, tuple[str, int], str]] = []

        for key, (_fut, kernel_ref, site) in list(self._futures.items()):
            owner = kernel_ref()
            if owner is None or owner is kernel:
                del self._futures[key]
                if owner is kernel:
                    leaks.append((
                        "san-leak-future",
                        "future created here was never completed before "
                        "kernel shutdown (set_result/set_exception never "
                        "called)",
                        site,
                        "future",
                    ))

        for key, (_handle, kernel_ref, site) in list(self._handles.items()):
            owner = kernel_ref()
            if owner is None or owner is kernel:
                del self._handles[key]
                polled = key in self._polled
                self._polled.discard(key)
                if owner is kernel:
                    message = (
                        "ResultHandle created here was polled with "
                        "is_ready() but never awaited — the remote "
                        "result was computed and dropped"
                        if polled else
                        "ResultHandle created here was never awaited "
                        "(get_result never called) — the remote result "
                        "was computed and dropped"
                    )
                    leaks.append((
                        "san-leak-handle",
                        message,
                        site,
                        "ResultHandle",
                    ))

        for tid, (label, kernel_ref, site) in list(self._chan_waits.items()):
            owner = kernel_ref()
            if owner is None or owner is kernel:
                del self._chan_waits[tid]
                if owner is kernel:
                    leaks.append((
                        "san-leak-channel",
                        f"{name_of(tid)} was still blocked in "
                        f"{label}.get() at kernel shutdown (stranded "
                        "getter: no put will ever arrive)",
                        site,
                        label,
                    ))
        return leaks
