"""symsan: runtime concurrency sanitizer for the PySymphony kernels.

See :mod:`repro.sanitizer.core` for the architecture overview.
"""

from repro.sanitizer.core import (
    NULL_SANITIZER,
    SAN_RULES,
    NullSanitizer,
    Sanitizer,
    caller_site,
    current_sanitizer,
    sanitizing,
    set_sanitizer,
)
from repro.sanitizer.waitgraph import TrackedLock

__all__ = [
    "NULL_SANITIZER",
    "SAN_RULES",
    "NullSanitizer",
    "Sanitizer",
    "TrackedLock",
    "caller_site",
    "current_sanitizer",
    "sanitizing",
    "set_sanitizer",
]
