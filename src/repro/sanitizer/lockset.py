"""Eraser-style lockset race detection with vector-clock happens-before.

An access races with a prior access when all of the following hold:

* different threads, at least one side is a write,
* the two locksets are disjoint (no common lock held), and
* no happens-before path connects them (the prior access's epoch is not
  covered by the current thread's vector clock).

Pure Eraser reports lock-free handoff patterns ("initialize, then
publish through a future") as races; the happens-before refinement is
what lets symsan instrument the kernels' real synchronization idioms
without drowning in false positives.  All methods here are called with
the sanitizer's internal mutex held, so the detector itself keeps no
locks.
"""

from __future__ import annotations

from dataclasses import dataclass


class VectorClocks:
    """Per-thread vector clocks, keyed by ``threading.get_ident()``.

    Both real-kernel OS threads and virtual-kernel processes (each backed
    by its own thread) get a clock; ``send``/``recv`` transfer clocks
    through sync objects (futures, channels, processes, call events).
    """

    def __init__(self) -> None:
        self._clocks: dict[int, dict[int, int]] = {}

    def _clock(self, tid: int) -> dict[int, int]:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = {tid: 1}
            self._clocks[tid] = clock
        return clock

    def epoch(self, tid: int) -> int:
        """The thread's own component — stamps accesses."""
        return self._clock(tid)[tid]

    def send(self, tid: int, target: dict[int, int]) -> None:
        """Merge ``tid``'s clock into a sync object's clock, then tick so
        later events on ``tid`` are not ordered before the release."""
        clock = self._clock(tid)
        for other, stamp in clock.items():
            if target.get(other, 0) < stamp:
                target[other] = stamp
        clock[tid] += 1

    def recv(self, tid: int, source: dict[int, int]) -> None:
        """Merge a sync object's clock into ``tid``'s clock (acquire)."""
        clock = self._clock(tid)
        for other, stamp in source.items():
            if clock.get(other, 0) < stamp:
                clock[other] = stamp

    def ordered(self, tid: int, epoch: int, observer: int) -> bool:
        """True when the event stamped (tid, epoch) happens-before the
        current point of ``observer``."""
        if tid == observer:
            return True
        return self._clocks.get(observer, {}).get(tid, 0) >= epoch


@dataclass
class Access:
    """One recorded access to a (owner, field) cell."""

    tid: int
    epoch: int
    write: bool
    locks: frozenset[str]
    site: tuple[str, int]


class LocksetDetector:
    """Tracks the last read and last write per thread for every
    instrumented cell and flags the first race seen on each cell."""

    def __init__(self) -> None:
        self.clocks = VectorClocks()
        #: (owner, field) -> {(tid, is_write): last such access}; owner is
        #: any hashable (the sanitizer passes (scope_id, name) tuples)
        self._history: dict[tuple, dict[tuple[int, bool], Access]] = {}
        self._reported: set[tuple] = set()

    def access(
        self,
        owner,
        field: str,
        tid: int,
        locks: frozenset[str],
        write: bool,
        site: tuple[str, int],
    ) -> tuple[Access, Access] | None:
        """Record an access; return (previous, current) on a fresh race."""
        key = (owner, field)
        current = Access(tid, self.clocks.epoch(tid), write, locks, site)
        history = self._history.setdefault(key, {})
        race: tuple[Access, Access] | None = None
        if key not in self._reported:
            for previous in history.values():
                if previous.tid == tid:
                    continue
                if not (previous.write or write):
                    continue
                if previous.locks & locks:
                    continue
                if self.clocks.ordered(previous.tid, previous.epoch, tid):
                    continue
                self._reported.add(key)
                race = (previous, current)
                break
        history[(tid, write)] = current
        return race
