"""Wait-for-graph deadlock detection on blocking lock acquisition.

:class:`TrackedLock` is what ``Sanitizer.make_lock`` hands the kernels in
place of a plain ``threading.Lock``: same interface, but every contended
blocking acquire first registers a *wait edge* (this thread → that lock)
and walks lock-owner / thread-waits-for edges.  If the walk leads back to
the acquiring thread, the edge would close a cycle — a real deadlock, in
flight — and the sanitizer raises :class:`repro.errors.SanDeadlockError`
in the acquiring thread, which unwinds and releases its locks instead of
hanging the process.

The graph also doubles as the held-lock bookkeeping the lockset race
detector reads (``held_names``) and the wait-for dump the virtual kernel
prints on all-blocked hangs.  All graph methods run under the
sanitizer's internal mutex; :class:`TrackedLock` itself only calls back
into the sanitizer, never touches the graph directly.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sanitizer.core import Sanitizer


class TrackedLock:
    """Drop-in ``threading.Lock`` replacement reporting to a sanitizer."""

    def __init__(self, sanitizer: "Sanitizer", name: str) -> None:
        self._sanitizer = sanitizer
        self.name = name
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._inner.acquire(False):
            self._sanitizer._lock_acquired(self)
            return True
        if not blocking:
            return False
        # Contended: raises SanDeadlockError if this wait closes a cycle.
        self._sanitizer._lock_wait(self)
        try:
            acquired = self._inner.acquire(True, timeout)
        finally:
            self._sanitizer._lock_wait_done(self)
        if acquired:
            self._sanitizer._lock_acquired(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._lock_released(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<TrackedLock {self.name!r} {state}>"


class WaitForGraph:
    """Ownership and wait edges between threads and tracked locks."""

    def __init__(self) -> None:
        #: lock -> thread id currently owning it
        self.owner: dict[TrackedLock, int] = {}
        #: thread id -> locks it holds, in acquisition order
        self.held: dict[int, list[TrackedLock]] = {}
        #: thread id -> the single lock it is blocked acquiring
        self.waiting: dict[int, TrackedLock] = {}

    def wait(
        self, tid: int, lock: TrackedLock
    ) -> list[tuple[int, TrackedLock]] | None:
        """Register ``tid`` as blocked on ``lock``.

        Returns the cycle as owner-hops [(owner_tid, owned_lock), ...]
        if the new edge closes one (the last owner is ``tid`` itself),
        else None after recording the wait edge.
        """
        path: list[tuple[int, TrackedLock]] = []
        cursor: TrackedLock | None = lock
        while cursor is not None:
            owner = self.owner.get(cursor)
            if owner is None:
                break
            path.append((owner, cursor))
            if owner == tid:
                return path
            cursor = self.waiting.get(owner)
        self.waiting[tid] = lock
        return None

    def wait_done(self, tid: int) -> None:
        self.waiting.pop(tid, None)

    def acquired(self, tid: int, lock: TrackedLock) -> None:
        self.owner[lock] = tid
        self.held.setdefault(tid, []).append(lock)

    def released(self, tid: int, lock: TrackedLock) -> None:
        self.owner.pop(lock, None)
        held = self.held.get(tid)
        if held is not None and lock in held:
            held.remove(lock)

    def held_names(self, tid: int) -> frozenset[str]:
        return frozenset(lock.name for lock in self.held.get(tid, ()))

    def dump(self, name_of) -> str:
        """Human-readable wait-for edges for hang reports."""
        edges = []
        for tid, lock in sorted(self.waiting.items()):
            owner = self.owner.get(lock)
            holder = f" (held by {name_of(owner)})" if owner is not None \
                else ""
            edges.append(f"{name_of(tid)} -> '{lock.name}'{holder}")
        return "; ".join(edges) if edges else "<no lock waits>"
