"""symsan: the runtime concurrency sanitizer.

The sanitizer is the dynamic counterpart of symlint: the same null-object
pattern as :mod:`repro.obs.tracer` (hook points throughout the kernels and
agents test ``sanitizer.enabled`` and pay nothing when it is off), but
instead of recording events it checks concurrency invariants while the
program runs:

* **Lockset race detection** (Eraser-style, refined with vector-clock
  happens-before edges) over the shared tables the runtime's correctness
  rests on: ObjectHolder object tables, AppOA/PubOA registries, NAS
  manager state, and the kernel's own bookkeeping.  Kernel primitives —
  spawn/join, Future complete/wait, Channel put/get, Semaphore
  release/acquire and the virtual kernel's call events — establish
  happens-before, so handoff patterns ("create, then publish through a
  future") do not false-positive.
* **Wait-for-graph deadlock detection** on blocking lock acquisition
  (wall-clock kernel) and all-blocked detection with a wait-for dump when
  the virtual kernel's event heap runs dry.
* **Leak checks** at kernel shutdown (opt-in via ``leaks=True``):
  futures never completed, ResultHandles never awaited, channels with
  stranded getters — each reported with its creation/wait site.

Findings share symlint's :class:`repro.analysis.base.Finding` /
:class:`repro.analysis.runner.Report` model, so ``--format json`` output
from ``python -m repro lint`` and ``python -m repro san`` diff the same
way.

Installation is ambient, exactly like the tracer: ``set_sanitizer()`` /
the ``sanitizing()`` context manager install a current sanitizer which
kernels adopt at construction time.
"""

from __future__ import annotations

import os
import sys
import threading
import weakref
from contextlib import contextmanager
from typing import Any, Iterator

from repro.analysis.base import Finding, Severity
from repro.sanitizer.leaks import LeakRegistry
from repro.sanitizer.lockset import LocksetDetector
from repro.sanitizer.waitgraph import TrackedLock, WaitForGraph

#: every rule symsan can emit, with its default severity (the dynamic
#: counterpart of ``repro.analysis.runner.known_rules``).
SAN_RULES: dict[str, Severity] = {
    "san-race": Severity.ERROR,
    "san-lock-deadlock": Severity.ERROR,
    "san-all-blocked": Severity.ERROR,
    "san-leak-future": Severity.WARNING,
    "san-leak-handle": Severity.WARNING,
    "san-leak-channel": Severity.WARNING,
    "san-migrate-pending": Severity.WARNING,
}

_OWN_DIRS = (
    os.path.join("repro", "sanitizer"),
    os.path.join("repro", "kernel"),
)


def caller_site(extra_skip: tuple[str, ...] = ()) -> tuple[str, int]:
    """(path, line) of the nearest stack frame outside the sanitizer and
    kernel internals — the product/application code that triggered a hook."""
    skip = _OWN_DIRS + extra_skip
    frame = sys._getframe(1)
    last = ("<runtime>", 0)
    while frame is not None:
        path = frame.f_code.co_filename
        last = (path, frame.f_lineno)
        if not any(part in path for part in skip):
            return last
        frame = frame.f_back
    return last


class NullSanitizer:
    """The do-nothing sanitizer every kernel holds by default.

    Every hook is a no-op and ``make_lock`` returns a plain
    ``threading.Lock``, so the instrumented runtime behaves (and costs)
    exactly as before when sanitizing is off.
    """

    enabled = False
    leaks = False

    def __init__(self) -> None:
        #: same surface as :class:`Sanitizer` so subscribers (e.g. the
        #: flight recorder) can register unconditionally; never fired.
        self.failure_hooks: list = []

    # -- lock factory --------------------------------------------------------

    def make_lock(self, name: str) -> Any:
        return threading.Lock()

    # -- shared-state access hooks ------------------------------------------

    def access(self, owner: str, field: str, write: bool = True,
               scope: Any = None) -> None:
        pass

    # -- happens-before edges ------------------------------------------------

    def hb_send(self, key: Any) -> None:
        pass

    def hb_recv(self, key: Any) -> None:
        pass

    def on_call_push(self, token: int) -> None:
        pass

    def on_call_run(self, token: int) -> None:
        pass

    def register_thread(self, name: str) -> None:
        pass

    # -- leak tracking -------------------------------------------------------

    def track_future(self, fut: Any, kernel: Any) -> None:
        pass

    def future_completed(self, fut: Any) -> None:
        pass

    def track_handle(self, handle: Any, kernel: Any) -> None:
        pass

    def handle_awaited(self, handle: Any) -> None:
        pass

    def handle_polled(self, handle: Any) -> None:
        pass

    def chan_wait(self, chan: Any, kernel: Any) -> None:
        pass

    def chan_wait_done(self, chan: Any) -> None:
        pass

    # -- runtime protocol hazards -------------------------------------------

    def migrate_with_pending(self, owner: str, obj_id: str,
                             pending: int) -> None:
        pass

    # -- detectors' report sinks --------------------------------------------

    def note_all_blocked(self, kernel: Any, dump: str,
                         site: tuple[str, int] | None = None) -> None:
        pass

    def check_leaks(self, kernel: Any) -> None:
        pass


NULL_SANITIZER = NullSanitizer()


class Sanitizer(NullSanitizer):
    """Records concurrency findings while the kernels run.

    Thread-safe: every hook may fire from arbitrary kernel process
    threads, so all detector state is guarded by one internal mutex
    (``_mu``).  The mutex is only ever acquired *after* any tracked
    runtime lock, never the other way around, so the sanitizer cannot
    introduce deadlocks of its own.
    """

    enabled = True

    def __init__(self, leaks: bool = False, max_findings: int = 200) -> None:
        self.leaks = leaks
        self.max_findings = max_findings
        self._mu = threading.Lock()
        self.findings: list[Finding] = []
        #: callbacks fired (outside ``_mu``) with every Finding as it is
        #: emitted — the flight recorder's sanitizer-side trigger surface
        #: (subscribers filter by ``finding.rule``)
        self.failure_hooks: list = []
        self._lockset = LocksetDetector()
        self._waitgraph = WaitForGraph()
        self._leaks = LeakRegistry()
        #: per-thread names (kernel process names) for readable reports
        self._thread_names: dict[int, str] = {}
        #: sync-object clocks for happens-before transfer; weak keys so
        #: dead futures/channels/processes do not accumulate
        self._sync: "weakref.WeakKeyDictionary[Any, dict[int, int]]" = (
            weakref.WeakKeyDictionary()
        )
        #: virtual-kernel call-event clocks, keyed by heap sequence number
        #: (popped when the event runs, so this stays small)
        self._sync_tokens: dict[int, dict[int, int]] = {}
        #: scope objects (kernels) -> stable never-reused integer ids, so
        #: cells in different worlds never alias even when object ids and
        #: thread idents are reused (deterministic testbeds, Hypothesis)
        self._scopes: "weakref.WeakKeyDictionary[Any, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._next_scope = 0

    # -- internals -----------------------------------------------------------

    def _emit(self, rule: str, message: str, site: tuple[str, int] | None,
              symbol: str = "") -> None:
        path, line = site if site is not None else ("<runtime>", 0)
        finding = Finding(
            rule=rule,
            severity=SAN_RULES[rule],
            path=path,
            line=line,
            col=0,
            message=message,
            symbol=symbol,
        )
        with self._mu:
            if len(self.findings) < self.max_findings:
                self.findings.append(finding)
        # Hooks can do arbitrary work (the flight recorder snapshots the
        # whole tracer ring); never run them under the sanitizer mutex.
        for hook in tuple(self.failure_hooks):
            hook(finding)

    def _name_of(self, tid: int) -> str:
        return self._thread_names.get(tid) or f"thread-{tid}"

    def register_thread(self, name: str) -> None:
        tid = threading.get_ident()
        with self._mu:
            self._thread_names[tid] = name

    # -- runtime protocol hazards -------------------------------------------

    def migrate_with_pending(self, owner: str, obj_id: str,
                             pending: int) -> None:
        self._emit(
            "san-migrate-pending",
            f"{owner} migrated object {obj_id} with {pending} async "
            "invocation(s) still in flight; the stragglers were handed "
            "off to the tombstone redirect — await the handles (or raise "
            "migrate_drain_timeout) before migrating",
            caller_site(),
            symbol=obj_id,
        )

    # -- lock factory / wait-for graph ---------------------------------------

    def make_lock(self, name: str) -> TrackedLock:
        return TrackedLock(self, name)

    def _lock_wait(self, lock: TrackedLock) -> None:
        """Called before a blocking acquire; raises SanDeadlockError when
        the wait edge would close a cycle in the wait-for graph."""
        tid = threading.get_ident()
        with self._mu:
            cycle = self._waitgraph.wait(tid, lock)
        if cycle is not None:
            message = self._describe_cycle(cycle, lock)
            self._emit("san-lock-deadlock", message, caller_site(),
                       symbol=lock.name)
            from repro.errors import SanDeadlockError

            raise SanDeadlockError(message)

    def _describe_cycle(
        self, cycle: list[tuple[int, TrackedLock]], lock: TrackedLock
    ) -> str:
        # cycle is [(owner_tid, owned_lock), ...]: the requester waits for
        # cycle[0][1], whose owner waits for cycle[1][1], ... and the final
        # owner is the requester itself.
        with self._mu:
            me = self._name_of(threading.get_ident())
            hops = [f"{me} waits for '{cycle[0][1].name}'"]
            for i, (owner, owned) in enumerate(cycle):
                owner_name = self._name_of(owner)
                if i + 1 < len(cycle):
                    hops.append(
                        f"{owner_name} holds '{owned.name}' and waits "
                        f"for '{cycle[i + 1][1].name}'"
                    )
                else:
                    hops.append(f"{owner_name} holds '{owned.name}'")
        return (
            f"lock-acquisition cycle detected on blocking acquire of "
            f"'{lock.name}': " + "; ".join(hops)
        )

    def _lock_wait_done(self, lock: TrackedLock) -> None:
        tid = threading.get_ident()
        with self._mu:
            self._waitgraph.wait_done(tid)

    def _lock_acquired(self, lock: TrackedLock) -> None:
        tid = threading.get_ident()
        with self._mu:
            self._waitgraph.acquired(tid, lock)

    def _lock_released(self, lock: TrackedLock) -> None:
        tid = threading.get_ident()
        with self._mu:
            self._waitgraph.released(tid, lock)

    # -- lockset race detection ----------------------------------------------

    def access(self, owner: str, field: str, write: bool = True,
               scope: Any = None) -> None:
        tid = threading.get_ident()
        site = caller_site()
        with self._mu:
            sid = 0
            if scope is not None:
                sid = self._scopes.get(scope, 0)
                if sid == 0:
                    self._next_scope += 1
                    sid = self._next_scope
                    self._scopes[scope] = sid
            race = self._lockset.access(
                (sid, owner), field, tid,
                self._waitgraph.held_names(tid), write, site,
            )
        if race is not None:
            prev, cur = race
            self._emit(
                "san-race",
                f"data race on {owner}.{field}: {self._name_of(cur.tid)} "
                f"{'writes' if cur.write else 'reads'} at "
                f"{cur.site[0]}:{cur.site[1]} holding "
                f"{sorted(cur.locks) or '{}'} while "
                f"{self._name_of(prev.tid)} "
                f"{'wrote' if prev.write else 'read'} at "
                f"{prev.site[0]}:{prev.site[1]} holding "
                f"{sorted(prev.locks) or '{}'} with no common lock and no "
                "happens-before edge between them",
                site,
                symbol=f"{owner}.{field}",
            )

    # -- happens-before edges ------------------------------------------------

    def hb_send(self, key: Any) -> None:
        tid = threading.get_ident()
        with self._mu:
            clock = self._sync.get(key)
            if clock is None:
                clock = {}
                self._sync[key] = clock
            self._lockset.clocks.send(tid, clock)

    def hb_recv(self, key: Any) -> None:
        tid = threading.get_ident()
        with self._mu:
            clock = self._sync.get(key)
            if clock:
                self._lockset.clocks.recv(tid, clock)

    def on_call_push(self, token: int) -> None:
        tid = threading.get_ident()
        with self._mu:
            clock = self._sync_tokens.setdefault(token, {})
            self._lockset.clocks.send(tid, clock)

    def on_call_run(self, token: int) -> None:
        tid = threading.get_ident()
        with self._mu:
            clock = self._sync_tokens.pop(token, None)
            if clock:
                self._lockset.clocks.recv(tid, clock)

    # -- leak tracking -------------------------------------------------------

    def track_future(self, fut: Any, kernel: Any) -> None:
        if not self.leaks:
            return
        site = caller_site(extra_skip=(os.path.join("repro", "transport"),
                                       os.path.join("repro", "rmi")))
        with self._mu:
            self._leaks.track_future(fut, kernel, site)

    def future_completed(self, fut: Any) -> None:
        if not self.leaks:
            return
        with self._mu:
            self._leaks.future_completed(fut)

    def track_handle(self, handle: Any, kernel: Any) -> None:
        if not self.leaks:
            return
        site = caller_site(extra_skip=(os.path.join("repro", "transport"),
                                       os.path.join("repro", "rmi"),
                                       os.path.join("repro", "agents")))
        with self._mu:
            self._leaks.track_handle(handle, kernel, site)

    def handle_awaited(self, handle: Any) -> None:
        if not self.leaks:
            return
        with self._mu:
            self._leaks.handle_awaited(handle)

    def handle_polled(self, handle: Any) -> None:
        if not self.leaks:
            return
        with self._mu:
            self._leaks.handle_polled(handle)

    def chan_wait(self, chan: Any, kernel: Any) -> None:
        if not self.leaks:
            return
        tid = threading.get_ident()
        site = caller_site(extra_skip=(os.path.join("repro", "transport"),))
        with self._mu:
            self._leaks.chan_wait(tid, chan, kernel, site)

    def chan_wait_done(self, chan: Any) -> None:
        if not self.leaks:
            return
        tid = threading.get_ident()
        with self._mu:
            self._leaks.chan_wait_done(tid)

    # -- detector report sinks -----------------------------------------------

    def note_all_blocked(self, kernel: Any, dump: str,
                         site: tuple[str, int] | None = None) -> None:
        self._emit(
            "san-all-blocked",
            "virtual kernel ran out of events with processes still "
            f"blocked (a hang under a real scheduler); wait-for graph: "
            f"{dump}",
            site,
            symbol=type(kernel).__name__,
        )

    def check_leaks(self, kernel: Any) -> None:
        if not self.leaks:
            return
        with self._mu:
            leaks = self._leaks.collect(kernel, self._name_of)
        for rule, message, site, symbol in leaks:
            self._emit(rule, message, site, symbol)

    def reset_context(self) -> None:
        """Forget access history, clocks and leak registrations — findings
        are kept.

        A session-wide sanitizer (REPRO_SAN=1 pytest) must call this
        between tests: each test builds an independent world, so accesses
        from different tests are never really concurrent, but they reuse
        deterministic object ids and recycled thread idents and would
        otherwise alias into false races."""
        with self._mu:
            self._lockset = LocksetDetector()
            self._leaks = LeakRegistry()
            self._thread_names.clear()
            self._sync_tokens.clear()
            self._sync = weakref.WeakKeyDictionary()

    # -- reporting -----------------------------------------------------------

    def report(self):
        """A symlint-model Report of everything found so far."""
        from repro.analysis.runner import Report

        with self._mu:
            findings = list(self.findings)
        report = Report(findings=sorted(
            set(findings),
            key=lambda f: (f.path, f.line, f.rule, f.col, f.message),
        ))
        return report


_current: NullSanitizer = NULL_SANITIZER


def current_sanitizer() -> NullSanitizer:
    """The ambient sanitizer new kernels adopt (NULL_SANITIZER unless
    installed)."""
    return _current


def set_sanitizer(sanitizer: NullSanitizer | None) -> None:
    global _current
    _current = sanitizer if sanitizer is not None else NULL_SANITIZER


@contextmanager
def sanitizing(sanitizer: Sanitizer | None = None) -> Iterator[Sanitizer]:
    """Install ``sanitizer`` (a fresh one by default) for the with-block."""
    sanitizer = sanitizer if sanitizer is not None else Sanitizer()
    previous = _current
    set_sanitizer(sanitizer)
    try:
        yield sanitizer
    finally:
        set_sanitizer(previous)
