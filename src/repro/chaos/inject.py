"""The chaos injector: executes a :class:`FaultPlan` against a world.

The injector hooks the transport's wire (``transport.chaos``): the
transport calls :meth:`ChaosInjector.filter` once per scheduled delivery
(request and reply legs separately) and the injector answers with the
list of delivery times — empty to drop, more than one to duplicate,
shifted to delay/reorder.  Because the transport computes its FIFO
ordering floor *before* asking, per-message shifts produce genuine
reordering, exactly the anomaly an in-order connection hides.

Host-level faults (stalls, partitions, crash-restarts) are scheduled on
the kernel at install time.

Determinism: every probabilistic decision draws from the kernel RNG
stream ``"chaos"``, and kernel event scheduling is deterministic, so one
(plan, world-seed) pair replays bit-identically — the property the
seeded-replay tests pin.
"""

from __future__ import annotations

from repro.chaos.plan import FaultPlan
from repro.obs import events as ev
from repro.simnet.world import SimWorld

#: minimum offset for a duplicated delivery, so the copy never lands at
#: the exact instant of the original
_DUP_EPSILON = 1e-6


class ChaosInjector:
    def __init__(self, world: SimWorld, plan: FaultPlan) -> None:
        self.world = world
        self.plan = plan
        self.rng = world.rng.stream("chaos")
        self.tracer = world.tracer
        #: injected-fault tally by fault name (drop, duplicate, ...)
        self.injected: dict[str, int] = {}
        #: per-message-fault injection counts (enforces ``max_count``)
        self._budget_used: list[int] = [0] * len(plan.message_faults)
        self.installed = False

    # -- installation ---------------------------------------------------------

    def install(self, transport) -> "ChaosInjector":
        """Hook the transport and schedule the host-level faults."""
        if self.installed:
            return self
        self.installed = True
        transport.chaos = self
        kernel = self.world.kernel
        for stall in self.plan.stalls:
            kernel.call_at(stall.at, self._do_stall, stall)
        for crash in self.plan.crashes:
            kernel.call_at(crash.at, self._do_crash, crash)
            if crash.restart_at is not None:
                kernel.call_at(crash.restart_at, self._do_restart, crash)
        for part in self.plan.partitions:
            kernel.call_at(part.at, self._note, "partition",
                           segment=part.segment, heal=part.healed_at)
        return self

    # -- host-level faults ----------------------------------------------------

    def _do_stall(self, stall) -> None:
        self.world.stall_host(stall.host, stall.duration)
        self._note("stall", host=stall.host, duration=stall.duration)

    def _do_crash(self, crash) -> None:
        self.world.fail_host(crash.host)
        self._note("crash", host=crash.host)

    def _do_restart(self, crash) -> None:
        self.world.restart_host(crash.host)
        self._note("restart", host=crash.host)

    # -- the wire hook ---------------------------------------------------------

    def filter(self, msg, stage: str, deliver_at: float) -> list[float]:
        """Delivery times for ``msg``'s ``stage`` leg (nominally
        ``[deliver_at]``): ``[]`` drops it, extra entries duplicate it,
        shifted entries delay/reorder it."""
        now = self.world.now()
        for part in self.plan.partitions:
            if part.active(now) and self._crosses(msg, part.segment):
                self._inject("partition", msg, stage)
                return []
        times = [deliver_at]
        for index, fault in enumerate(self.plan.message_faults):
            if not fault.matches(msg, stage, now):
                continue
            if (
                fault.max_count is not None
                and self._budget_used[index] >= fault.max_count
            ):
                continue
            if float(self.rng.random()) >= fault.probability:
                continue
            self._budget_used[index] += 1
            self._inject(fault.kind, msg, stage)
            if fault.kind == "drop":
                return []
            if fault.kind == "duplicate":
                times.append(
                    times[0] + _DUP_EPSILON
                    + fault.delay * float(self.rng.random())
                )
            elif fault.kind == "delay":
                shift = fault.delay * (0.5 + float(self.rng.random()))
                times = [t + shift for t in times]
            elif fault.kind == "reorder":
                shift = fault.delay * float(self.rng.random())
                times = [t + shift for t in times]
        return times

    def _crosses(self, msg, segment: str) -> bool:
        """Does the message cross the partitioned segment's boundary?"""
        topo = self.world.topology
        try:
            src_seg = topo.segment_of(msg.src.host).name
            dst_seg = topo.segment_of(msg.dst.host).name
        except Exception:  # unknown host: not ours to partition
            return False
        return (src_seg == segment) != (dst_seg == segment)

    # -- accounting ------------------------------------------------------------

    def _inject(self, fault: str, msg, stage: str) -> None:
        self.injected[fault] = self.injected.get(fault, 0) + 1
        if self.tracer.enabled:
            self.tracer.emit(
                ev.CHAOS_INJECT, ts=self.world.now(), host=msg.dst.host,
                ctx=msg.ctx, fault=fault, stage=stage, kind=msg.kind,
                src=str(msg.src), dst=str(msg.dst),
            )
            self.tracer.count(f"chaos.{fault}", host=msg.dst.host)

    def _note(self, fault: str, **fields) -> None:
        """Host/segment-level fault firing (no message context)."""
        self.injected[fault] = self.injected.get(fault, 0) + 1
        if self.tracer.enabled:
            host = str(fields.pop("host", ""))
            self.tracer.emit(
                ev.CHAOS_INJECT, ts=self.world.now(),
                host=host, fault=fault, **fields,
            )
            self.tracer.count(f"chaos.{fault}", host=host)
