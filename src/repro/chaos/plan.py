"""Fault plans: the declarative half of the chaos plane.

A :class:`FaultPlan` is a list of scheduled faults — message-level
(drop / duplicate / delay / reorder), gray-failure stalls, segment
partitions with heal times, and crash-restarts.  Plans come from three
places: built programmatically (tests), parsed from a compact spec
string (``repro chaos --plan``), or generated from a seed
(``repro chaos --random --seed N``).  Plans are pure data; the
:class:`repro.chaos.inject.ChaosInjector` executes them against a world,
drawing every probabilistic decision from the kernel RNG stream
``"chaos"`` so a given (plan, seed) pair replays bit-identically.

Spec grammar (clauses separated by ``;``, options by ``,``)::

    drop:p=0.1                      # drop 10% of messages
    drop:p=1,kinds=invoke,stage=reply,max=1   # exactly the 1st invoke reply
    duplicate:p=0.05                # duplicate 5% of messages
    delay:p=0.2,delay=0.5           # +~0.5 s on 20% of messages
    reorder:p=0.3,delay=0.05        # jitter deliveries out of order
    stall:host=pc3,at=5,dur=5       # gray-fail pc3 for 5 s at t=5
    partition:segment=hub-10,at=3,heal=4      # cut the hub off, heal at 7
    crash:host=pc2,at=4,restart=9   # crash pc2 at 4, restart at 9

Message-fault options: ``p`` (probability), ``start``/``end`` (active
window in sim seconds), ``hosts`` (``|``-separated, matches src *or*
dst), ``kinds`` (``|``-separated message kinds), ``stage`` (``request``
or ``reply``), ``max`` (injection budget), ``delay`` (seconds, for
delay/duplicate/reorder shifts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import JSError

MESSAGE_FAULT_KINDS = ("drop", "duplicate", "delay", "reorder")


@dataclass(frozen=True)
class MessageFault:
    """One probabilistic fault on the message plane."""

    kind: str                       # drop | duplicate | delay | reorder
    probability: float = 0.1
    start: float = 0.0              # active window [start, end)
    end: float | None = None
    hosts: frozenset | None = None  # match src OR dst host; None = all
    kinds: frozenset | None = None  # message kinds; None = all
    stage: str | None = None        # "request" | "reply" | None = both
    #: seconds of shift for delay faults; jitter range for
    #: reorder/duplicate offsets
    delay: float = 0.05
    #: total injection budget (None = unlimited)
    max_count: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise JSError(f"unknown message fault kind {self.kind!r}")
        if not (0.0 <= self.probability <= 1.0):
            raise JSError("fault probability must be in [0, 1]")
        if self.stage not in (None, "request", "reply"):
            raise JSError(f"unknown fault stage {self.stage!r}")

    def matches(self, msg, stage: str, now: float) -> bool:
        """Is this fault eligible for ``msg`` at ``now`` (pre-dice)?"""
        if now < self.start:
            return False
        if self.end is not None and now >= self.end:
            return False
        if self.stage is not None and stage != self.stage:
            return False
        if self.kinds is not None and msg.kind not in self.kinds:
            return False
        if self.hosts is not None and not (
            msg.src.host in self.hosts or msg.dst.host in self.hosts
        ):
            return False
        return True


@dataclass(frozen=True)
class HostStall:
    """Transient gray failure: up but ~unresponsive for ``duration``."""

    host: str
    at: float
    duration: float


@dataclass(frozen=True)
class Partition:
    """Cut one topology segment off from the rest of the network.

    While active (``[at, at + heal)``), every message with exactly one
    end attached to ``segment`` is dropped; intra-segment traffic still
    flows."""

    segment: str
    at: float
    heal: float

    @property
    def healed_at(self) -> float:
        return self.at + self.heal

    def active(self, now: float) -> bool:
        return self.at <= now < self.healed_at


@dataclass(frozen=True)
class CrashRestart:
    """Crash ``host`` at ``at``; bring it back blank at ``restart_at``
    (``None`` = stays down, the seed's permanent-failure behavior)."""

    host: str
    at: float
    restart_at: float | None = None


@dataclass
class FaultPlan:
    message_faults: list = field(default_factory=list)
    stalls: list = field(default_factory=list)
    partitions: list = field(default_factory=list)
    crashes: list = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(
            self.message_faults or self.stalls
            or self.partitions or self.crashes
        )

    def describe(self) -> str:
        parts = []
        for f in self.message_faults:
            parts.append(f"{f.kind}(p={f.probability})")
        for s in self.stalls:
            parts.append(f"stall({s.host}@{s.at}+{s.duration})")
        for p in self.partitions:
            parts.append(f"partition({p.segment}@{p.at}+{p.heal})")
        for c in self.crashes:
            tail = "" if c.restart_at is None else f"->{c.restart_at}"
            parts.append(f"crash({c.host}@{c.at}{tail})")
        return " ".join(parts) or "(empty plan)"

    # -- spec parsing ---------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the compact clause grammar (module docstring)."""
        plan = cls()
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            name, _, rest = clause.partition(":")
            name = name.strip()
            opts = _parse_opts(rest, clause)
            if name in MESSAGE_FAULT_KINDS:
                plan.message_faults.append(MessageFault(
                    kind=name,
                    probability=float(opts.pop("p", 0.1)),
                    start=float(opts.pop("start", 0.0)),
                    end=_opt_float(opts.pop("end", None)),
                    hosts=_opt_set(opts.pop("hosts", None)),
                    kinds=_opt_set(opts.pop("kinds", None)),
                    stage=opts.pop("stage", None),
                    delay=float(opts.pop("delay", 0.05)),
                    max_count=_opt_int(opts.pop("max", None)),
                ))
            elif name == "stall":
                plan.stalls.append(HostStall(
                    host=_require(opts, "host", clause),
                    at=float(opts.pop("at", 0.0)),
                    duration=float(opts.pop("dur", 1.0)),
                ))
            elif name == "partition":
                plan.partitions.append(Partition(
                    segment=_require(opts, "segment", clause),
                    at=float(opts.pop("at", 0.0)),
                    heal=float(opts.pop("heal", 1.0)),
                ))
            elif name == "crash":
                plan.crashes.append(CrashRestart(
                    host=_require(opts, "host", clause),
                    at=float(opts.pop("at", 0.0)),
                    restart_at=_opt_float(opts.pop("restart", None)),
                ))
            else:
                raise JSError(f"unknown chaos clause {name!r} in {clause!r}")
            if opts:
                raise JSError(
                    f"unknown option(s) {sorted(opts)} in chaos clause "
                    f"{clause!r}"
                )
        return plan

    # -- seeded generation ----------------------------------------------------

    @classmethod
    def random_plan(
        cls,
        seed: int,
        hosts: list[str],
        segments: list[str] = (),
        horizon: float = 60.0,
    ) -> "FaultPlan":
        """A moderate random plan: lossy-but-survivable message faults
        plus at most one stall and one crash-restart.  Deterministic in
        ``seed`` (plan *generation* uses its own ``random.Random``; plan
        *execution* draws from the kernel RNG)."""
        rng = random.Random(seed)
        plan = cls()
        plan.message_faults.append(MessageFault(
            kind="drop", probability=rng.uniform(0.02, 0.10),
        ))
        if rng.random() < 0.5:
            plan.message_faults.append(MessageFault(
                kind="duplicate", probability=rng.uniform(0.01, 0.05),
            ))
        if rng.random() < 0.5:
            plan.message_faults.append(MessageFault(
                kind="delay", probability=rng.uniform(0.05, 0.20),
                delay=rng.uniform(0.05, 0.5),
            ))
        if rng.random() < 0.5:
            plan.message_faults.append(MessageFault(
                kind="reorder", probability=rng.uniform(0.05, 0.30),
                delay=rng.uniform(0.01, 0.1),
            ))
        if hosts and rng.random() < 0.7:
            plan.stalls.append(HostStall(
                host=rng.choice(sorted(hosts)),
                at=rng.uniform(0.1, horizon / 2),
                duration=rng.uniform(1.0, 8.0),
            ))
        # Crash a non-home host (the first host conventionally runs the
        # application and the domain NAS; crashing it kills the run
        # rather than exercising recovery).
        crashable = sorted(hosts)[1:]
        if crashable and rng.random() < 0.4:
            at = rng.uniform(0.1, horizon / 2)
            plan.crashes.append(CrashRestart(
                host=rng.choice(crashable), at=at,
                restart_at=at + rng.uniform(2.0, 10.0),
            ))
        if segments and rng.random() < 0.3:
            plan.partitions.append(Partition(
                segment=rng.choice(sorted(segments)),
                at=rng.uniform(0.1, horizon / 2),
                heal=rng.uniform(0.5, 3.0),
            ))
        return plan


def _parse_opts(rest: str, clause: str) -> dict:
    opts: dict[str, str] = {}
    for pair in rest.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        if not sep:
            raise JSError(
                f"malformed option {pair!r} in chaos clause {clause!r}"
            )
        opts[key.strip()] = value.strip()
    return opts


def _require(opts: dict, key: str, clause: str) -> str:
    try:
        return opts.pop(key)
    except KeyError:
        raise JSError(
            f"chaos clause {clause!r} needs a {key}= option"
        ) from None


def _opt_float(value) -> float | None:
    return None if value is None else float(value)


def _opt_int(value) -> int | None:
    return None if value is None else int(value)


def _opt_set(value) -> frozenset | None:
    if value is None:
        return None
    return frozenset(part for part in value.split("|") if part)
