"""Deterministic, seeded fault injection over simnet (the chaos plane).

Declare *what* goes wrong with a :class:`FaultPlan` (message drops,
duplicates, delays, reordering, gray-failure stalls, segment partitions,
crash-restarts), then :class:`ChaosInjector` executes it against a
world, hooked into the transport's wire.  All randomness comes from the
kernel RNG, so a given (plan, seed) pair replays bit-identically —
chaos runs are reproducible experiments, not flaky ones.

CLI: ``python -m repro chaos matmul --random --seed 7``.
"""

from repro.chaos.inject import ChaosInjector
from repro.chaos.plan import (
    CrashRestart,
    FaultPlan,
    HostStall,
    MessageFault,
    Partition,
)

__all__ = [
    "ChaosInjector",
    "CrashRestart",
    "FaultPlan",
    "HostStall",
    "MessageFault",
    "Partition",
]
