"""Message transport: the Java/RMI stand-in.

See :mod:`repro.transport.rpc` for the core machinery.
"""

from repro.transport.rpc import Addr, Endpoint, Message, RemoteError, Transport

__all__ = ["Addr", "Endpoint", "Message", "RemoteError", "Transport"]
