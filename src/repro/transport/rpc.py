"""RPC over the simulated network — the stand-in for Java/RMI.

Agents register *endpoints* (one per ``(host, agent-name)`` pair) with
handlers keyed by message kind.  An RPC:

1. measures the request payload (honoring nominal :class:`Payload` sizes),
2. charges the network (latency + bandwidth share + software overhead),
3. executes the handler **in its own spawned process at the destination**
   (JavaSymphony ran one thread per incoming request on the PubOA),
4. charges the network again for the reply and completes the caller's
   future.

Failure semantics mirror a real LAN: messages to or from a failed host
are silently dropped — the caller learns about failures only through
timeouts, which is exactly what the paper's Network Agent System relies
on for failure detection.

Arguments and results cross the "wire" by pickle round-trip, so mutation
on the callee is invisible to the caller (true copy semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple

from repro.errors import (
    NodeFailedError,
    RemoteInvocationError,
    TransportError,
)
from repro.kernel.base import Future
from repro.obs import events as ev
from repro.obs.spans import TraceContext
from repro.simnet.world import SimWorld
from repro.util.ids import IdGenerator
from repro.util.serialization import deep_copy_via_pickle, sizeof


class Addr(NamedTuple):
    """Transport address: which agent on which host."""

    host: str
    agent: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.agent}@{self.host}"


@dataclass
class Message:
    msg_id: str
    src: Addr
    dst: Addr
    kind: str
    payload: Any
    nbytes: int = 0
    sent_at: float = 0.0
    #: the request span's context, carried across the wire so the
    #: handler-side exec span joins the caller's trace
    ctx: TraceContext | None = None
    #: idempotency token: identical across every retry of one logical
    #: call (each retry still gets a fresh ``msg_id``), so the holder's
    #: :class:`repro.rmi.reliability.ReplayCache` can serve a duplicate
    #: from cache instead of re-executing.  ``None`` = unreliable call.
    token: str | None = None


@dataclass
class RemoteError:
    """Wire representation of an exception raised by a remote handler."""

    exc: BaseException
    where: Addr


@dataclass
class TransportStats:
    messages: int = 0
    rpcs: int = 0
    oneways: int = 0
    dropped_requests: int = 0
    dropped_replies: int = 0
    bytes_total: int = 0
    by_kind: dict = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        """All drops; request vs reply drops are counted separately
        because a dropped reply means the *caller's* host failed."""
        return self.dropped_requests + self.dropped_replies


class Endpoint:
    def __init__(self, transport: "Transport", addr: Addr) -> None:
        self.transport = transport
        self.addr = addr
        self._handlers: dict[str, Callable[[Message], Any]] = {}
        self.closed = False
        #: optional :class:`repro.rmi.reliability.ReplayCache`; when set,
        #: tokened requests execute at most once (see :meth:`Transport._execute`)
        self.dedup = None

    def register(self, kind: str, handler: Callable[[Message], Any]) -> None:
        if kind in self._handlers:
            raise TransportError(
                f"{self.addr}: handler for {kind!r} already registered"
            )
        self._handlers[kind] = handler

    def handler_for(self, kind: str) -> Callable[[Message], Any]:
        try:
            return self._handlers[kind]
        except KeyError:
            raise TransportError(
                f"{self.addr}: no handler for message kind {kind!r}"
            ) from None

    def close(self) -> None:
        self.closed = True
        self.transport._unregister(self.addr)

    # -- convenience wrappers -------------------------------------------------

    def rpc(
        self,
        dst: Addr,
        kind: str,
        payload: Any = None,
        timeout: float | None = None,
    ) -> Any:
        """Blocking RPC; returns the reply value or raises the remote
        exception / :class:`repro.errors.RPCTimeoutError`.

        With a retry policy installed on the transport this becomes a
        *reliable* call: failed attempts are retried with backoff and
        exhaustion surfaces as
        :class:`repro.errors.RetriesExhaustedError`."""
        if self.transport.retry_policy is not None:
            return self.transport.reliable_rpc(
                self.addr, dst, kind, payload, timeout=timeout
            )
        return self.transport.rpc(self.addr, dst, kind, payload).result_or_timeout(
            timeout
        )

    def rpc_async(self, dst: Addr, kind: str, payload: Any = None) -> "Reply":
        return self.transport.rpc(self.addr, dst, kind, payload)

    def send_oneway(self, dst: Addr, kind: str, payload: Any = None) -> None:
        self.transport.send(self.addr, dst, kind, payload, oneway=True)


class Reply:
    """Caller-side handle on an in-flight RPC."""

    def __init__(self, future: Future, transport: "Transport",
                 src: Addr | None = None, dst: Addr | None = None,
                 kind: str = "") -> None:
        self._future = future
        self._transport = transport
        self._src = src
        self._dst = dst
        self._kind = kind

    def done(self) -> bool:
        return self._future.done()

    def wait(self, timeout: float | None = None) -> bool:
        return self._future.wait(timeout)

    def result_or_timeout(self, timeout: float | None = None) -> Any:
        from repro.errors import RPCTimeoutError, WaitTimeout

        try:
            value = self._future.result(timeout)
        except WaitTimeout:
            tracer = self._transport.tracer
            if tracer.enabled:
                host = self._src.host if self._src else ""
                tracer.emit(
                    ev.RPC_TIMEOUT, ts=self._transport.world.now(),
                    host=host, actor=str(self._src) if self._src else "",
                    kind=self._kind, dst=str(self._dst) if self._dst else "",
                    waited=timeout,
                )
                tracer.count("rpc.timeouts", host=host)
            raise RPCTimeoutError(
                f"no reply within {timeout} s (peer failed?)"
            ) from None
        if isinstance(value, RemoteError):
            exc = value.exc
            if isinstance(exc, (NodeFailedError, RemoteInvocationError)):
                # Already the caller-facing family; re-wrapping would bury
                # the class (e.g. MethodNotFoundError) a level deep.
                raise exc
            raise RemoteInvocationError(
                f"remote handler at {value.where} raised {exc!r}", cause=exc
            )
        return value


class Transport:
    def __init__(
        self,
        world: SimWorld,
        copy_semantics: bool = True,
        fifo: bool = True,
    ) -> None:
        self.world = world
        self.copy_semantics = copy_semantics
        #: fifo=True models RMI over persistent TCP connections: messages
        #: between the same pair of hosts are delivered in send order, so
        #: a small call cannot overtake a large one (the paper's
        #: ``oinvoke init`` -> ``ainvoke multiply`` pattern relies on it).
        self.fifo = fifo
        self.stats = TransportStats()
        self.tracer = world.tracer
        self._endpoints: dict[Addr, Endpoint] = {}
        self._ids = IdGenerator()
        self._last_delivery: dict[tuple[str, str], float] = {}
        # A failed host's TCP connections are gone; its ordering floors
        # must not outlive them (a recovered host would otherwise queue
        # behind pre-crash delivery times).
        world.failure_listeners.append(self._prune_fifo)
        #: :class:`repro.rmi.reliability.RetryPolicy` | None — when set,
        #: :meth:`Endpoint.rpc` routes through :meth:`reliable_rpc`.
        self.retry_policy = None
        #: :class:`repro.rmi.reliability.CircuitBreaker` | None
        self.health = None
        #: :class:`repro.chaos.ChaosInjector` | None — fault hook on the
        #: wire: may drop/duplicate/delay scheduled deliveries.
        self.chaos = None
        #: sender-side CPU cost of an RMI: dispatch plus serialization.
        #: JDK 1.2 object serialization ran at a handful of MB/s, a large
        #: part of why "a larger number of RMIs" degrades the paper's
        #: >10-node runs.  Charged as compute on the sending machine.
        self.cpu_flops_per_msg = 25_000.0
        self.cpu_flops_per_byte = 4.0

    # -- endpoints ------------------------------------------------------------

    def create_endpoint(self, addr: Addr) -> Endpoint:
        if addr in self._endpoints:
            raise TransportError(f"endpoint {addr} already exists")
        endpoint = Endpoint(self, addr)
        self._endpoints[addr] = endpoint
        return endpoint

    def _unregister(self, addr: Addr) -> None:
        self._endpoints.pop(addr, None)
        if not any(a.host == addr.host for a in self._endpoints):
            self._prune_fifo(addr.host)

    def _prune_fifo(self, host: str) -> None:
        """Forget delivery-order floors involving ``host``."""
        for key in [k for k in self._last_delivery if host in k]:
            del self._last_delivery[key]

    def endpoint(self, addr: Addr) -> Endpoint | None:
        return self._endpoints.get(addr)

    # -- send path -------------------------------------------------------------

    def rpc(
        self,
        src: Addr,
        dst: Addr,
        kind: str,
        payload: Any,
        token: str | None = None,
    ) -> Reply:
        future = self.world.kernel.create_future()
        self.stats.rpcs += 1
        self.send(src, dst, kind, payload, oneway=False, reply_future=future,
                  token=token)
        return Reply(future, self, src=src, dst=dst, kind=kind)

    def reliable_rpc(
        self,
        src: Addr,
        dst: Addr,
        kind: str,
        payload: Any,
        timeout: float | None = None,
    ) -> Any:
        """Blocking RPC with retries, per :attr:`retry_policy`.

        Every attempt carries the same idempotency token (fresh
        ``msg_id``), so holders with a dedup cache execute at most once.
        Only transport-level failures (:class:`RPCTimeoutError`,
        :class:`NodeFailedError`) are retried — an application exception
        from the handler is a *delivered* outcome and re-raises
        immediately.  Exhaustion raises
        :class:`repro.errors.RetriesExhaustedError` carrying the
        per-attempt trace; an open circuit sheds the call up front with
        :class:`repro.errors.CircuitOpenError`."""
        from repro.errors import (
            CircuitOpenError,
            RetriesExhaustedError,
            RPCTimeoutError,
        )
        from repro.rmi.reliability import AttemptTrace

        policy = self.retry_policy
        kernel = self.world.kernel
        if policy is None or kernel.current_process() is None:
            # No policy, or no process to sleep in (module-level/test
            # harness callers): seed fire-once semantics.
            return self.rpc(src, dst, kind, payload).result_or_timeout(timeout)
        health = self.health
        token = self._ids.next("tok")
        per_attempt = policy.per_attempt_timeout(timeout)
        deadline = (
            None if policy.deadline is None
            else self.world.now() + policy.deadline
        )
        rng = self.world.rng.stream("retry")
        attempts: list = []
        for attempt in range(1, policy.max_attempts + 1):
            now = self.world.now()
            if health is not None and not health.allow(dst.host, now):
                if attempts:
                    raise RetriesExhaustedError(
                        f"{kind} to {dst}: circuit opened after "
                        f"{len(attempts)} failed attempt(s)",
                        attempts=attempts,
                    )
                raise CircuitOpenError(
                    f"{kind} to {dst}: circuit open for host {dst.host!r}"
                )
            started = self.world.now()
            try:
                value = self.rpc(
                    src, dst, kind, payload, token=token
                ).result_or_timeout(per_attempt)
            except (RPCTimeoutError, NodeFailedError) as exc:
                now = self.world.now()
                attempts.append(AttemptTrace(
                    attempt=attempt, dst=str(dst), kind=kind,
                    started=started, elapsed=now - started,
                    error=repr(exc),
                ))
                if health is not None:
                    health.record_failure(dst.host, now)
                backoff = policy.backoff(attempt, rng)
                out_of_budget = (
                    deadline is not None and now + backoff >= deadline
                )
                if attempt >= policy.max_attempts or out_of_budget:
                    raise RetriesExhaustedError(
                        f"{kind} to {dst} failed after {attempt} "
                        f"attempt(s)"
                        + (" (deadline exceeded)" if out_of_budget else ""),
                        attempts=attempts,
                    ) from exc
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.RPC_RETRY, ts=now, host=src.host,
                        actor=str(src), kind=kind, dst=str(dst),
                        attempt=attempt, backoff=backoff,
                        error=type(exc).__name__,
                    )
                    self.tracer.count("rpc.retries", host=src.host)
                kernel.sleep(backoff)
            else:
                if health is not None:
                    health.record_success(dst.host)
                return value
        raise AssertionError("unreachable: retry loop is bounded")

    def send(
        self,
        src: Addr,
        dst: Addr,
        kind: str,
        payload: Any,
        oneway: bool = True,
        reply_future: Future | None = None,
        token: str | None = None,
    ) -> None:
        if oneway:
            self.stats.oneways += 1
        self.stats.messages += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        nbytes = sizeof(payload)
        self.stats.bytes_total += nbytes
        msg = Message(
            msg_id=self._ids.next("msg"),
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            nbytes=nbytes,
            sent_at=self.world.now(),
            token=token,
        )
        self._charge_sender_cpu(src.host, nbytes)
        try:
            delay = self.world.transfer_delay(src.host, dst.host, nbytes)
        except NodeFailedError:
            # Dropped on the floor; the caller's timeout is the detector.
            self.stats.dropped_requests += 1
            self._trace_drop(msg, "request", "host failed")
            return
        deliver_at = self.world.now() + delay
        if self.fifo:
            key = (src.host, dst.host)
            deliver_at = max(deliver_at, self._last_delivery.get(key, 0.0))
            self._last_delivery[key] = deliver_at
        if self.tracer.enabled:
            msg.ctx = self.tracer.emit_span(
                ev.RPC_REQUEST, ts=msg.sent_at, host=src.host,
                actor=str(src), dur=deliver_at - msg.sent_at,
                kind=kind, nbytes=nbytes, src=str(src), dst=str(dst),
                msg_id=msg.msg_id, oneway=oneway,
            )
            self.tracer.count(f"rpc.bytes:{kind}", nbytes, host=src.host)
        # Chaos runs *after* the FIFO floor: faulted deliveries shift
        # individually, which is exactly how reordering becomes possible
        # on an otherwise in-order connection.
        deliveries = [deliver_at]
        if self.chaos is not None:
            deliveries = self.chaos.filter(msg, "request", deliver_at)
            if not deliveries:
                self.stats.dropped_requests += 1
                self._trace_drop(msg, "request", "chaos")
                return
        for at in deliveries:
            self.world.kernel.call_at(at, self._deliver, msg, reply_future)

    # -- receive path ------------------------------------------------------------

    def _deliver(self, msg: Message, reply_future: Future | None) -> None:
        if self.world.machine(msg.dst.host).failed:
            self.stats.dropped_requests += 1
            self._trace_drop(msg, "request", "destination failed")
            return
        endpoint = self._endpoints.get(msg.dst)
        if endpoint is None or endpoint.closed:
            self.stats.dropped_requests += 1
            self._trace_drop(msg, "request", "no such endpoint")
            return
        if self.copy_semantics:
            msg.payload = deep_copy_via_pickle(msg.payload)
        # One process per incoming request, as the paper's PubOA runs one
        # thread per request.
        self.world.kernel.spawn(
            self._execute,
            endpoint,
            msg,
            reply_future,
            name=f"handle-{msg.kind}@{msg.dst.host}",
            context={"addr": msg.dst},
        )

    def _execute(
        self, endpoint: Endpoint, msg: Message, reply_future: Future | None
    ) -> None:
        dedup = endpoint.dedup
        slot = None
        if msg.token is not None and dedup is not None:
            is_new, slot = dedup.claim(msg.token)
            if not is_new:
                # Duplicate of a tokened call: at-most-once execution.
                # Wait for the original's outcome (it may still be
                # running) and replay the reply instead of re-executing.
                if self.tracer.enabled:
                    self.tracer.count("rpc.dedup.hits", host=msg.dst.host)
                result = slot.future.result()
                if self.copy_semantics:
                    # A fresh copy per reply, so one caller mutating the
                    # value cannot pollute the cached outcome.
                    result = self._roundtrip_result(result, msg.dst)
                if reply_future is not None:
                    self._send_reply(msg, result, reply_future)
                return
        exec_start = self.world.now()
        exec_span = None
        if self.tracer.enabled:
            # The handler process joins the sender's trace: the exec span
            # parents under the request span carried on the message.
            exec_span = self.tracer.begin_span(
                ev.RPC_EXEC, ts=exec_start, host=msg.dst.host,
                actor=str(msg.dst), parent=msg.ctx,
                kind=msg.kind, msg_id=msg.msg_id,
            )
        failed = False
        try:
            handler = endpoint.handler_for(msg.kind)
            result: Any = handler(msg)
        except BaseException as exc:  # noqa: BLE001 - shipped to caller
            result = RemoteError(exc=exc, where=msg.dst)
            failed = True
        if exec_span is not None:
            # restore=False: the reply leg below (serialization compute,
            # the reply span itself) is still caused by this handler.
            self.tracer.end_span(exec_span, ts=self.world.now(),
                                 restore=False, error=failed)
        if reply_future is None and slot is None:
            return
        if self.copy_semantics:
            result = self._roundtrip_result(result, msg.dst)
        if slot is not None:
            # Cache the outcome (success *or* error) before the reply
            # leg, which can still fail: a retry after an
            # executed-but-lost-reply must replay, not re-execute.
            dedup.complete(msg.token, result)
        if reply_future is None:
            return
        self._send_reply(msg, result, reply_future)

    def _send_reply(
        self, msg: Message, result: Any, reply_future: Future
    ) -> None:
        """Charge and schedule the reply leg for an executed request."""
        reply_kind = msg.kind + ":reply"
        nbytes = sizeof(result)
        self.stats.messages += 1
        self.stats.by_kind[reply_kind] = (
            self.stats.by_kind.get(reply_kind, 0) + 1
        )
        self.stats.bytes_total += nbytes
        try:
            self._charge_sender_cpu(msg.dst.host, nbytes)
            delay = self.world.transfer_delay(msg.dst.host, msg.src.host, nbytes)
        except NodeFailedError:
            # The *caller's* host failed while we were executing.
            self.stats.dropped_replies += 1
            self._trace_drop(msg, "reply", "caller failed")
            return
        deliver_at = self.world.now() + delay
        if self.fifo:
            key = (msg.dst.host, msg.src.host)
            deliver_at = max(deliver_at, self._last_delivery.get(key, 0.0))
            self._last_delivery[key] = deliver_at
        if self.tracer.enabled:
            t_reply = self.world.now()
            # Current context is still the exec span (restore=False
            # above), so the reply span is its child — every cross-host
            # reply descends from the request that caused it.
            self.tracer.emit_span(
                ev.RPC_REPLY, ts=t_reply, host=msg.dst.host,
                actor=str(msg.dst), dur=deliver_at - t_reply,
                kind=reply_kind, nbytes=nbytes, src=str(msg.dst),
                dst=str(msg.src), msg_id=msg.msg_id,
            )
            self.tracer.count(f"rpc.bytes:{reply_kind}", nbytes,
                              host=msg.dst.host)
            # Latency is the caller-observed round trip; attribute it to
            # the calling host so per-host percentiles mean "RPCs this
            # machine issued".
            self.tracer.observe(
                f"rpc.latency:{msg.kind}", deliver_at - msg.sent_at,
                host=msg.src.host,
            )
        deliveries = [deliver_at]
        if self.chaos is not None:
            deliveries = self.chaos.filter(msg, "reply", deliver_at)
            if not deliveries:
                self.stats.dropped_replies += 1
                self._trace_drop(msg, "reply", "chaos")
                return
        for at in deliveries:
            # Duplicate replies are harmless: _complete is idempotent.
            self.world.kernel.call_at(
                at, self._complete, reply_future, result
            )

    def _roundtrip_result(self, result: Any, where: Addr) -> Any:
        """Pickle round-trip a reply — including :class:`RemoteError`
        results, so remote exceptions get copy semantics too.  Unpicklable
        values degrade to a picklable :class:`RemoteInvocationError`
        carrying the repr, instead of crossing the wire by reference (or
        killing the handler process and stranding the caller)."""
        try:
            return deep_copy_via_pickle(result)
        except Exception:
            if isinstance(result, RemoteError):
                synthesized: BaseException = RemoteInvocationError(
                    f"remote handler at {where} raised an unpicklable "
                    f"exception: {result.exc!r}"
                )
            else:
                synthesized = RemoteInvocationError(
                    f"remote handler at {where} returned an unpicklable "
                    f"value: {result!r}"
                )
            return RemoteError(exc=synthesized, where=where)

    def _trace_drop(self, msg: Message, stage: str, reason: str) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                ev.RPC_DROP, ts=self.world.now(), host=msg.dst.host,
                actor=str(msg.dst), ctx=msg.ctx, kind=msg.kind,
                stage=stage, reason=reason, msg_id=msg.msg_id,
            )
            self.tracer.count(f"rpc.dropped:{stage}", host=msg.dst.host)

    def _charge_sender_cpu(self, host: str, nbytes: int) -> None:
        flops = self.cpu_flops_per_msg + nbytes * self.cpu_flops_per_byte
        if flops > 0 and self.world.kernel.current_process() is not None:
            self.world.compute(host, flops)

    @staticmethod
    def _complete(future: Future, result: Any) -> None:
        if not future.done():
            future.set_result(result)
