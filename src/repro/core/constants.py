"""``JSConstants``: the paper's name for the system-parameter vocabulary.

The paper writes ``JSConstants.CPU_SYS_LOAD``; our canonical enum is
:class:`repro.sysmon.SysParam`.  This alias keeps paper snippets working
verbatim.
"""

from repro.sysmon.params import SysParam as JSConstants

__all__ = ["JSConstants"]
