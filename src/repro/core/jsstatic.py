"""``JSStatic``: remote static methods and variables (EXTENSION).

The paper closes with "we are extending JavaSymphony to handle static
methods and variables"; this module implements that extension.  A class's
*static segment* exists at most once per node (per "JVM") and is modeled
as a surrogate instance — static methods execute on it, static variables
are its attributes.  Each node has its own segment, exactly like separate
JVMs have separate static state::

    stats = JSStatic("Counters", node)     # segment on that node
    stats.sinvoke("bump", [])              # static method call
    stats.set_var("threshold", 10)         # static variable write
    stats.get_var("threshold")

Static segments never migrate and cannot be freed individually; they
live as long as their node's agent.  Selective classloading applies: the
segment can only materialize on nodes the class was loaded onto.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import context
from repro.agents import messages as M
from repro.agents.app_oa import AppOA
from repro.agents.objects import ObjectRef
from repro.core.jsobj import _resolve_target_hosts, _to_wire
from repro.errors import ObjectStateError
from repro.rmi.handle import ResultHandle
from repro.rmi.multi import MultiHandle
from repro.transport import Addr


class JSStatic:
    def __init__(
        self,
        class_name: str,
        target: Any = None,
        app: AppOA | None = None,
    ) -> None:
        self._app = app if app is not None else context.require_app()
        hosts = _resolve_target_hosts(target, self._app)
        if hosts is None:
            host = self._app.home
        elif len(hosts) == 1:
            host = hosts[0]
        else:
            raise ObjectStateError(
                "JSStatic needs exactly one node (static segments are "
                "per-node); got a multi-node target"
            )
        self._host = host
        self._class_name = class_name
        if host == self._app.home:
            holder_addr = self._app.addr
            self._app.ensure_static(class_name)
            obj_id = self._app.static_obj_id(class_name)
        else:
            holder_addr = Addr(host, "oa")
            obj_id = self._app.endpoint.rpc(
                holder_addr, M.STATIC_REF, class_name,
                timeout=self._app.rpc_timeout,
            )
        self._ref = ObjectRef(obj_id, class_name, holder_addr, holder_addr)

    # -- identity ----------------------------------------------------------------

    @property
    def ref(self) -> ObjectRef:
        return self._ref

    @property
    def class_name(self) -> str:
        return self._class_name

    def get_node(self) -> str:
        return self._host

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<JSStatic {self._class_name}@{self._host}>"

    # -- static methods (all three invocation modes) ----------------------------

    def sinvoke(self, method: str, params: Sequence[Any] | None = None) -> Any:
        return self._app.sinvoke(self._ref, method, _to_wire(params))

    def ainvoke(
        self, method: str, params: Sequence[Any] | None = None
    ) -> ResultHandle:
        return self._app.ainvoke(self._ref, method, _to_wire(params))

    def oinvoke(
        self, method: str, params: Sequence[Any] | None = None
    ) -> None:
        self._app.oinvoke(self._ref, method, _to_wire(params))

    def minvoke(
        self, method: str, params_list: Sequence[Sequence[Any] | None]
    ) -> MultiHandle:
        """Bulk static invocation: one call per parameter list, shipped
        as a single ``INVOKE_BATCH`` message to the segment's node."""
        return self._app.minvoke(
            [(self._ref, method, _to_wire(p)) for p in params_list]
        )

    # -- static variables ---------------------------------------------------------

    def get_var(self, name: str) -> Any:
        if self._host == self._app.home:
            entry = self._app.ensure_static(self._class_name)
            if not hasattr(entry.instance, name):
                raise AttributeError(
                    f"{self._class_name} has no static variable {name!r}"
                )
            return getattr(entry.instance, name)
        return self._app.endpoint.rpc(
            Addr(self._host, "oa"),
            M.STATIC_GETVAR,
            (self._class_name, name),
            timeout=self._app.rpc_timeout,
        )

    def set_var(self, name: str, value: Any) -> None:
        if self._host == self._app.home:
            entry = self._app.ensure_static(self._class_name)
            setattr(entry.instance, name, value)
            return
        self._app.endpoint.rpc(
            Addr(self._host, "oa"),
            M.STATIC_SETVAR,
            (self._class_name, name, value),
            timeout=self._app.rpc_timeout,
        )

    # Paper-style aliases.
    getNode = get_node
    getVar = get_var
    setVar = set_var
