"""``JSObj``: the distributed object handle (paper Section 4.4/4.5/4.6).

Creation maps the object onto a virtual-architecture component::

    obj = JSObj("Matrix")                      # node chosen by JRS
    obj = JSObj("Matrix", node)                # a specific Node
    obj = JSObj("Matrix", cluster, constr)     # best node of the cluster
    obj = JSObj("Matrix", obj2.get_node())     # co-locate with obj2

Invocation (Section 4.5)::

    result = obj.sinvoke("method", [a, b])     # synchronous
    handle = obj.ainvoke("method", [a])        # asynchronous -> handle
    obj.oinvoke("method", [a])                 # one-sided

Migration (Section 4.6) and persistence (Section 4.7)::

    obj.migrate(node); obj.migrate(cluster, constr); obj.migrate()
    key = obj.store(); obj2 = JS.load(key)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro import context
from repro.agents.app_oa import AppOA
from repro.agents.objects import ObjectRef
from repro.constraints import JSConstraints
from repro.errors import MigrationError, ObjectStateError
from repro.rmi.handle import ResultHandle
from repro.rmi.multi import MultiHandle
from repro.varch.component import VAComponent


@dataclass(frozen=True)
class HostGroup:
    """A plain set of candidate hosts usable as a placement target —
    what ``obj.get_cluster()`` returns (the physical neighbourhood of the
    object's current node)."""

    label: str
    hosts: tuple[str, ...]

    def __iter__(self):
        return iter(self.hosts)


def _resolve_target_hosts(target: Any, app: AppOA) -> list[str] | None:
    """Normalize a placement target to a candidate host list.
    ``None`` means "anywhere JRS likes"."""
    if target is None:
        return None
    if isinstance(target, str):
        if target == "local":
            return [app.home]
        return [target]
    if isinstance(target, HostGroup):
        return list(target.hosts)
    if isinstance(target, VAComponent):
        return target.hostnames()
    if isinstance(target, JSObj):
        return [target.get_node()]
    raise ObjectStateError(
        f"bad placement target {target!r}: expected None, 'local', a host "
        "name, Node/Cluster/Site/Domain, HostGroup or JSObj"
    )


def _to_wire(params: Sequence[Any] | None) -> list[Any]:
    """Replace JSObj arguments by their ObjectRefs (handles are
    first-order objects that can be passed to remote methods)."""
    if params is None:
        return []
    return [p.ref if isinstance(p, JSObj) else p for p in params]


class JSObj:
    def __init__(
        self,
        class_name: str,
        target: Any = None,
        constraints: JSConstraints | None = None,
        args: Sequence[Any] = (),
        app: AppOA | None = None,
    ) -> None:
        self._app = app if app is not None else context.require_app()
        runtime = self._app.runtime
        hosts = _resolve_target_hosts(target, self._app)
        if hosts is not None and len(hosts) == 1:
            host = hosts[0]
        else:
            host = runtime.choose_object_host(hosts, constraints)
        self._ref = self._app.create_object(
            class_name, host, tuple(_to_wire(list(args)))
        )

    @classmethod
    def _from_ref(cls, ref: ObjectRef, app: AppOA) -> "JSObj":
        obj = cls.__new__(cls)
        obj._app = app
        obj._ref = ref
        return obj

    # -- identity ----------------------------------------------------------------

    @property
    def ref(self) -> ObjectRef:
        return self._ref

    @property
    def obj_id(self) -> str:
        return self._ref.obj_id

    @property
    def class_name(self) -> str:
        return self._ref.class_name

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return f"<JSObj {self.class_name}#{self.obj_id}@{self.get_node()}>"

    # -- invocation (Section 4.5) ---------------------------------------------

    def _wrap_result(self, result: Any) -> Any:
        if isinstance(result, ObjectRef):
            return JSObj._from_ref(result, self._app)
        return result

    def sinvoke(self, method: str, params: Sequence[Any] | None = None) -> Any:
        """Synchronous (blocking) method invocation."""
        return self._wrap_result(
            self._app.sinvoke(self._ref, method, _to_wire(params))
        )

    def ainvoke(
        self, method: str, params: Sequence[Any] | None = None
    ) -> ResultHandle:
        """Asynchronous method invocation; returns a handle immediately."""
        return self._app.ainvoke(self._ref, method, _to_wire(params))

    def oinvoke(
        self, method: str, params: Sequence[Any] | None = None
    ) -> None:
        """One-sided invocation: no result, no completion wait."""
        self._app.oinvoke(self._ref, method, _to_wire(params))

    def minvoke(
        self, method: str, params_list: Sequence[Sequence[Any] | None]
    ) -> MultiHandle:
        """Bulk invocation: one call per parameter list, all shipped in
        a single ``INVOKE_BATCH`` message (grouped with any other calls
        headed to the object's node).  Returns a :class:`MultiHandle`
        with positional results."""
        return self._app.minvoke(
            [(self._ref, method, _to_wire(p)) for p in params_list],
            mapper=self._wrap_result,
        )

    # -- location & mapping introspection ------------------------------------------

    def get_node(self) -> str:
        """Host name the object currently lives on."""
        return self._app._location_of(self._ref).host

    def _physical_group(self, level: str) -> HostGroup:
        nas = self._app.runtime.nas
        host = self.get_node()
        if level == "cluster":
            cluster = nas.cluster_of(host)
            hosts = nas.cluster_members(cluster) if cluster else [host]
            return HostGroup(f"cluster:{cluster}", tuple(hosts))
        if level == "site":
            site = nas.site_of(host)
            if site is None:
                return HostGroup("site:?", (host,))
            hosts = [
                h
                for cl in nas.clusters_of_site(site)
                for h in nas.cluster_members(cl)
            ]
            return HostGroup(f"site:{site}", tuple(hosts))
        return HostGroup("domain", tuple(nas.known_hosts()))

    def get_cluster(self) -> HostGroup:
        """The physical cluster around the object's current node, usable
        as a placement target for co-location."""
        return self._physical_group("cluster")

    def get_site(self) -> HostGroup:
        return self._physical_group("site")

    def get_domain(self) -> HostGroup:
        return self._physical_group("domain")

    # -- migration (Section 4.6) ------------------------------------------------

    def migrate(
        self,
        target: Any = None,
        constraints: JSConstraints | None = None,
    ) -> str:
        """Move the object: to a specific node, to the best node of a
        cluster/site/domain (optionally constrained), or — with no
        arguments — wherever JRS decides.  Returns the new host."""
        app = self._app
        runtime = app.runtime
        current = self.get_node()
        hosts = _resolve_target_hosts(target, app)
        if hosts is not None and len(hosts) == 1 and constraints is None:
            new_host = hosts[0]
        else:
            candidates = runtime._placement_rank(
                hosts if hosts is not None else runtime.pool.hosts,
                constraints,
            )
            candidates = [h for h in candidates if h != current]
            if not candidates:
                raise MigrationError(
                    "no migration target satisfies the constraints"
                )
            new_host = candidates[0]
        if new_host == current:
            return current
        app.migrate_object(self._ref, new_host)
        return new_host

    # -- lifecycle ----------------------------------------------------------------

    def free(self) -> None:
        """Release the object (Section 4.4: enables garbage collection and
        trims JRS book-keeping)."""
        self._app.free_object(self._ref)

    # -- persistence (Section 4.7) -----------------------------------------------

    def store(self, key: str | None = None) -> str:
        """Serialize to external storage; returns the unique key."""
        return self._app.store_object(self._ref, key)

    # Paper-style aliases.
    getNode = get_node
    getCluster = get_cluster
    getSite = get_site
    getDomain = get_domain
