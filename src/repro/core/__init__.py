"""The JavaSymphony programming model (paper Section 4)."""

from repro.core.codebase import CodebaseEntry, JSCodebase
from repro.core.constants import JSConstants
from repro.core.js import JS
from repro.core.jsobj import HostGroup, JSObj
from repro.core.jsstatic import JSStatic
from repro.core.persistence import PersistentStore
from repro.core.registration import AppPool, JSRegistration
from repro.rmi.multi import MultiHandle, minvoke

__all__ = [
    "MultiHandle",
    "minvoke",
    "CodebaseEntry",
    "JSCodebase",
    "JSConstants",
    "JS",
    "HostGroup",
    "JSObj",
    "JSStatic",
    "PersistentStore",
    "AppPool",
    "JSRegistration",
]
