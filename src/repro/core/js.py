"""The ``JS`` static helper class (paper Sections 4.4 and 4.7).

``JS.getLocalNode()`` identifies the node the application executes on;
``JS.load(key)`` re-creates a persistent object.
"""

from __future__ import annotations

from typing import Any

from repro import context
from repro.core.jsobj import JSObj


class JS:
    """Static utility surface, mirroring the paper's predefined class."""

    @staticmethod
    def get_local_node(app: Any = None) -> str:
        """The host this application runs on — usable as a placement
        target (``JSObj("C", JS.get_local_node())``)."""
        app = app if app is not None else context.require_app()
        return app.home

    @staticmethod
    def load(key: str, target: Any = None, app: Any = None) -> JSObj:
        """Load a previously stored object from external storage onto the
        local node (or ``target``)."""
        app = app if app is not None else context.require_app()
        host = None
        if target is not None:
            from repro.core.jsobj import _resolve_target_hosts

            hosts = _resolve_target_hosts(target, app)
            if hosts:
                host = hosts[0]
        ref = app.load_object(key, host=host)
        return JSObj._from_ref(ref, app)

    @staticmethod
    def get_sys_param(host: str, param: Any, app: Any = None) -> Any:
        """Monitored system parameter of a node (Section 4.6 access path)."""
        from repro.sysmon import SysParam

        app = app if app is not None else context.require_app()
        if isinstance(param, str):
            param = SysParam.by_key(param)
        return app.runtime.nas.latest_snapshot(host)[param]

    # Paper-style aliases.
    getLocalNode = get_local_node
    getSysParam = get_sys_param
