"""``JSCodebase``: selective remote classloading (paper Section 4.3).

Instead of replicating all classes to every node, the programmer builds a
codebase and loads it only onto the architecture components that need
it::

    cb = JSCodebase()
    cb.add(Matrix)                       # a Python class (the "class file")
    cb.add("archive:matrix-classes")     # a registered archive ("jar")
    cb.add("http://host/JS/test/file.class")   # a registered URL
    cb.load(cluster)                     # transfer to every cluster node
    cb.free()

Creating an object on a node whose PubOA has not loaded the class raises
:class:`repro.errors.ClassNotLoadedError` — the selectivity is enforced,
and per-node memory accounting reflects what was loaded where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import context
from repro.agents import messages as M
from repro.agents.objects import ClassRegistry
from repro.errors import CodebaseError
from repro.obs.events import CLASSLOAD
from repro.transport import Addr
from repro.util.serialization import Payload
from repro.varch.component import VAComponent


@dataclass(frozen=True)
class CodebaseEntry:
    class_name: str
    nbytes: int


def _resolve_hosts(component: Any, app: Any) -> list[str]:
    if isinstance(component, str):
        return [component]
    if isinstance(component, VAComponent):
        return component.hostnames()
    if isinstance(component, (list, tuple)):
        return [
            h for item in component for h in _resolve_hosts(item, app)
        ]
    from repro.core.jsobj import HostGroup

    if isinstance(component, HostGroup):
        return list(component.hosts)
    raise CodebaseError(
        f"cannot load codebase onto {component!r}: expected a host name, "
        "Node/Cluster/Site/Domain, HostGroup or a list of those"
    )


class JSCodebase:
    def __init__(self, app: Any = None) -> None:
        self._app = app if app is not None else context.require_app()
        self._entries: dict[str, CodebaseEntry] = {}
        self._loaded_hosts: set[str] = set()
        self._freed = False

    # -- building the codebase ---------------------------------------------------

    def add(self, item: Any, nbytes: int | None = None) -> "JSCodebase":
        """Add a class, a registered class name, a registered archive
        (``archive:`` prefix or ``.jar``/``.class`` path) or a registered
        URL to the codebase."""
        self._check_active()
        runtime = self._app.runtime
        if isinstance(item, type):
            ClassRegistry.register(item)
            self._add_class(item.__name__, nbytes)
            return self
        if isinstance(item, str):
            if item in runtime.url_store:
                for class_name in runtime.url_store[item]:
                    self._add_class(class_name, None)
                return self
            if ClassRegistry.known(item):
                self._add_class(item, nbytes)
                return self
            raise CodebaseError(
                f"unknown codebase entry {item!r}: not a registered class, "
                "archive or URL (register archives with "
                "runtime.register_archive)"
            )
        raise CodebaseError(
            f"cannot add {item!r} to a codebase (class or string expected)"
        )

    def _add_class(self, class_name: str, nbytes: int | None) -> None:
        if class_name in self._entries:
            return
        size = (
            int(nbytes)
            if nbytes is not None
            else ClassRegistry.estimated_bytes(class_name)
        )
        self._entries[class_name] = CodebaseEntry(class_name, size)

    @property
    def entries(self) -> list[CodebaseEntry]:
        return list(self._entries.values())

    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    @property
    def loaded_hosts(self) -> list[str]:
        return sorted(self._loaded_hosts)

    # -- loading / freeing -----------------------------------------------------------

    def load(self, component: Any) -> None:
        """Transfer the codebase (as one archive) to every node of the
        component; idempotent per node."""
        self._check_active()
        if not self._entries:
            raise CodebaseError("codebase is empty; add classes first")
        app = self._app
        pairs = [(e.class_name, e.nbytes) for e in self._entries.values()]
        hosts = _resolve_hosts(component, app)
        world = app.runtime.world
        tracer = world.tracer
        span = None
        if tracer.enabled:
            # One span over the whole fan-out; the per-host transfers show
            # up as child rpc.request spans.
            span = tracer.begin_span(
                CLASSLOAD, ts=world.now(), host=app.home,
                actor=str(app.addr), classes=len(self._entries),
                nbytes=self.total_bytes, hosts=len(hosts),
            )
        try:
            for host in hosts:
                app.endpoint.rpc(
                    Addr(host, "oa"),
                    M.LOAD_CLASSES,
                    Payload(data=pairs, nbytes=self.total_bytes),
                    timeout=app.rpc_timeout,
                )
                self._loaded_hosts.add(host)
        finally:
            if span is not None:
                tracer.end_span(span, ts=world.now())

    def free(self) -> None:
        """Unload the codebase from every node it was loaded onto and
        release the associated memory (paper: ``codebase.free()``)."""
        self._check_active()
        app = self._app
        names = list(self._entries)
        for host in sorted(self._loaded_hosts):
            app.endpoint.rpc(
                Addr(host, "oa"), M.UNLOAD_CLASSES, names,
                timeout=app.rpc_timeout,
            )
        self._loaded_hosts.clear()
        self._entries.clear()
        self._freed = True

    def _check_active(self) -> None:
        if self._freed:
            raise CodebaseError("codebase has been freed")
