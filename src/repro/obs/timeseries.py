"""Per-host sliding-window time series over heartbeat-shipped deltas.

Each NAS heartbeat carries a :class:`MetricsDelta` — the growth of one
host's metrics registry since the previous heartbeat (exact counter and
bucket diffs, see :func:`repro.obs.metrics.snapshot_delta`).  The domain
manager folds every delta into a :class:`ClusterMetrics`: a cumulative
per-host registry (so merging hosts reproduces the global view exactly)
plus a :class:`HostSeries` of the last N windows per host.

Windows give the plane its time dimension: counter *rates* (events per
simulated second over the window span) and windowed histograms (merge of
the last k deltas) are what the SLO watcher evaluates, and
:meth:`HostSeries.forecast_rate` is an NWS-style adaptive predictor —
several simple predictors run side by side and the one with the lowest
cumulative error on the recorded windows wins (Wolski's Network Weather
Service trick: no single predictor is best, so pick empirically).

Rollover is deterministic: windows are appended in heartbeat order and
the deque evicts strictly oldest-first, so two runs with the same seed
produce identical series.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from statistics import median

from repro.obs.metrics import Histogram, Metrics, merge_snapshots

#: default number of windows a HostSeries retains
DEFAULT_WINDOW_DEPTH = 16

# Wire-cost model for one shipped delta (see DESIGN.md "Telemetry
# plane"): a small envelope, ~24B per counter entry (name + float), and
# per histogram a fixed header plus ~16B per non-empty bucket.
_ENVELOPE_BYTES = 48
_COUNTER_BYTES = 24
_HIST_HEADER_BYTES = 48
_BUCKET_BYTES = 16


@dataclass
class MetricsDelta:
    """The growth of one host's registry over one heartbeat interval.

    ``counters`` maps name -> exact increment; ``histograms`` maps
    name -> histogram-delta snapshot (exact count/sum/bucket diffs,
    cumulative min/max — see :func:`repro.obs.metrics.snapshot_delta`).
    Plain strings/floats/dicts throughout, so deltas pickle cleanly onto
    a :class:`~repro.util.serialization.Payload`.
    """

    host: str
    t_start: float                 # simulated seconds, window open
    t_end: float                   # simulated seconds, window close
    counters: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.t_end - self.t_start, 0.0)

    @property
    def empty(self) -> bool:
        return not self.counters and not self.histograms

    def wire_bytes(self) -> int:
        """Estimated serialized size — charged to the simulated network
        when the delta piggybacks on a heartbeat."""
        nbytes = _ENVELOPE_BYTES + _COUNTER_BYTES * len(self.counters)
        for hist in self.histograms.values():
            nbytes += _HIST_HEADER_BYTES
            nbytes += _BUCKET_BYTES * len(hist.get("buckets", {}))
        return nbytes


class HostSeries:
    """The last N metric windows of one host, oldest first."""

    def __init__(self, host: str, depth: int = DEFAULT_WINDOW_DEPTH) -> None:
        if depth < 1:
            raise ValueError("window depth must be positive")
        self.host = host
        self.depth = depth
        self.windows: deque[MetricsDelta] = deque(maxlen=depth)
        #: windows ever ingested (survives rollover)
        self.total_windows = 0

    def add(self, delta: MetricsDelta) -> None:
        self.windows.append(delta)
        self.total_windows += 1

    def _tail(self, windows: int | None) -> list[MetricsDelta]:
        if windows is None or windows >= len(self.windows):
            return list(self.windows)
        return list(self.windows)[-windows:]

    def span(self, windows: int | None = None) -> float:
        """Simulated seconds covered by the last ``windows`` windows."""
        tail = self._tail(windows)
        if not tail:
            return 0.0
        return max(tail[-1].t_end - tail[0].t_start, 0.0)

    def counter_sum(self, name: str, windows: int | None = None) -> float:
        return sum(w.counters.get(name, 0.0) for w in self._tail(windows))

    def rate(self, name: str, windows: int | None = None) -> float:
        """Counter events per simulated second over the window span."""
        span = self.span(windows)
        if span <= 0.0:
            return 0.0
        return self.counter_sum(name, windows) / span

    def rates(self, name: str) -> list[float]:
        """The per-window rate series for ``name``, oldest first."""
        out = []
        for w in self.windows:
            dur = w.duration
            out.append(w.counters.get(name, 0.0) / dur if dur > 0 else 0.0)
        return out

    def histogram(self, name: str,
                  windows: int | None = None) -> Histogram | None:
        """Merge of ``name``'s deltas over the last windows, or None if
        nothing was observed in them."""
        merged: Histogram | None = None
        for w in self._tail(windows):
            snap = w.histograms.get(name)
            if snap is None:
                continue
            if merged is None:
                merged = Histogram.from_snapshot(snap)
            else:
                merged.merge(Histogram.from_snapshot(snap))
        return merged

    def forecast_rate(self, name: str) -> float:
        """NWS-style one-step forecast of ``name``'s next-window rate.

        Candidate predictors (last value, sliding mean, sliding median)
        are replayed over the recorded windows; the one with the lowest
        cumulative absolute one-step error issues the forecast.
        Deterministic: depends only on the window contents.
        """
        series = self.rates(name)
        if not series:
            return 0.0
        if len(series) == 1:
            return series[0]
        predictors = {
            "last": lambda hist: hist[-1],
            "mean": lambda hist: sum(hist) / len(hist),
            "median": lambda hist: median(hist),
        }
        errors = dict.fromkeys(predictors, 0.0)
        for i in range(1, len(series)):
            past, actual = series[:i], series[i]
            for pname, predict in predictors.items():
                errors[pname] += abs(predict(past) - actual)
        best = min(sorted(predictors), key=lambda p: errors[p])
        return predictors[best](series)


class ClusterMetrics:
    """The domain manager's cluster-wide aggregate of shipped deltas.

    Two views per host: a *cumulative* registry (every delta folded in —
    merging these across hosts reproduces the union of all per-host
    samples, bucket-exact) and a :class:`HostSeries` of recent windows
    for rates and windowed percentiles.
    """

    def __init__(self, window_depth: int = DEFAULT_WINDOW_DEPTH) -> None:
        self.window_depth = window_depth
        self.series: dict[str, HostSeries] = {}
        self._cumulative: dict[str, Metrics] = {}
        self.ingested = 0

    def ingest(self, delta: MetricsDelta) -> None:
        """Fold one heartbeat-shipped delta into the aggregate."""
        host = delta.host
        series = self.series.get(host)
        if series is None:
            series = self.series[host] = HostSeries(host, self.window_depth)
            self._cumulative[host] = Metrics()
        series.add(delta)
        cum = self._cumulative[host]
        cum.merge_snapshot(
            {"counters": delta.counters, "histograms": delta.histograms})
        self.ingested += 1

    def hosts(self) -> list[str]:
        return sorted(self.series)

    def host_snapshot(self, host: str) -> dict:
        cum = self._cumulative.get(host)
        return cum.snapshot() if cum else {"counters": {}, "histograms": {}}

    def merged_snapshot(self) -> dict:
        """One registry snapshot merging every host's cumulative view."""
        return merge_snapshots(
            self._cumulative[h].snapshot() for h in self.hosts())

    def document(self) -> dict:
        """A JSON-safe summary (histogram bucket keys stringified)."""
        return {
            "ingested": self.ingested,
            "hosts": {
                host: {
                    "windows": self.series[host].total_windows,
                    "retained": len(self.series[host].windows),
                    "cumulative": _jsonable(self.host_snapshot(host)),
                }
                for host in self.hosts()
            },
            "merged": _jsonable(self.merged_snapshot()),
        }


def _jsonable(snapshot: dict) -> dict:
    """A registry snapshot with histogram bucket keys as strings, so
    ``json.dump`` round-trips it."""
    out = {"counters": dict(snapshot.get("counters", {})), "histograms": {}}
    for name, hist in snapshot.get("histograms", {}).items():
        h = dict(hist)
        h["buckets"] = {str(k): v
                        for k, v in sorted(hist.get("buckets", {}).items())}
        out["histograms"][name] = h
    return out
