"""repro.obs — structured tracing + metrics for the PySymphony runtime.

Usage::

    from repro.obs import Tracer, tracing

    with tracing(Tracer()) as tracer:
        vienna_testbed().run_app(app)   # worlds adopt the ambient tracer
    print(render_summary(tracer))

See :mod:`repro.obs.events` for the event schema and DESIGN.md for the
hook-point map.
"""

from repro.obs import events
from repro.obs.events import TraceEvent
from repro.obs.export import (
    render_summary,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Histogram, Metrics
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "events",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "tracing",
    "Metrics",
    "Histogram",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_summary",
]
