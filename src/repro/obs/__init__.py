"""repro.obs — structured tracing + metrics for the PySymphony runtime.

Usage::

    from repro.obs import Tracer, tracing

    with tracing(Tracer()) as tracer:
        vienna_testbed().run_app(app)   # worlds adopt the ambient tracer
    print(render_summary(tracer))

Every invocation, migration, classload, persistence call and NAS
exchange opens a *span* carrying a :class:`TraceContext` that is
propagated across hosts and async continuations; see
:mod:`repro.obs.spans` for the propagation rules,
:mod:`repro.obs.critical_path` for the longest-causal-chain analysis and
:mod:`repro.obs.top` for the js-top console.  :mod:`repro.obs.events`
documents the event schema and DESIGN.md the hook-point map.
"""

from repro.obs import events
from repro.obs.critical_path import (
    CriticalPath,
    critical_path,
    render_critical_path,
    render_span_tree,
    spans_document,
)
from repro.obs.events import TraceEvent
from repro.obs.export import (
    render_summary,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.flight import FlightRecorder, load_bundle, render_incident
from repro.obs.metrics import (
    Histogram,
    Metrics,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.prom import render_prom
from repro.obs.slo import DEFAULT_RULES, SLORule, SLOWatcher, parse_rule
from repro.obs.spans import OpenSpan, TraceContext, current_context
from repro.obs.timeseries import ClusterMetrics, HostSeries, MetricsDelta
from repro.obs.top import (
    TopFrame,
    frames_from_trace,
    live_frame,
    render_top,
    render_top_frame,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "events",
    "TraceEvent",
    "TraceContext",
    "OpenSpan",
    "current_context",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "tracing",
    "Metrics",
    "Histogram",
    "merge_snapshots",
    "snapshot_delta",
    "MetricsDelta",
    "HostSeries",
    "ClusterMetrics",
    "SLORule",
    "SLOWatcher",
    "DEFAULT_RULES",
    "parse_rule",
    "FlightRecorder",
    "load_bundle",
    "render_incident",
    "render_prom",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_summary",
    "CriticalPath",
    "critical_path",
    "render_critical_path",
    "render_span_tree",
    "spans_document",
    "TopFrame",
    "frames_from_trace",
    "live_frame",
    "render_top",
    "render_top_frame",
]
