"""``TraceContext``: causal identity for spans, propagated across hosts.

A *span* is a trace event with a duration **and** an identity: which
trace it belongs to (``trace_id``), which span it is (``span_id``) and
which span caused it (``parent_id``).  The identity travels three ways:

1. **Within a process** — a thread-local *current context*.  Both
   kernels back every process with its own OS thread, so the thread
   local doubles as per-process storage in the virtual and the real
   kernel alike.
2. **Across spawns** — ``kernel.spawn`` captures the spawner's current
   context onto the child process, and the child installs it before
   running its function (async continuations stay linked to their
   cause).
3. **Across hosts** — the transport stores the request span's context
   on the :class:`~repro.transport.rpc.Message`, and the handler-side
   ``rpc.exec`` span adopts it as parent; the reply span chains off the
   exec span, so a cross-host reply is always a descendant of the
   request that caused it.

The span *lifecycle* lives on :class:`repro.obs.tracer.Tracer`
(``emit_span`` / ``begin_span`` / ``end_span``); this module only owns
the identity type, the thread-local current context, and the
:class:`OpenSpan` book-keeping record.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import NamedTuple


class TraceContext(NamedTuple):
    """The causal coordinates of one span (all ids are opaque strings)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class _SpanState(threading.local):
    """The current span context of the calling kernel process."""

    def __init__(self) -> None:
        self.ctx: TraceContext | None = None


_state = _SpanState()


def current_context() -> TraceContext | None:
    """The calling process's current span context (None outside spans)."""
    return _state.ctx


def set_context(ctx: TraceContext | None) -> TraceContext | None:
    """Install ``ctx`` as the current context; returns the previous one."""
    previous = _state.ctx
    _state.ctx = ctx
    return previous


@dataclass
class OpenSpan:
    """A span that has begun but not ended (tracked by the tracer)."""

    ctx: TraceContext
    etype: str
    ts: float                       # simulated start time
    host: str = ""
    actor: str = ""
    fields: dict = field(default_factory=dict)
    #: whether begin_span installed ctx as the thread's current context
    installed: bool = False
    #: the context to restore at end_span (when installed)
    prev: TraceContext | None = None
    #: set once ended (or force-closed by a host failure)
    closed: bool = False
