"""Declarative SLO rules evaluated per telemetry window.

A rule is one line of the grammar::

    <name>: <stat>(<metric>) <= <threshold> [over <k>]

    rpc-p99: p99(rpc.latency:*) <= 5.0 over 4

``stat`` selects the measurement: ``rate`` / ``sum`` read counters
(``rate`` is events per simulated second over the last ``k`` windows),
``p50`` / ``p95`` / ``p99`` / ``mean`` / ``max`` / ``min`` / ``count``
read the merge of the last ``k`` histogram deltas.  A trailing ``*`` in
``metric`` globs over metric names (e.g. every ``rpc.latency:<kind>``
histogram); the *worst* matching metric is the rule's value, so one rule
covers a family.

The :class:`SLOWatcher` holds parsed rules plus per-(rule, host) breach
state.  The domain manager calls :meth:`SLOWatcher.observe_window` every
time a heartbeat delta lands in the :class:`~repro.obs.timeseries.ClusterMetrics`;
a breach fires an ``slo.alert`` trace event (which is also a flight
recorder trigger) on the healthy-to-breached transition and then at most
every ``refire_windows`` windows while the breach persists — sustained
overload doesn't flood the ring.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.obs.events import SLO_ALERT
from repro.obs.timeseries import ClusterMetrics, HostSeries

_COUNTER_STATS = frozenset({"rate", "sum"})
_HIST_STATS = frozenset({"p50", "p95", "p99", "mean", "max", "min", "count"})

_RULE_RE = re.compile(
    r"^\s*(?P<name>[\w.-]+)\s*:\s*"
    r"(?P<stat>rate|sum|count|mean|max|min|p50|p95|p99)\s*"
    r"\(\s*(?P<metric>[^\s()]+)\s*\)\s*<=\s*"
    r"(?P<threshold>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*"
    r"(?:over\s+(?P<windows>[0-9]+)\s*)?$"
)

#: the rules every testbed watches unless overridden (ISSUE: rpc p99,
#: dropped-message rate, queue depth, pending-migration age)
DEFAULT_RULES = (
    "rpc-p99: p99(rpc.latency:*) <= 5.0 over 4",
    "drop-rate: rate(rpc.dropped:*) <= 0.5 over 4",
    "queue-depth: max(queue.depth) <= 64 over 2",
    "migrate-pending-age: max(migrate.pending_age) <= 30.0 over 4",
)


@dataclass(frozen=True)
class SLORule:
    """One parsed threshold rule; breach when measured value > threshold."""

    name: str
    stat: str
    metric: str          # may end with '*' to glob a metric family
    threshold: float
    windows: int = 1

    def __post_init__(self) -> None:
        if self.stat not in _COUNTER_STATS | _HIST_STATS:
            raise ValueError(f"unknown stat {self.stat!r}")
        if self.windows < 1:
            raise ValueError("rule window count must be positive")

    @property
    def text(self) -> str:
        return (f"{self.name}: {self.stat}({self.metric})"
                f" <= {self.threshold:g} over {self.windows}")


def parse_rule(text: str) -> SLORule:
    """Parse one line of the rule grammar (see module docstring)."""
    m = _RULE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable SLO rule: {text!r}")
    return SLORule(
        name=m.group("name"),
        stat=m.group("stat"),
        metric=m.group("metric"),
        threshold=float(m.group("threshold")),
        windows=int(m.group("windows") or 1),
    )


def _matching(pattern: str, names) -> list[str]:
    if pattern.endswith("*"):
        prefix = pattern[:-1]
        return sorted(n for n in names if n.startswith(prefix))
    return [pattern] if pattern in names else []


class SLOWatcher:
    """Evaluates rules against each host's window series as it grows."""

    def __init__(self, rules=None, refire_windows: int = 8) -> None:
        source = DEFAULT_RULES if rules is None else rules
        self.rules: list[SLORule] = [
            rule if isinstance(rule, SLORule) else parse_rule(rule)
            for rule in source
        ]
        self.refire_windows = refire_windows
        #: every alert ever fired, as JSON-safe dicts (newest last)
        self.alerts: list[dict] = []
        # (rule.name, host) -> (currently_breached, window_of_last_fire)
        self._state: dict[tuple[str, str], tuple[bool, int]] = {}

    # -- measurement ---------------------------------------------------------

    def _measure(self, rule: SLORule,
                 series: HostSeries) -> tuple[float, str] | None:
        """The rule's value on this host (worst matching metric), or
        None when no matching metric was observed in the window span."""
        tail = list(series.windows)[-rule.windows:]
        worst: tuple[float, str] | None = None
        if rule.stat in _COUNTER_STATS:
            names = set()
            for w in tail:
                names.update(w.counters)
            for name in _matching(rule.metric, names):
                if rule.stat == "rate":
                    value = series.rate(name, rule.windows)
                else:
                    value = series.counter_sum(name, rule.windows)
                if worst is None or value > worst[0]:
                    worst = (value, name)
            return worst
        names = set()
        for w in tail:
            names.update(w.histograms)
        for name in _matching(rule.metric, names):
            hist = series.histogram(name, rule.windows)
            if hist is None or not hist.count:
                continue
            value = float(getattr(hist, rule.stat))
            if worst is None or value > worst[0]:
                worst = (value, name)
        return worst

    # -- evaluation ----------------------------------------------------------

    def observe_window(self, cluster: ClusterMetrics, host: str,
                       now: float, tracer) -> list[dict]:
        """Evaluate every rule against ``host``'s series after a new
        window landed; fire ``slo.alert`` events for breaches."""
        series = cluster.series.get(host)
        if series is None:
            return []
        fired = []
        for rule in self.rules:
            measured = self._measure(rule, series)
            key = (rule.name, host)
            was_breached, last_fire = self._state.get(key, (False, -1))
            if measured is None:
                self._state[key] = (False, last_fire)
                continue
            value, metric = measured
            breached = value > rule.threshold
            if not breached:
                self._state[key] = (False, last_fire)
                continue
            window = series.total_windows
            refire_due = (window - last_fire) >= self.refire_windows
            if was_breached and not refire_due:
                self._state[key] = (True, last_fire)
                continue
            self._state[key] = (True, window)
            alert = {
                "rule": rule.name,
                "stat": rule.stat,
                "metric": metric,
                "value": value,
                "threshold": rule.threshold,
                "host": host,
                "window": window,
                "ts": now,
            }
            fired.append(alert)
            self.alerts.append(alert)
            if tracer is not None and tracer.enabled:
                tracer.emit(SLO_ALERT, ts=now, host=host, rule=rule.name,
                            stat=rule.stat, metric=metric, value=value,
                            threshold=rule.threshold, window=window)
        return fired
