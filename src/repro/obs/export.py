"""Exporters: Chrome trace_event JSON and a human text summary.

The Chrome format (load via ``chrome://tracing`` or https://ui.perfetto.dev)
maps naturally: our spans become ``ph: "X"`` complete events, instants
become ``ph: "i"``; hosts become pids and actors tids, so the timeline
groups one swimlane per machine.  Spans carrying a
:class:`~repro.obs.spans.TraceContext` export their ids in ``args``,
and each cross-host ``rpc.request`` -> ``rpc.exec`` parent/child pair
additionally becomes a flow-event arrow (``ph: "s"`` / ``ph: "f"``)
between the two machines' swimlanes.  Simulated seconds are scaled to
the format's microseconds.
"""

from __future__ import annotations

import json
from collections import defaultdict

from repro.obs.events import (
    MIGRATE,
    MIGRATE_STEP,
    OBJ_CREATE,
    OBJ_FREE,
    OBJ_INVOKE,
    PROC_SPAWN,
    RPC_DROP,
    RPC_EXEC,
    RPC_REPLY,
    RPC_REQUEST,
    TraceEvent,
)
from repro.obs.tracer import Tracer
from repro.util.tables import render_table

_US = 1_000_000.0  # trace_event timestamps are in microseconds


def to_chrome_trace(tracer: Tracer) -> dict:
    """The tracer's events as a Chrome ``trace_event`` JSON object."""
    pids: dict[str, int] = {}
    tids: dict[tuple[int, str], int] = {}
    out: list[dict] = []

    def pid_of(host: str) -> int:
        name = host or "<global>"
        if name not in pids:
            pids[name] = len(pids) + 1
            out.append({
                "name": "process_name", "ph": "M", "pid": pids[name],
                "tid": 0, "args": {"name": name},
            })
        return pids[name]

    def tid_of(pid: int, actor: str) -> int:
        key = (pid, actor or "-")
        if key not in tids:
            tids[key] = sum(1 for p, _ in tids if p == pid) + 1
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tids[key], "args": {"name": actor or "-"},
            })
        return tids[key]

    #: span_id -> (event, pid, tid) for the cross-host flow pass
    placed: dict[str, tuple[TraceEvent, int, int]] = {}

    for ev in tracer.events:
        pid = pid_of(ev.host)
        tid = tid_of(pid, ev.actor)
        args = dict(ev.fields)
        if ev.ctx is not None:
            args.update(ev.ctx.as_dict())
            if ev.is_span:
                placed[ev.ctx.span_id] = (ev, pid, tid)
        record = {
            "name": ev.etype,
            "cat": ev.etype.split(".", 1)[0],
            "pid": pid,
            "tid": tid,
            "ts": ev.ts * _US,
            "args": args,
        }
        if ev.is_span:
            record["ph"] = "X"
            record["dur"] = (ev.dur or 0.0) * _US
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)

    # Flow arrows: every child span on a different host than its parent
    # (request -> exec across the wire, exec -> reply chains, ...).
    flow_id = 0
    for span_id, (child, cpid, ctid) in placed.items():
        parent_id = child.ctx.parent_id if child.ctx else None
        if parent_id is None or parent_id not in placed:
            continue
        parent, ppid, ptid = placed[parent_id]
        if parent.host == child.host:
            continue
        flow_id += 1
        out.append({
            "name": "causal", "cat": "flow", "ph": "s", "id": flow_id,
            "pid": ppid, "tid": ptid, "ts": parent.ts * _US,
        })
        out.append({
            "name": "causal", "cat": "flow", "ph": "f", "bp": "e",
            "id": flow_id, "pid": cpid, "tid": ctid, "ts": child.ts * _US,
        })

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer), fh)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000.0:.3f}ms"


def render_summary(tracer: Tracer) -> str:
    """A text digest: RPC traffic, object activity, migrations, drops."""
    parts: list[str] = []

    rpc: dict[str, dict] = defaultdict(
        lambda: {"n": 0, "bytes": 0, "lat": 0.0, "lat_max": 0.0,
                 "p50": 0.0, "p95": 0.0, "p99": 0.0}
    )
    for ev in tracer.events_of(RPC_REQUEST):
        row = rpc[ev.fields.get("kind", "?")]
        row["n"] += 1
        row["bytes"] += ev.fields.get("nbytes", 0)
    snap = tracer.metrics.snapshot()
    for name, hist in snap["histograms"].items():
        if name.startswith("rpc.latency:"):
            row = rpc[name.split(":", 1)[1]]
            row["lat"] = hist["mean"]
            row["lat_max"] = hist["max"]
            row["p50"] = hist["p50"]
            row["p95"] = hist["p95"]
            row["p99"] = hist["p99"]
    if rpc:
        rows = [
            [kind, row["n"], row["bytes"], _fmt_s(row["lat"]),
             _fmt_s(row["p50"]), _fmt_s(row["p95"]), _fmt_s(row["p99"]),
             _fmt_s(row["lat_max"])]
            for kind, row in sorted(rpc.items(), key=lambda kv: -kv[1]["n"])
        ]
        parts.append(render_table(
            ["kind", "requests", "req bytes", "mean rtt", "p50", "p95",
             "p99", "max rtt"],
            rows, title="RPC traffic by kind",
        ))

    n_reply = len(tracer.events_of(RPC_REPLY))
    n_exec = len(tracer.events_of(RPC_EXEC))
    drops = tracer.events_of(RPC_DROP)
    spawns = len(tracer.events_of(PROC_SPAWN))
    parts.append(
        f"handlers executed: {n_exec}   replies: {n_reply}   "
        f"drops: {len(drops)}   processes spawned: {spawns}"
    )
    for ev in drops:
        parts.append(
            f"  drop [{ev.fields.get('stage', '?')}] "
            f"{ev.fields.get('kind', '?')} at t={ev.ts:.3f}: "
            f"{ev.fields.get('reason', '?')}"
        )

    created = len(tracer.events_of(OBJ_CREATE))
    freed = len(tracer.events_of(OBJ_FREE))
    invokes = tracer.events_of(OBJ_INVOKE)
    if created or invokes:
        modes: dict[str, int] = defaultdict(int)
        for ev in invokes:
            modes[ev.fields.get("mode", "?")] += 1
        mode_txt = ", ".join(
            f"{m}={n}" for m, n in sorted(modes.items())
        ) or "none"
        parts.append(
            f"objects: {created} created, {freed} freed; "
            f"invocations: {mode_txt}"
        )

    migrations = tracer.events_of(MIGRATE)
    if migrations:
        rows = []
        steps_by_obj: dict[str, list[TraceEvent]] = defaultdict(list)
        for ev in tracer.events_of(MIGRATE_STEP):
            steps_by_obj[ev.fields.get("obj_id", "?")].append(ev)
        for ev in migrations:
            obj_id = ev.fields.get("obj_id", "?")
            steps = " > ".join(
                s.fields.get("step", "?") for s in steps_by_obj[obj_id]
            )
            rows.append([
                obj_id, ev.fields.get("src", "?"), ev.fields.get("dst", "?"),
                _fmt_s(ev.dur or 0.0), steps,
            ])
        parts.append(render_table(
            ["object", "from", "to", "duration", "protocol steps"],
            rows, title="Migrations",
        ))

    counters = snap["counters"]
    if counters:
        rows = [[name, round(value, 3)]
                for name, value in sorted(counters.items())]
        parts.append(render_table(["counter", "value"], rows,
                                  title="Counters"))

    if not tracer.events:
        parts.append("(no events recorded)")
    span = [ev.ts for ev in tracer.events]
    if span:
        dropped = getattr(tracer, "dropped_events", 0)
        suffix = f" ({dropped} evicted by max_events)" if dropped else ""
        parts.insert(0, (
            f"trace: {len(tracer.events)} events over "
            f"{_fmt_s(max(span) - min(span))} simulated{suffix}"
        ))
    return "\n".join(parts)
