"""Counters and histograms aggregated per component.

The registry owns the only lock in the obs package; individual tracers
stay lock-free so the hot path (a guarded ``tracer.enabled`` check) costs
one attribute load when tracing is off.  Histogram buckets are log2 so
latencies spanning microseconds to minutes stay readable.

Histograms are *mergeable*: :meth:`Histogram.snapshot` preserves the raw
bucket table (not just derived percentiles), so snapshots taken on
different hosts can be recombined — :meth:`Histogram.merge` and
:meth:`Metrics.merge_snapshot` make cross-host p50/p95/p99 a matter of
adding bucket counts instead of being impossible.  Snapshots are plain
dicts of numbers, picklable and JSON-safe (bucket keys are ints; convert
to str for JSON).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


@dataclass
class Histogram:
    """Streaming summary of one observed quantity (no raw samples kept)."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # log2 bucket index; values <= 0 share the floor bucket.
        idx = math.frexp(value)[1] if value > 0.0 else -1074
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the log2 buckets.

        The rank is located in bucket order; within the bucket the value
        is linearly interpolated across the bucket's value range
        [2^(i-1), 2^i), then clamped to the observed min/max — so the
        estimate is exact at the extremes and at worst one bucket wide
        (a factor of 2) in between.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        seen = 0.0
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            if seen + n >= rank:
                lo = 0.0 if idx <= -1074 else math.ldexp(1.0, idx - 1)
                hi = math.ldexp(1.0, idx)
                estimate = lo + (rank - seen) / n * (hi - lo)
                return min(max(estimate, self.min), self.max)
            seen += n
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def snapshot(self) -> dict:
        """A picklable view.  ``buckets`` carries the raw log2 table so
        snapshots stay mergeable (see :meth:`from_snapshot`); the derived
        percentiles ride along for direct consumption."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": dict(self.buckets),
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Histogram":
        """Reconstruct a histogram from :meth:`snapshot` output (derived
        fields like ``mean``/``p50`` are recomputed, not trusted)."""
        count = int(snap.get("count", 0))
        hist = cls(
            count=count,
            total=float(snap.get("sum", 0.0)),
            min=float(snap["min"]) if count else math.inf,
            max=float(snap["max"]) if count else -math.inf,
            buckets={int(k): int(v)
                     for k, v in snap.get("buckets", {}).items()},
        )
        return hist

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place (and return self).

        count/sum/min/max combine exactly; bucket counts add, so merged
        percentiles are as accurate as having observed the union of both
        sample streams (at worst one log2 bucket wide, like any single
        histogram's estimate)."""
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        return self

class Metrics:
    """Thread-safe registry of named counters and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> dict:
        """A picklable point-in-time view: {'counters': ..., 'histograms': ...}."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in self._histograms.items()
                },
            }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (or histogram-delta) dict from another
        registry — typically another host's — into this one.  Counters
        add; histograms merge bucket-wise, so cross-host percentiles come
        from the union of the per-host sample streams."""
        counters = snap.get("counters", {})
        histograms = snap.get("histograms", {})
        incoming = {
            name: Histogram.from_snapshot(h)
            for name, h in histograms.items()
        }
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, other in incoming.items():
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = other
                else:
                    mine.merge(other)


def merge_snapshots(snaps) -> dict:
    """Merge an iterable of :meth:`Metrics.snapshot` dicts into one
    combined snapshot — the cluster-wide view of per-host registries."""
    merged = Metrics()
    for snap in snaps:
        merged.merge_snapshot(snap)
    return merged.snapshot()


def _histogram_delta(new: dict, old: dict | None) -> dict | None:
    """Growth of one histogram between two snapshots of the same
    registry, or None if nothing was observed in between.

    count/sum/buckets are exact differences.  min/max cannot be windowed
    from cumulative state, so the *cumulative* extremes are carried —
    merging a full delta sequence therefore reproduces the cumulative
    histogram exactly (the first delta's extremes already bound every
    earlier value)."""
    if not new.get("count"):
        return None
    if old is None:
        delta = dict(new)
        delta["buckets"] = dict(new.get("buckets", {}))
        return delta
    d_count = int(new["count"]) - int(old.get("count", 0))
    if d_count <= 0:
        return None
    old_buckets = old.get("buckets", {})
    buckets = {}
    for idx, n in new.get("buckets", {}).items():
        grown = int(n) - int(old_buckets.get(idx, 0))
        if grown > 0:
            buckets[idx] = grown
    return {
        "count": d_count,
        "sum": float(new["sum"]) - float(old.get("sum", 0.0)),
        "min": new["min"],
        "max": new["max"],
        "buckets": buckets,
    }


def snapshot_delta(new: dict, old: dict | None) -> dict:
    """The growth between two :meth:`Metrics.snapshot` views of the same
    registry: ``{'counters': {...}, 'histograms': {...}}`` with only the
    entries that changed.  This is what one NAS heartbeat ships."""
    old_counters = (old or {}).get("counters", {})
    old_hists = (old or {}).get("histograms", {})
    counters = {}
    for name, value in new.get("counters", {}).items():
        grown = value - old_counters.get(name, 0.0)
        if grown:
            counters[name] = grown
    histograms = {}
    for name, hist in new.get("histograms", {}).items():
        delta = _histogram_delta(hist, old_hists.get(name))
        if delta is not None:
            histograms[name] = delta
    return {"counters": counters, "histograms": histograms}
