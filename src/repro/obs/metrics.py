"""Counters and histograms aggregated per component.

The registry owns the only lock in the obs package; individual tracers
stay lock-free so the hot path (a guarded ``tracer.enabled`` check) costs
one attribute load when tracing is off.  Histogram buckets are log2 so
latencies spanning microseconds to minutes stay readable.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


@dataclass
class Histogram:
    """Streaming summary of one observed quantity (no raw samples kept)."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # log2 bucket index; values <= 0 share the floor bucket.
        idx = math.frexp(value)[1] if value > 0.0 else -1074
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the log2 buckets.

        The rank is located in bucket order; within the bucket the value
        is linearly interpolated across the bucket's value range
        [2^(i-1), 2^i), then clamped to the observed min/max — so the
        estimate is exact at the extremes and at worst one bucket wide
        (a factor of 2) in between.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        seen = 0.0
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            if seen + n >= rank:
                lo = 0.0 if idx <= -1074 else math.ldexp(1.0, idx - 1)
                hi = math.ldexp(1.0, idx)
                estimate = lo + (rank - seen) / n * (hi - lo)
                return min(max(estimate, self.min), self.max)
            seen += n
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class Metrics:
    """Thread-safe registry of named counters and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> dict:
        """A picklable point-in-time view: {'counters': ..., 'histograms': ...}."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in self._histograms.items()
                },
            }
