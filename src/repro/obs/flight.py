"""The failure flight recorder: automatic incident capture.

When something goes wrong — a host dies, an RPC gives up, the sanitizer
detects a deadlock or a risky migration, an SLO breaches — the moment is
already slipping out of the tracer's ring buffer.  The
:class:`FlightRecorder` hooks those trigger events and snapshots the
cluster's state *at that instant* into a JSON **incident bundle**:

========================  =============================================
``events``                the tail of the tracer ring (last N events)
``open_spans``            spans in flight when the trigger fired
``failed_hosts``          hosts the tracer knows are dead
``metrics``               merged cluster metrics, bucket-level
``host_metrics``          the per-host registries behind the merge
``nas``                   NAS snapshot history / membership (provider)
``critical_path``         the affected trace's critical path
``slo_alerts``            every SLO alert fired so far
========================  =============================================

Trigger surface: ``host.failed``, ``slo.alert`` and ``rpc.timeout``
trace events (registered via :meth:`Tracer.on_event`), plus explicit
:meth:`record` calls from the sanitizer's failure hooks
(``SanDeadlockError``, ``san-migrate-pending``).  Captures are debounced
per trigger type (``min_interval`` simulated seconds) so an RPC-timeout
storm yields one bundle, not hundreds.

Bundles are kept in memory (``incidents``, newest last, bounded) and —
when ``incident_dir`` is set — written to ``<dir>/<incident_id>.json``
for ``repro incidents`` to render.
"""

from __future__ import annotations

import json
import os
from collections import deque

from repro.obs.critical_path import critical_path
from repro.obs.events import (
    FLIGHT_RECORD,
    HOST_FAILED,
    RPC_TIMEOUT,
    SLO_ALERT,
    TraceEvent,
)
from repro.obs.timeseries import _jsonable

#: trigger names for the sanitizer-side hooks (not trace etypes)
TRIGGER_DEADLOCK = "san-deadlock"
TRIGGER_MIGRATE_PENDING = "san-migrate-pending"

_EVENT_TRIGGERS = (HOST_FAILED, SLO_ALERT, RPC_TIMEOUT)


def _field_doc(fields: dict) -> dict:
    return {
        k: v if isinstance(v, (str, int, float, bool, type(None))) else repr(v)
        for k, v in fields.items()
    }


def _event_doc(event: TraceEvent) -> dict:
    doc = {
        "ts": event.ts,
        "etype": event.etype,
        "host": event.host,
        "actor": event.actor,
        "dur": event.dur,
        "fields": _field_doc(event.fields),
    }
    if event.ctx is not None:
        doc["trace_id"] = event.ctx.trace_id
        doc["span_id"] = event.ctx.span_id
        doc["parent_id"] = event.ctx.parent_id
    return doc


class FlightRecorder:
    """Captures incident bundles on failure triggers.

    ``cluster_provider`` / ``nas_provider`` are zero-argument callables
    returning the live :class:`~repro.obs.timeseries.ClusterMetrics`
    (or None) and a JSON-safe NAS history document; they are supplied by
    the runtime wiring (:mod:`repro.cluster.builder`) and called only at
    capture time, never on the hot path.
    """

    def __init__(self, tracer, *, cluster_provider=None, nas_provider=None,
                 slo_provider=None, incident_dir: str | None = None,
                 ring_tail: int = 400, min_interval: float = 1.0,
                 max_incidents: int = 32) -> None:
        self.tracer = tracer
        self.cluster_provider = cluster_provider
        self.nas_provider = nas_provider
        self.slo_provider = slo_provider
        self.incident_dir = incident_dir
        self.ring_tail = ring_tail
        self.min_interval = min_interval
        #: captured bundles, newest last (oldest evicted past the cap)
        self.incidents: deque[dict] = deque(maxlen=max_incidents)
        self.suppressed = 0
        self._seq = 0
        self._last_capture: dict[str, float] = {}
        self._recording = False
        self._attached = False

    # -- trigger wiring ------------------------------------------------------

    def attach(self) -> None:
        """Register the trace-event triggers on the tracer."""
        if self._attached or not getattr(self.tracer, "on_event", None):
            return
        for etype in _EVENT_TRIGGERS:
            self.tracer.on_event(etype, self._on_trigger_event)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        for etype in _EVENT_TRIGGERS:
            self.tracer.remove_trigger(etype, self._on_trigger_event)
        self._attached = False

    def _on_trigger_event(self, event: TraceEvent) -> None:
        context = dict(_field_doc(event.fields))
        if event.host:
            context["host"] = event.host
        self.record(event.etype, ts=event.ts, event=event, **context)

    # -- capture -------------------------------------------------------------

    def record(self, trigger: str, ts: float, event: TraceEvent | None = None,
               **context) -> dict | None:
        """Capture a bundle for ``trigger`` at simulated time ``ts``.

        Returns the bundle, or None when debounced (same trigger type
        within ``min_interval``) or re-entered (a capture is already in
        progress — capturing can itself emit a ``flight.record`` event).
        """
        if self._recording:
            return None
        last = self._last_capture.get(trigger)
        if last is not None and (ts - last) < self.min_interval:
            self.suppressed += 1
            return None
        self._last_capture[trigger] = ts
        self._recording = True
        try:
            bundle = self._capture(trigger, ts, event, context)
            self.incidents.append(bundle)
            self._write(bundle)
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.emit(FLIGHT_RECORD, ts=ts, trigger=trigger,
                            incident_id=bundle["incident_id"])
            return bundle
        finally:
            self._recording = False

    def _capture(self, trigger: str, ts: float,
                 event: TraceEvent | None, context: dict) -> dict:
        self._seq += 1
        tracer = self.tracer
        bundle: dict = {
            "incident_id": f"inc-{self._seq:04d}-{trigger.replace('.', '-')}",
            "trigger": trigger,
            "ts": ts,
            "context": context,
        }
        events = list(getattr(tracer, "events", ()))
        tail = events[-self.ring_tail:] if self.ring_tail else events
        bundle["ring_len"] = len(events)
        bundle["dropped_events"] = getattr(tracer, "dropped_events", 0)
        bundle["events"] = [_event_doc(e) for e in tail]
        bundle["open_spans"] = [
            {
                "span_id": span.ctx.span_id,
                "trace_id": span.ctx.trace_id,
                "etype": span.etype,
                "ts": span.ts,
                "host": span.host,
                "actor": span.actor,
                "age": max(0.0, ts - span.ts),
                "fields": _field_doc(span.fields),
            }
            for span in list(getattr(tracer, "open_spans", {}).values())
        ]
        bundle["failed_hosts"] = sorted(getattr(tracer, "failed_hosts", ()))
        bundle["metrics"] = self._metrics_doc()
        bundle["nas"] = self._provided(self.nas_provider)
        bundle["slo_alerts"] = self._provided(self.slo_provider) or []
        bundle["critical_path"] = self._critical_path_doc(events, event)
        return bundle

    def _metrics_doc(self) -> dict:
        """Merged cluster metrics (bucket-level) plus the per-host
        registries the merge came from.  Prefers the NAS-shipped
        :class:`ClusterMetrics` aggregate; falls back to the tracer's
        own per-host registries, then its global registry."""
        cluster = None
        if self.cluster_provider is not None:
            try:
                cluster = self.cluster_provider()
            except Exception:
                cluster = None
        if cluster is not None and cluster.ingested:
            return {
                "source": "nas",
                "merged": _jsonable(cluster.merged_snapshot()),
                "hosts": {
                    host: _jsonable(cluster.host_snapshot(host))
                    for host in cluster.hosts()
                },
            }
        tracer = self.tracer
        host_metrics = getattr(tracer, "host_metrics", None) or {}
        if host_metrics:
            return {
                "source": "tracer",
                "merged": _jsonable(tracer.merged_host_metrics()),
                "hosts": {
                    host: _jsonable(host_metrics[host].snapshot())
                    for host in sorted(host_metrics)
                },
            }
        metrics = getattr(tracer, "metrics", None)
        return {
            "source": "global",
            "merged": _jsonable(metrics.snapshot()) if metrics else
            {"counters": {}, "histograms": {}},
            "hosts": {},
        }

    def _critical_path_doc(self, events: list[TraceEvent],
                           event: TraceEvent | None) -> dict | None:
        """The affected trace's critical path: the trigger event's trace
        when it has one, the main trace otherwise."""
        trace_id = None
        if event is not None and event.ctx is not None:
            trace_id = event.ctx.trace_id
        try:
            cp = critical_path(events, trace_id=trace_id)
            if cp is None and trace_id is not None:
                cp = critical_path(events)
            return cp.as_dict() if cp else None
        except Exception:
            return None

    def _provided(self, provider):
        if provider is None:
            return None
        try:
            return provider()
        except Exception:
            return None

    def _write(self, bundle: dict) -> None:
        if not self.incident_dir:
            return
        os.makedirs(self.incident_dir, exist_ok=True)
        path = os.path.join(self.incident_dir,
                            f"{bundle['incident_id']}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, indent=1, default=repr)
        bundle["path"] = path


# -- rendering ---------------------------------------------------------------


def load_bundle(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def render_incident(bundle: dict, max_events: int = 20) -> str:
    """A terminal summary of one incident bundle (``repro incidents``)."""
    lines = [
        f"incident {bundle.get('incident_id', '?')}  "
        f"trigger={bundle.get('trigger', '?')}  t={bundle.get('ts', 0.0):.3f}",
    ]
    context = bundle.get("context") or {}
    if context:
        ctx = "  ".join(f"{k}={v}" for k, v in sorted(context.items()))
        lines.append(f"  context: {ctx}")
    failed = bundle.get("failed_hosts") or []
    if failed:
        lines.append(f"  failed hosts: {', '.join(failed)}")
    lines.append(
        f"  ring: {len(bundle.get('events', []))} events captured "
        f"(of {bundle.get('ring_len', 0)} recorded, "
        f"{bundle.get('dropped_events', 0)} dropped)")
    open_spans = bundle.get("open_spans") or []
    if open_spans:
        lines.append(f"  open spans at capture: {len(open_spans)}")
        for span in sorted(open_spans, key=lambda s: -s.get("age", 0.0))[:8]:
            where = f" [{span['host']}]" if span.get("host") else ""
            lines.append(
                f"    {span.get('etype', '?')}{where}  "
                f"age={span.get('age', 0.0):.3f}s  "
                f"span={span.get('span_id', '?')}")
    metrics = bundle.get("metrics") or {}
    merged = metrics.get("merged") or {}
    hists = merged.get("histograms") or {}
    lines.append(
        f"  metrics ({metrics.get('source', '?')}): "
        f"{len(merged.get('counters', {}))} counters, "
        f"{len(hists)} histograms over "
        f"{len(metrics.get('hosts', {}))} hosts")
    for name in sorted(hists)[:6]:
        h = hists[name]
        lines.append(
            f"    {name}: n={h.get('count', 0)} p50={h.get('p50', 0.0):.4f} "
            f"p99={h.get('p99', 0.0):.4f} max={h.get('max', 0.0):.4f}")
    alerts = bundle.get("slo_alerts") or []
    if alerts:
        lines.append(f"  slo alerts so far: {len(alerts)}")
        for alert in alerts[-5:]:
            lines.append(
                f"    [{alert.get('host', '?')}] {alert.get('rule', '?')}: "
                f"{alert.get('stat', '?')}({alert.get('metric', '?')}) = "
                f"{alert.get('value', 0.0):.4f} > "
                f"{alert.get('threshold', 0.0):g} "
                f"at t={alert.get('ts', 0.0):.3f}")
    cp = bundle.get("critical_path")
    if cp:
        totals = cp.get("totals") or {}
        breakdown = "  ".join(
            f"{cat}={dur:.3f}s"
            for cat, dur in sorted(totals.items(), key=lambda kv: -kv[1]))
        lines.append(
            f"  critical path: trace {cp.get('trace_id', '?')} "
            f"makespan={cp.get('makespan', 0.0):.3f}s  {breakdown}")
    events = bundle.get("events") or []
    shown = events[-max_events:]
    if shown:
        lines.append(f"  last {len(shown)} events:")
        for e in shown:
            where = f" [{e['host']}]" if e.get("host") else ""
            mark = " !host_failed" if e.get("fields", {}).get("host_failed") \
                else ""
            lines.append(
                f"    t={e.get('ts', 0.0):.3f} {e.get('etype', '?')}"
                f"{where}{mark}")
    return "\n".join(lines)
