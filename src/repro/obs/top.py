"""``js-top``: a per-node, top-style view of a PySymphony run.

Two data paths feed the same frame type:

* **Live** (:func:`live_frame`) — called from a running application via
  :meth:`JSShell.top`: idle/memory come straight from ``sysmon``
  sampling, activity counters from the simulated machines, and in-flight
  spans from the tracer's open-span registry.
* **Post-hoc** (:func:`frames_from_trace`) — ``python -m repro top``
  runs the target under the tracer (virtual-time runs finish in host
  milliseconds) and reconstructs one frame per simulated-time window
  from the recorded events: RPC rates from ``rpc.request`` spans,
  CPU-busy from ``compute`` span overlap, idle/memory from the
  ``nas.sample`` fields, in-flight/slowest spans from span intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import events as ev
from repro.obs.events import TraceEvent
from repro.util.tables import render_table


@dataclass
class HostRow:
    """One node's line in a frame."""

    host: str
    alive: bool = True
    idle: float | None = None        # sysmon CPU idle (%)
    mem_mb: float | None = None      # JS memory in use (MB)
    cpu_busy: float | None = None    # fraction of the window in compute
    rpc_tx: int = 0                  # requests sent (window or cumulative)
    rpc_rx: int = 0                  # requests received
    inflight: int = 0                # open spans touching the frame time
    migrations: int = 0              # objects adopted (cumulative)
    slowest_open: str = ""           # oldest span still open, with age


@dataclass
class TopFrame:
    t: float                         # simulated frame time
    window: float                    # seconds covered (0 = cumulative)
    rows: list[HostRow] = field(default_factory=list)
    open_spans: int = 0
    events: int = 0


def _host_of_addr(addr: str) -> str:
    """'oa@milena' -> 'milena' (transport addresses print agent@host)."""
    return addr.rsplit("@", 1)[-1] if "@" in addr else addr


def _fmt(value, suffix: str = "", none: str = "-") -> str:
    if value is None:
        return none
    if isinstance(value, float):
        return f"{value:.1f}{suffix}"
    return f"{value}{suffix}"


def render_top_frame(frame: TopFrame) -> str:
    window = (f"window {frame.window:.2f}s" if frame.window
              else "cumulative")
    rows = []
    for row in sorted(frame.rows, key=lambda r: r.host):
        rows.append([
            row.host if row.alive else f"{row.host}!",
            _fmt(row.idle, "%"),
            "-" if row.cpu_busy is None else f"{row.cpu_busy * 100.0:.0f}%",
            _fmt(row.mem_mb),
            row.rpc_tx,
            row.rpc_rx,
            row.inflight,
            row.migrations,
            row.slowest_open or "-",
        ])
    table = render_table(
        ["node", "idle", "js cpu", "js mem MB", "rpc tx", "rpc rx",
         "in-flight", "migr", "slowest open span"],
        rows,
        title=(f"js-top  t={frame.t:.2f}s  {window}  "
               f"{len(frame.rows)} nodes  {frame.open_spans} open spans  "
               f"{frame.events} events"),
    )
    return table


def render_top(frames: list[TopFrame]) -> str:
    return "\n\n".join(render_top_frame(frame) for frame in frames)


# -- live path (JSShell.top) -----------------------------------------------


def live_frame(runtime) -> TopFrame:
    """A frame for *now*, from a running :class:`JSRuntime`."""
    from repro.sysmon import SysParam

    world = runtime.world
    tracer = world.tracer
    now = world.now()
    open_spans = list(tracer.open_spans.values()) if tracer.enabled else []
    frame = TopFrame(
        t=now, window=0.0, open_spans=len(open_spans),
        events=len(getattr(tracer, "events", ())),
    )
    for host in runtime.nas.known_hosts():
        machine = world.machine(host)
        row = HostRow(host=host, alive=not machine.failed)
        if not machine.failed:
            snap = runtime.nas.latest_snapshot(host)
            idle = snap.get(SysParam.IDLE)
            row.idle = float(idle) if idle is not None else None
        row.mem_mb = machine.js_mem_mb + machine.codebase_mem_mb
        row.rpc_tx = machine.counters.messages_sent
        row.rpc_rx = machine.counters.messages_received
        row.migrations = machine.counters.migrations_in
        mine = [s for s in open_spans if s.host == host]
        row.inflight = len(mine)
        if mine:
            oldest = min(mine, key=lambda s: s.ts)
            row.slowest_open = f"{oldest.etype} +{now - oldest.ts:.2f}s"
        frame.rows.append(row)
    return frame


# -- post-hoc path (repro top) ---------------------------------------------


def frames_from_trace(tracer, period: float | None = None,
                      max_frames: int = 60) -> list[TopFrame]:
    """Reconstruct per-window frames from a finished traced run."""
    events: list[TraceEvent] = sorted(tracer.events, key=lambda e: e.ts)
    if not events:
        return []
    t_min = events[0].ts
    t_max = max(e.ts + (e.dur or 0.0) for e in events)
    makespan = max(t_max - t_min, 1e-9)
    if period is None or period <= 0.0:
        period = makespan / min(max_frames, 8)
    n_frames = max(1, min(max_frames, int(makespan / period + 0.999999)))
    period = makespan / n_frames

    hosts = sorted({e.host for e in events if e.host})
    spans = [e for e in events if e.dur is not None and e.host]
    computes = [e for e in spans if e.etype == ev.COMPUTE]
    requests = [e for e in events if e.etype == ev.RPC_REQUEST]
    samples: dict[str, list[TraceEvent]] = {}
    for e in events:
        if e.etype == ev.NAS_SAMPLE and e.host:
            samples.setdefault(e.host, []).append(e)
    adoptions = [
        e for e in events
        if e.etype == ev.MIGRATE_STEP and e.fields.get("step") == "adopted"
    ]
    failures = {e.host: e.ts for e in events if e.etype == ev.HOST_FAILED}

    frames: list[TopFrame] = []
    for k in range(1, n_frames + 1):
        t = t_min + k * period
        lo = t - period
        live = [s for s in spans if s.ts <= t < s.ts + (s.dur or 0.0)]
        frame = TopFrame(t=t, window=period, open_spans=len(live),
                         events=sum(1 for e in events if e.ts <= t))
        for host in hosts:
            row = HostRow(host=host,
                          alive=failures.get(host, t_max + 1.0) > t)
            row.rpc_tx = sum(1 for r in requests
                             if r.host == host and lo < r.ts <= t)
            row.rpc_rx = sum(
                1 for r in requests
                if _host_of_addr(str(r.fields.get("dst", ""))) == host
                and lo < r.ts + (r.dur or 0.0) <= t
            )
            busy = 0.0
            for c in computes:
                if c.host != host:
                    continue
                busy += max(0.0, min(t, c.ts + (c.dur or 0.0)) - max(lo, c.ts))
            row.cpu_busy = min(1.0, busy / period)
            latest = None
            for s in samples.get(host, ()):
                if s.ts <= t:
                    latest = s
                else:
                    break
            if latest is not None:
                row.idle = latest.fields.get("idle")
                row.mem_mb = latest.fields.get("js_mem_mb")
            row.migrations = sum(
                1 for a in adoptions if a.host == host and a.ts <= t
            )
            mine = [s for s in live if s.host == host]
            row.inflight = len(mine)
            if mine:
                oldest = min(mine, key=lambda s: s.ts)
                row.slowest_open = f"{oldest.etype} +{t - oldest.ts:.2f}s"
            frame.rows.append(row)
        frames.append(frame)
    return frames
