"""The trace-event vocabulary: every typed event the runtime can emit.

One :class:`TraceEvent` is one timestamped fact about the runtime, in
simulated seconds.  Events with a ``dur`` are *spans* (they cover a time
interval); events without one are *instants*.  The schema below is the
contract between the hook points (transport, kernel, agents) and the
exporters in :mod:`repro.obs.export`; DESIGN.md documents it for users.

Event types and their fields
----------------------------
``rpc.request`` (span, dur = wire time incl. FIFO wait)
    kind, nbytes, src, dst, msg_id, oneway
``rpc.reply`` (span, dur = wire time of the reply leg)
    kind (``<kind>:reply``), nbytes, src, dst, msg_id
``rpc.exec`` (span, dur = handler execution time)
    kind, msg_id, error (True when the handler raised)
``rpc.drop`` (instant)
    kind, stage (``request`` | ``reply``), reason
``proc.spawn`` (instant)
    pid; actor = process name
``compute`` (span, dur = modelled execution time)
    flops; host = executing machine
``obj.create`` / ``obj.free`` (instant)
    obj_id, class_name, location
``obj.invoke`` (span, dur = caller-observed invocation time; for
one-sided calls dur covers dispatch of the spawned local worker or the
local resolve-and-send when remote)
    obj_id, method, mode (``sync`` | ``async`` | ``oneway`` | ``batch``)
``obj.invoke.batch`` (span, dur = ship-to-collect time of one
``INVOKE_BATCH`` message; parents the per-call ``obj.invoke`` spans of
a ``minvoke`` group)
    dest, size, coalesced (True when ainvoke bursts were buffered)
``obj.dispatch`` (span, dur = holder-side execution incl. compute charge)
    obj_id, method, flops
``obj.wait`` (span, dur = time a ``ResultHandle.get_result`` blocked)
    label; parent = the async ``obj.invoke`` span it waits for
``lock.wait`` (span, dur = holder-side queueing before dispatch)
    obj_id, method (serial dispatch / migration quiescing delay)
``obj.fetch_state`` (instant)
    obj_id, nbytes
``migrate`` (span, dur = full ao-side protocol time)
    obj_id, src, dst, error
``migrate.step`` (instant; the Figure-3 sequence)
    obj_id, step (``out-start`` -> ``quiesced`` -> ``pushed`` ->
    ``tombstone`` on pa1; ``adopted`` on pa2)
``persist.store`` / ``persist.load`` (span)
    obj_id / key; paper Section 4.7 persistence traffic
``classload`` (span, dur = codebase distribution time)
    classes, nbytes, hosts
``app`` (span, dur = whole application run; the root of an app's trace)
    app; actor = application process name
``nas.sample`` (span, dur = one monitoring tick incl. report exchange)
    host, idle, avail_mem_mb, js_mem_mb
``nas.probe`` (instant)
    peer, ok (heartbeat outcome)
``nas.release`` / ``nas.takeover`` (instant)
    the NAS fault-tolerance protocol firing
``host.failed`` (instant)
    a machine failing; open spans on it are force-closed with a
    ``host_failed: True`` field (their events are kept, not lost)
``host.restarted`` (instant)
    a crashed machine coming back (fresh holder tables, NAS
    re-registration); later events on the host lose the
    ``host_failed`` taint
``rpc.timeout`` (instant)
    kind, msg_id, waited; a caller gave up on a reply
    (:class:`~repro.transport.errors.RPCTimeoutError`)
``rpc.retry`` (instant)
    kind, dst, attempt, backoff, error; the reliability layer is about
    to re-send a failed attempt (see :mod:`repro.rmi.reliability`)
``circuit.state`` (instant)
    host, state (``closed`` | ``open`` | ``half-open``); the per-host
    circuit breaker changed state
``chaos.inject`` (instant)
    fault (``drop`` | ``duplicate`` | ``delay`` | ``reorder`` |
    ``partition`` | ``stall`` | ``crash`` | ``restart``), stage, kind,
    src, dst; the chaos plane injected one fault
    (see :mod:`repro.chaos`)
``slo.alert`` (instant)
    rule, metric, value, threshold, window; an SLO rule breached for
    one evaluation window (see :mod:`repro.obs.slo`)
``flight.record`` (instant)
    trigger, incident_id; the flight recorder captured a bundle
    (see :mod:`repro.obs.flight`)

Spans additionally carry a :class:`repro.obs.spans.TraceContext` in
``ctx`` (trace_id / span_id / parent_id); instants inherit the emitting
process's current context so they can be located inside the span tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.spans import TraceContext

RPC_REQUEST = "rpc.request"
RPC_REPLY = "rpc.reply"
RPC_EXEC = "rpc.exec"
RPC_DROP = "rpc.drop"

PROC_SPAWN = "proc.spawn"
COMPUTE = "compute"

OBJ_CREATE = "obj.create"
OBJ_FREE = "obj.free"
OBJ_INVOKE = "obj.invoke"
OBJ_INVOKE_BATCH = "obj.invoke.batch"
OBJ_DISPATCH = "obj.dispatch"
OBJ_WAIT = "obj.wait"
LOCK_WAIT = "lock.wait"
OBJ_FETCH_STATE = "obj.fetch_state"

MIGRATE = "migrate"
MIGRATE_STEP = "migrate.step"

PERSIST_STORE = "persist.store"
PERSIST_LOAD = "persist.load"
CLASSLOAD = "classload"
APP = "app"

NAS_SAMPLE = "nas.sample"
NAS_PROBE = "nas.probe"
NAS_RELEASE = "nas.release"
NAS_TAKEOVER = "nas.takeover"

HOST_FAILED = "host.failed"
HOST_RESTARTED = "host.restarted"
RPC_TIMEOUT = "rpc.timeout"
RPC_RETRY = "rpc.retry"
CIRCUIT_STATE = "circuit.state"
CHAOS_INJECT = "chaos.inject"
SLO_ALERT = "slo.alert"
FLIGHT_RECORD = "flight.record"


@dataclass
class TraceEvent:
    """One timestamped runtime fact (span when ``dur`` is set)."""

    ts: float                      # simulated seconds
    etype: str                     # one of the constants above
    host: str = ""                 # machine it happened on ("" = global)
    actor: str = ""                # agent / process name
    dur: float | None = None       # span duration in simulated seconds
    fields: dict = field(default_factory=dict)
    ctx: TraceContext | None = None  # causal identity (spans always set it)

    @property
    def is_span(self) -> bool:
        return self.dur is not None
