"""Prometheus text exposition of a metrics snapshot.

``render_prom`` turns one registry snapshot (typically the merge of all
per-host registries) into the Prometheus text format, so ``repro
metrics --prom`` output can be scraped, diffed or piped into promtool.

Name mapping: the registry's ``family:variant`` convention (e.g.
``rpc.latency:invoke``, ``dispatch:greta``) splits into a metric family
and a ``variant`` label; dots become underscores and a ``repro_``
prefix namespaces everything::

    rpc.bytes              -> repro_rpc_bytes_total
    rpc.latency:invoke     -> repro_rpc_latency{variant="invoke"}
    dispatch:greta         -> repro_dispatch_total{variant="greta"}

Counters are ``counter`` families with a ``_total`` suffix.  Histograms
become native Prometheus histograms: the log2 bucket table is emitted as
*cumulative* ``_bucket`` samples with ``le`` = each bucket's upper value
edge (``2^idx``), closed by ``le="+Inf"``, plus ``_sum`` and ``_count``
— so quantiles computed by a scraper match the registry's own
bucket-interpolated estimates.
"""

from __future__ import annotations

import math
import re

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _split(name: str) -> tuple[str, str]:
    """``family:variant`` -> (sanitized family, variant label value)."""
    family, _, variant = name.partition(":")
    return _NAME_OK.sub("_", family), variant


def _labels(variant: str) -> str:
    if not variant:
        return ""
    escaped = variant.replace("\\", r"\\").replace('"', r'\"')
    return '{variant="' + escaped + '"}'


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _bucket_edge(idx: int) -> float:
    """Upper value edge of log2 bucket ``idx`` ([2^(idx-1), 2^idx))."""
    if idx <= -1074:
        return 0.0
    return math.ldexp(1.0, idx)


def render_prom(snapshot: dict, prefix: str = "repro") -> str:
    """The snapshot as Prometheus exposition text (trailing newline)."""
    lines: list[str] = []

    counters = snapshot.get("counters", {})
    families: dict[str, list[tuple[str, float]]] = {}
    for name in sorted(counters):
        family, variant = _split(name)
        families.setdefault(family, []).append((variant, counters[name]))
    for family in sorted(families):
        metric = f"{prefix}_{family}_total"
        lines.append(f"# TYPE {metric} counter")
        for variant, value in families[family]:
            lines.append(f"{metric}{_labels(variant)} {_fmt(value)}")

    histograms = snapshot.get("histograms", {})
    hist_families: dict[str, list[tuple[str, dict]]] = {}
    for name in sorted(histograms):
        family, variant = _split(name)
        hist_families.setdefault(family, []).append(
            (variant, histograms[name]))
    for family in sorted(hist_families):
        metric = f"{prefix}_{family}"
        lines.append(f"# TYPE {metric} histogram")
        for variant, hist in hist_families[family]:
            labels = _labels(variant)
            buckets = {int(k): int(v)
                       for k, v in hist.get("buckets", {}).items()}
            cumulative = 0
            for idx in sorted(buckets):
                cumulative += buckets[idx]
                le = _fmt(_bucket_edge(idx))
                if labels:
                    tag = labels[:-1] + f',le="{le}"}}'
                else:
                    tag = f'{{le="{le}"}}'
                lines.append(f"{metric}_bucket{tag} {cumulative}")
            if labels:
                inf_tag = labels[:-1] + ',le="+Inf"}'
            else:
                inf_tag = '{le="+Inf"}'
            lines.append(
                f"{metric}_bucket{inf_tag} {int(hist.get('count', 0))}")
            lines.append(
                f"{metric}_sum{labels} {_fmt(float(hist.get('sum', 0.0)))}")
            lines.append(
                f"{metric}_count{labels} {int(hist.get('count', 0))}")

    return "\n".join(lines) + "\n" if lines else ""
