"""The tracer: null by default, recording when installed.

Hook points throughout the runtime hold a tracer reference and guard the
expensive part (building a field dict, deriving a span context) behind
``tracer.enabled``::

    if tracer.enabled:
        span = tracer.begin_span(RPC_EXEC, ts=now, host=..., parent=ctx)

:class:`NullTracer` keeps that check a single attribute load, so the
instrumented runtime costs nothing measurable when tracing is off — in
particular, no :class:`~repro.obs.spans.TraceContext` is ever allocated.

:class:`Tracer` appends :class:`TraceEvent` records to a deque (append
is atomic under the GIL, so the uncapped event path takes no lock — see
DESIGN.md), keeps a per-etype index so ``events_of`` is O(result) rather
than an O(n) scan, and mirrors aggregates into a :class:`Metrics`
registry.  With ``max_events`` set it becomes a ring buffer: the oldest
event is evicted on overflow and ``dropped_events`` counts the loss
(eviction mutates the deque, the index and the counter together, so only
capped tracers pay for a lock).

Spans come in two shapes:

* ``emit_span`` — a span whose duration is already known (the transport
  computes wire time up front); records immediately, returns the
  :class:`TraceContext` so it can be propagated (e.g. onto a Message).
* ``begin_span`` / ``end_span`` — a span covering a code region; while
  open it is tracked in ``open_spans`` (the live-introspection source
  for ``repro top``) and, by default, installed as the calling process's
  current context so nested spans parent correctly.

Installation is ambient: ``set_tracer()`` / the ``tracing()`` context
manager set a module-level current tracer which ``SimWorld`` picks up at
construction time, so application code never threads a tracer through
the runtime explicitly.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.obs import spans as _spans
from repro.obs.events import HOST_FAILED, HOST_RESTARTED, TraceEvent
from repro.obs.metrics import Metrics
from repro.obs.spans import OpenSpan, TraceContext

#: sentinel meaning "parent the span under the current thread context"
_USE_CURRENT = object()


class NullTracer:
    """The do-nothing tracer every component holds by default."""

    enabled = False

    def emit(self, etype: str, ts: float, host: str = "", actor: str = "",
             dur: float | None = None, ctx: TraceContext | None = None,
             **fields) -> None:
        pass

    def count(self, name: str, value: float = 1.0, host: str = "") -> None:
        pass

    def observe(self, name: str, value: float, host: str = "") -> None:
        pass

    # -- span API (all no-ops; hook points never reach these when the
    # -- ``tracer.enabled`` guard is respected) ------------------------------

    def emit_span(self, etype: str, ts: float, dur: float = 0.0,
                  host: str = "", actor: str = "", parent=_USE_CURRENT,
                  **fields) -> TraceContext | None:
        return None

    def begin_span(self, etype: str, ts: float, host: str = "",
                   actor: str = "", parent=_USE_CURRENT,
                   install: bool = True, **fields) -> OpenSpan | None:
        return None

    def end_span(self, span: OpenSpan | None, ts: float,
                 restore: bool = True, **fields) -> None:
        pass

    def host_failed(self, host: str, ts: float) -> None:
        pass

    def host_restarted(self, host: str, ts: float) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records typed events and aggregates counters/histograms."""

    enabled = True

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be positive (or None)")
        self.events: deque[TraceEvent] = deque()
        self.metrics = Metrics()
        self.max_events = max_events
        self.dropped_events = 0
        #: span_id -> OpenSpan for every begun-but-not-ended span
        self.open_spans: dict[str, OpenSpan] = {}
        self._by_etype: dict[str, deque[TraceEvent]] = {}
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._failed_hosts: set[str] = set()
        #: host -> Metrics: the per-host registries behind the cluster
        #: telemetry plane.  Hook points that know which machine an
        #: aggregate belongs to pass ``host=`` and the sample lands both
        #: globally and in that host's registry, so merging the per-host
        #: registries reproduces the global one.
        self.host_metrics: dict[str, Metrics] = {}
        #: etype -> callbacks fired synchronously after an event of that
        #: type records (the flight recorder's trigger surface).  Empty
        #: for ordinary tracers, so emit pays one falsy check.
        self._triggers: dict[str, list] = {}
        # Ring eviction touches the deque, the index and the drop counter
        # together; only capped tracers pay for the lock.
        self._ring_lock = threading.Lock() if max_events else None

    # -- recording -----------------------------------------------------------

    def emit(self, etype: str, ts: float, host: str = "", actor: str = "",
             dur: float | None = None, ctx: TraceContext | None = None,
             **fields) -> None:
        if ctx is None:
            # Instants inherit the emitting process's current span, so
            # they can be located inside the span tree.
            ctx = _spans.current_context()
        if self._failed_hosts and host in self._failed_hosts:
            fields.setdefault("host_failed", True)
        event = TraceEvent(ts=ts, etype=etype, host=host, actor=actor,
                           dur=dur, fields=fields, ctx=ctx)
        if self._ring_lock is None:
            # justification: an uncapped tracer never evicts, so this
            # instance takes no lock anywhere — appends are GIL-atomic.
            self.events.append(event)  # symlint: disable=unguarded-write
            self._index(etype).append(event)
            self._fire_triggers(event)
            return
        with self._ring_lock:
            if len(self.events) >= (self.max_events or 0):
                evicted = self.events.popleft()
                old_index = self._by_etype.get(evicted.etype)
                if old_index:
                    old_index.popleft()
                self.dropped_events += 1
            self.events.append(event)
            self._index(etype).append(event)
        # Callbacks may do arbitrary work (the flight recorder snapshots
        # the whole ring); never run them under the ring lock.
        self._fire_triggers(event)

    def _index(self, etype: str) -> deque[TraceEvent]:
        index = self._by_etype.get(etype)
        if index is None:
            # justification: called from emit, which is either lock-free
            # (uncapped: GIL-atomic dict store) or already holds
            # _ring_lock (capped path).
            index = self._by_etype[etype] = deque()  # symlint: disable=unguarded-write
        return index

    def count(self, name: str, value: float = 1.0, host: str = "") -> None:
        self.metrics.count(name, value)
        if host:
            self.metrics_for(host).count(name, value)

    def observe(self, name: str, value: float, host: str = "") -> None:
        self.metrics.observe(name, value)
        if host:
            self.metrics_for(host).observe(name, value)

    def metrics_for(self, host: str) -> Metrics:
        """The per-host metrics registry for ``host`` (created lazily)."""
        registry = self.host_metrics.get(host)
        if registry is None:
            # justification: GIL-atomic dict store; worst case a racing
            # creation loses a handful of samples at first touch.
            registry = self.host_metrics[host] = Metrics()  # symlint: disable=unguarded-write
        return registry

    def merged_host_metrics(self) -> dict:
        """One snapshot merging every per-host registry — the tracer-side
        'merge the per-host histograms by hand' view of the cluster."""
        from repro.obs.metrics import merge_snapshots

        return merge_snapshots(
            self.host_metrics[h].snapshot()
            for h in sorted(self.host_metrics)
        )

    def events_of(self, etype: str) -> list[TraceEvent]:
        return list(self._by_etype.get(etype, ()))

    # -- triggers ------------------------------------------------------------

    def on_event(self, etype: str, callback) -> None:
        """Register ``callback(event)`` to run synchronously after every
        recorded event of ``etype``.  Callbacks must not emit (re-entry
        is not guarded); the flight recorder is the intended consumer."""
        self._triggers.setdefault(etype, []).append(callback)

    def remove_trigger(self, etype: str, callback) -> None:
        callbacks = self._triggers.get(etype)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)
            if not callbacks:
                del self._triggers[etype]

    def _fire_triggers(self, event: TraceEvent) -> None:
        if not self._triggers:
            return
        for callback in tuple(self._triggers.get(event.etype, ())):
            callback(event)

    @property
    def failed_hosts(self) -> frozenset:
        """Hosts the tracer has seen fail (``host_failed`` was called)."""
        return frozenset(self._failed_hosts)

    # -- spans ---------------------------------------------------------------

    def new_context(self, parent: TraceContext | None) -> TraceContext:
        """A fresh span context: child of ``parent``, or a new trace root."""
        span_id = f"s{next(self._span_ids)}"
        if parent is None:
            return TraceContext(f"t{next(self._trace_ids)}", span_id, None)
        return TraceContext(parent.trace_id, span_id, parent.span_id)

    def emit_span(self, etype: str, ts: float, dur: float = 0.0,
                  host: str = "", actor: str = "", parent=_USE_CURRENT,
                  **fields) -> TraceContext:
        """Record a span whose duration is already known; returns its
        context so callers can propagate it (e.g. onto a Message)."""
        parent_ctx = _spans.current_context() if parent is _USE_CURRENT \
            else parent
        ctx = self.new_context(parent_ctx)
        self.emit(etype, ts=ts, host=host, actor=actor, dur=dur, ctx=ctx,
                  **fields)
        return ctx

    def begin_span(self, etype: str, ts: float, host: str = "",
                   actor: str = "", parent=_USE_CURRENT,
                   install: bool = True, **fields) -> OpenSpan:
        """Open a span covering a code region.  With ``install`` (the
        default) it becomes the calling process's current context until
        ``end_span``; pass ``install=False`` when opening on behalf of
        another process (e.g. an async worker not yet running)."""
        parent_ctx = _spans.current_context() if parent is _USE_CURRENT \
            else parent
        ctx = self.new_context(parent_ctx)
        span = OpenSpan(ctx=ctx, etype=etype, ts=ts, host=host, actor=actor,
                        fields=fields)
        if install:
            span.installed = True
            span.prev = _spans.set_context(ctx)
        self.open_spans[ctx.span_id] = span
        return span

    def end_span(self, span: OpenSpan | None, ts: float,
                 restore: bool = True, **fields) -> None:
        """Close ``span`` and record it.  ``restore=False`` keeps the
        span's context installed (for tail work caused by the span, e.g.
        the transport's reply leg).  Already-closed spans (force-closed
        by a host failure) are ignored."""
        if span is None or span.closed:
            return
        span.closed = True
        self.open_spans.pop(span.ctx.span_id, None)
        if span.installed and restore:
            _spans.set_context(span.prev)
        merged = span.fields
        if fields:
            merged = dict(merged)
            merged.update(fields)
        self.emit(span.etype, ts=span.ts, host=span.host, actor=span.actor,
                  dur=max(0.0, ts - span.ts), ctx=span.ctx, **merged)

    # -- failure semantics ---------------------------------------------------

    def host_failed(self, host: str, ts: float) -> None:
        """A machine died: force-close its open spans (marked with
        ``host_failed: True`` — their events are kept, not lost) and mark
        every later event on that host the same way."""
        self._failed_hosts.add(host)
        for span in [s for s in self.open_spans.values() if s.host == host]:
            span.closed = True
            self.open_spans.pop(span.ctx.span_id, None)
            merged = dict(span.fields)
            merged["host_failed"] = True
            self.emit(span.etype, ts=span.ts, host=host, actor=span.actor,
                      dur=max(0.0, ts - span.ts), ctx=span.ctx, **merged)
        self.emit(HOST_FAILED, ts=ts, host=host)

    def host_restarted(self, host: str, ts: float) -> None:
        """A crashed machine came back: stop tainting its events.  The
        ``host_failed`` marks on pre-restart events are history and stay;
        spans opened after the restart belong to the fresh incarnation
        and must not inherit the taint."""
        self._failed_hosts.discard(host)
        self.emit(HOST_RESTARTED, ts=ts, host=host)


_current: NullTracer = NULL_TRACER


def current_tracer() -> NullTracer:
    """The ambient tracer new worlds adopt (NULL_TRACER unless installed)."""
    return _current


def set_tracer(tracer: NullTracer | None) -> None:
    global _current
    _current = tracer if tracer is not None else NULL_TRACER


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (a fresh one by default) for the with-block."""
    tracer = tracer if tracer is not None else Tracer()
    previous = _current
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
