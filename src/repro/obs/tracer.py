"""The tracer: null by default, recording when installed.

Hook points throughout the runtime hold a tracer reference and guard the
expensive part (building a field dict) behind ``tracer.enabled``::

    if tracer.enabled:
        tracer.emit(RPC_REQUEST, ts=now, host=src.host, ...)

:class:`NullTracer` keeps that check a single attribute load, so the
instrumented runtime costs nothing measurable when tracing is off.
:class:`Tracer` appends :class:`TraceEvent` records to a plain list
(``list.append`` is atomic under the GIL, so the event path takes no
lock — see DESIGN.md) and mirrors aggregates into a :class:`Metrics`
registry.

Installation is ambient: ``set_tracer()`` / the ``tracing()`` context
manager set a module-level current tracer which ``SimWorld`` picks up at
construction time, so application code never threads a tracer through
the runtime explicitly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import TraceEvent
from repro.obs.metrics import Metrics


class NullTracer:
    """The do-nothing tracer every component holds by default."""

    enabled = False

    def emit(self, etype: str, ts: float, host: str = "", actor: str = "",
             dur: float | None = None, **fields) -> None:
        pass

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records typed events and aggregates counters/histograms."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.metrics = Metrics()

    def emit(self, etype: str, ts: float, host: str = "", actor: str = "",
             dur: float | None = None, **fields) -> None:
        self.events.append(
            TraceEvent(ts=ts, etype=etype, host=host, actor=actor,
                       dur=dur, fields=fields)
        )

    def count(self, name: str, value: float = 1.0) -> None:
        self.metrics.count(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def events_of(self, etype: str) -> list[TraceEvent]:
        return [ev for ev in self.events if ev.etype == etype]


_current: NullTracer = NULL_TRACER


def current_tracer() -> NullTracer:
    """The ambient tracer new worlds adopt (NULL_TRACER unless installed)."""
    return _current


def set_tracer(tracer: NullTracer | None) -> None:
    global _current
    _current = tracer if tracer is not None else NULL_TRACER


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (a fresh one by default) for the with-block."""
    tracer = tracer if tracer is not None else Tracer()
    previous = _current
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
