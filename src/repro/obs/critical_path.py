"""Critical-path extraction over one trace's span set.

Given all spans of a trace (events with a ``ctx`` and a duration), the
extractor walks a *frontier* backwards from the trace's end: at each
step it picks the latest-ending span that ends at or before the
frontier (ties broken toward the later-starting, i.e. innermost, span),
emits the segment it covers, and moves the frontier to that span's
start.  Time not covered by any span ending at the frontier is emitted
as a *gap* segment attributed to the innermost span containing it
(queueing: someone was waiting, nothing was progressing the chain).

By construction the segments exactly tile ``[trace_start, trace_end]``,
so their durations sum to the trace makespan — the critical path
accounts for 100% of wall-clock, split into categories:

========  =====================================================
network   ``rpc.request`` / ``rpc.reply`` wire time
compute   modelled CPU (``compute`` spans)
lock      holder-side queueing (``lock.wait``)
queue     ``obj.wait`` handle waits and uncovered gaps
runtime   everything else (handler bodies, protocol steps, ...)
========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs import events as ev
from repro.obs.events import TraceEvent

_EPS = 1e-12

_CATEGORY = {
    ev.RPC_REQUEST: "network",
    ev.RPC_REPLY: "network",
    ev.COMPUTE: "compute",
    ev.LOCK_WAIT: "lock",
    ev.OBJ_WAIT: "queue",
}

#: field keys worth surfacing as a one-word segment detail, in order
#: (``dest`` identifies obj.invoke.batch transfer segments)
_DETAIL_KEYS = ("kind", "method", "step", "obj_id", "app", "label", "dest")


def _category(etype: str) -> str:
    return _CATEGORY.get(etype, "runtime")


def _detail(event: TraceEvent) -> str:
    for key in _DETAIL_KEYS:
        value = event.fields.get(key)
        if value:
            return str(value)
    return ""


@dataclass
class Segment:
    """One contiguous slice of the critical path."""

    start: float
    end: float
    category: str
    etype: str
    host: str = ""
    actor: str = ""
    span_id: str | None = None
    detail: str = ""

    @property
    def dur(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "start": self.start, "end": self.end, "dur": self.dur,
            "category": self.category, "etype": self.etype,
            "host": self.host, "span_id": self.span_id,
            "detail": self.detail,
        }


@dataclass
class CriticalPath:
    trace_id: str
    trace_start: float
    trace_end: float
    segments: list[Segment]

    @property
    def makespan(self) -> float:
        return self.trace_end - self.trace_start

    def totals(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.category] = out.get(seg.category, 0.0) + seg.dur
        return out

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "trace_start": self.trace_start,
            "trace_end": self.trace_end,
            "makespan": self.makespan,
            "segments": [seg.as_dict() for seg in self.segments],
            "totals": self.totals(),
        }


def _events_of(source) -> list[TraceEvent]:
    events = getattr(source, "events", source)
    return list(events)


def spans_by_trace(source) -> dict[str, list[TraceEvent]]:
    """All span events (ctx + positive duration), grouped by trace."""
    out: dict[str, list[TraceEvent]] = {}
    for event in _events_of(source):
        if event.ctx is None or event.dur is None:
            continue
        out.setdefault(event.ctx.trace_id, []).append(event)
    return out


def main_trace_id(by_trace: dict[str, list[TraceEvent]]) -> str | None:
    """The most interesting trace: an application-rooted one if any
    exists (``app`` span), otherwise the one with the largest makespan."""

    def makespan(spans: Iterable[TraceEvent]) -> float:
        times = [(s.ts, s.ts + (s.dur or 0.0)) for s in spans]
        return max(t1 for _, t1 in times) - min(t0 for t0, _ in times)

    if not by_trace:
        return None
    app_traces = {
        tid: spans for tid, spans in by_trace.items()
        if any(s.etype == ev.APP for s in spans)
    }
    pool = app_traces or by_trace
    return max(pool, key=lambda tid: makespan(pool[tid]))


def _covering(spans: list[TraceEvent], start: float, end: float
              ) -> TraceEvent | None:
    """The innermost span containing [start, end] (latest-starting)."""
    owner = None
    for span in spans:
        if span.ts <= start + _EPS and span.ts + (span.dur or 0.0) >= \
                end - _EPS:
            if owner is None or span.ts > owner.ts:
                owner = span
    return owner


def critical_path(source, trace_id: str | None = None) -> CriticalPath | None:
    """Extract the critical path of ``trace_id`` (main trace by default)
    from a tracer or an event list; None when there are no spans."""
    by_trace = spans_by_trace(source)
    if trace_id is None:
        trace_id = main_trace_id(by_trace)
    all_spans = by_trace.get(trace_id or "", [])
    if not all_spans:
        return None
    trace_start = min(s.ts for s in all_spans)
    trace_end = max(s.ts + (s.dur or 0.0) for s in all_spans)
    # Zero-duration spans cannot carry a segment; keep them only as gap
    # owners via ``all_spans``.
    spans = sorted(
        (s for s in all_spans if (s.dur or 0.0) > _EPS),
        key=lambda s: (s.ts + (s.dur or 0.0), s.ts),
    )
    segments: list[Segment] = []
    frontier = trace_end
    i = len(spans) - 1
    while frontier - trace_start > _EPS and i >= 0:
        while i >= 0 and spans[i].ts + (spans[i].dur or 0.0) > \
                frontier + _EPS:
            i -= 1
        if i < 0:
            break
        span = spans[i]
        span_end = min(span.ts + (span.dur or 0.0), frontier)
        if frontier - span_end > _EPS:
            owner = _covering(all_spans, span_end, frontier)
            segments.append(Segment(
                start=span_end, end=frontier, category="queue",
                etype=owner.etype if owner else "(idle)",
                host=owner.host if owner else "",
                actor=owner.actor if owner else "",
                span_id=owner.ctx.span_id if owner and owner.ctx else None,
                detail="gap",
            ))
        seg_start = max(span.ts, trace_start)
        segments.append(Segment(
            start=seg_start, end=span_end, category=_category(span.etype),
            etype=span.etype, host=span.host, actor=span.actor,
            span_id=span.ctx.span_id if span.ctx else None,
            detail=_detail(span),
        ))
        frontier = seg_start
        i -= 1
    if frontier - trace_start > _EPS:
        segments.append(Segment(start=trace_start, end=frontier,
                                category="queue", etype="(idle)"))
    segments.reverse()
    return CriticalPath(trace_id=trace_id or "", trace_start=trace_start,
                        trace_end=trace_end, segments=segments)


# -- rendering -------------------------------------------------------------


def _fmt_s(seconds: float) -> str:
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000.0:.3f}ms"


def render_critical_path(cp: CriticalPath, max_segments: int = 40) -> str:
    """The critical path as a table plus per-category totals."""
    from repro.util.tables import render_table

    shown = cp.segments
    elided = 0
    if len(shown) > max_segments:
        # Keep the longest segments, restore chronological order.
        by_dur = sorted(shown, key=lambda s: -s.dur)[:max_segments]
        elided = len(shown) - len(by_dur)
        shown = sorted(by_dur, key=lambda s: s.start)
    rows = [
        [f"{seg.start:.3f}", _fmt_s(seg.dur), seg.category, seg.etype,
         seg.detail, seg.host or "-"]
        for seg in shown
    ]
    parts = [render_table(
        ["t", "dur", "category", "etype", "detail", "host"], rows,
        title=(f"Critical path of trace {cp.trace_id} "
               f"({len(cp.segments)} segments, makespan "
               f"{_fmt_s(cp.makespan)})"),
    )]
    if elided:
        parts.append(f"  ({elided} shorter segments elided)")
    totals = cp.totals()
    covered = sum(totals.values())
    breakdown = "  ".join(
        f"{cat}={_fmt_s(dur)} ({dur / covered * 100.0:.1f}%)"
        for cat, dur in sorted(totals.items(), key=lambda kv: -kv[1])
    )
    parts.append(f"time on the critical path: {breakdown}")
    parts.append(
        f"segments sum to {_fmt_s(covered)} of {_fmt_s(cp.makespan)} "
        "makespan"
    )
    return "\n".join(parts)


def render_span_tree(source, trace_id: str | None = None,
                     max_lines: int = 120) -> str:
    """An indented listing of one trace's span tree."""
    by_trace = spans_by_trace(source)
    if trace_id is None:
        trace_id = main_trace_id(by_trace)
    spans = by_trace.get(trace_id or "", [])
    if not spans:
        return "(no spans recorded)"
    spans = sorted(spans, key=lambda s: (s.ts, -(s.dur or 0.0)))
    ids = {s.ctx.span_id for s in spans if s.ctx}
    children: dict[str | None, list[TraceEvent]] = {}
    for span in spans:
        parent = span.ctx.parent_id if span.ctx else None
        if parent not in ids:
            parent = None  # orphan (parent was an instant or unrecorded)
        children.setdefault(parent, []).append(span)

    lines = [f"trace {trace_id}: {len(spans)} spans"]
    truncated = False

    def walk(parent: str | None, depth: int) -> None:
        nonlocal truncated
        for span in children.get(parent, ()):
            if len(lines) > max_lines:
                truncated = True
                return
            detail = _detail(span)
            label = f"{span.etype} {detail}".rstrip()
            where = f" [{span.host}]" if span.host else ""
            lines.append(
                f"{'  ' * (depth + 1)}{label}  "
                f"t={span.ts:.3f} +{_fmt_s(span.dur or 0.0)}{where}"
            )
            if span.ctx:
                walk(span.ctx.span_id, depth + 1)

    walk(None, 0)
    if truncated:
        lines.append(f"  ... (truncated at {max_lines} lines)")
    return "\n".join(lines)


def spans_document(tracer, with_critical_path: bool = True) -> dict:
    """A JSON-ready document of the main trace: spans + critical path.

    Schema (checked by the CI smoke step): ``trace_id`` (str),
    ``makespan`` (number), ``span_count`` (int), ``spans`` (list of
    objects with trace_id/span_id/parent_id/etype/ts/dur/host), and —
    when requested — ``critical_path`` with ``segments`` and ``totals``.
    """
    by_trace = spans_by_trace(tracer)
    trace_id = main_trace_id(by_trace)
    spans = by_trace.get(trace_id or "", [])
    doc: dict = {
        "trace_id": trace_id or "",
        "trace_count": len(by_trace),
        "span_count": len(spans),
        "dropped_events": getattr(tracer, "dropped_events", 0),
        "makespan": 0.0,
        "spans": [],
    }
    if spans:
        start = min(s.ts for s in spans)
        end = max(s.ts + (s.dur or 0.0) for s in spans)
        doc["makespan"] = end - start
        doc["spans"] = [
            {
                "trace_id": s.ctx.trace_id if s.ctx else None,
                "span_id": s.ctx.span_id if s.ctx else None,
                "parent_id": s.ctx.parent_id if s.ctx else None,
                "etype": s.etype,
                "ts": s.ts,
                "dur": s.dur or 0.0,
                "host": s.host,
                "actor": s.actor,
                "fields": {k: repr(v) if not isinstance(
                    v, (str, int, float, bool, type(None))) else v
                    for k, v in s.fields.items()},
            }
            for s in sorted(spans, key=lambda s: s.ts)
        ]
    if with_critical_path:
        cp = critical_path(tracer, trace_id=trace_id)
        doc["critical_path"] = cp.as_dict() if cp else None
    return doc
