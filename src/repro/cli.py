"""Command-line interface: regenerate the paper's results directly.

    python -m repro fig5 --n 1000            # one Figure-5 series
    python -m repro matmul --n 128 --nodes 4 --real
    python -m repro testbed                   # show the simulated cluster
    python -m repro grid                      # show the wide-area grid
    python -m repro lint src/repro            # symlint static analysis
    python -m repro trace examples/quickstart.py --json trace.json
    python -m repro spans matmul --critical-path   # span tree + hot chain
    python -m repro top matmul                # per-node top-style frames
    python -m repro san matmul                # symsan concurrency sanitizer
    python -m repro metrics matmul --prom     # merged cluster metrics
    python -m repro metrics matmul --kill greta@3 --incident-dir out/
    python -m repro incidents out/            # render incident bundles
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.matmul import MatmulConfig, run_matmul, sequential_matmul_time
from repro.cluster import TestbedConfig, vienna_testbed
from repro.util.tables import render_table

DEFAULT_NODE_COUNTS = [1, 2, 4, 6, 8, 10, 11, 12, 13]


def _parse_nodes(text: str) -> list[int]:
    try:
        counts = [int(chunk) for chunk in text.split(",") if chunk]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad node list {text!r}; expected e.g. '1,2,4,8'"
        ) from None
    if not counts or any(c < 1 or c > 13 for c in counts):
        raise argparse.ArgumentTypeError("node counts must be in 1..13")
    return counts


def cmd_fig5(args: argparse.Namespace) -> int:
    rows = []
    series: dict[str, dict[int, float]] = {}
    for profile in ("night", "day"):
        series[profile] = {}
        baseline = None
        for nodes in args.nodes:
            runtime = vienna_testbed(
                TestbedConfig(load_profile=profile, seed=args.seed)
            )
            if nodes == 1:
                elapsed = sequential_matmul_time(
                    runtime.world, "milena", args.n
                )
            else:
                elapsed = runtime.run_app(
                    lambda n=nodes: run_matmul(
                        MatmulConfig(n=args.n, nr_nodes=n,
                                     real_compute=False)
                    )
                ).elapsed
            if baseline is None:
                baseline = elapsed
            series[profile][nodes] = elapsed
    for nodes in args.nodes:
        night = series["night"][nodes]
        day = series["day"][nodes]
        rows.append([
            nodes,
            round(night, 1),
            round(series["night"][args.nodes[0]] / night, 2),
            round(day, 1),
            round(series["day"][args.nodes[0]] / day, 2),
        ])
    print(render_table(
        ["nodes", "night time [s]", "night speedup",
         "day time [s]", "day speedup"],
        rows,
        title=(f"Figure 5 | matmul {args.n}x{args.n} on the simulated "
               "Vienna cluster"),
    ))
    return 0


def cmd_matmul(args: argparse.Namespace) -> int:
    runtime = vienna_testbed(
        TestbedConfig(load_profile=args.profile, seed=args.seed)
    )
    result = runtime.run_app(
        lambda: run_matmul(
            MatmulConfig(n=args.n, nr_nodes=args.nodes,
                         real_compute=args.real)
        )
    )
    print(f"N={result.n} on {result.nr_nodes} nodes "
          f"({args.profile} load)")
    print(f"  nodes       : {', '.join(result.hosts)}")
    print(f"  tasks       : {result.nr_tasks}")
    print(f"  elapsed     : {result.elapsed:.2f} simulated seconds")
    if result.correct is not None:
        print(f"  verified    : {result.correct}")
    print("  tasks/node  : " + ", ".join(
        f"{h}={c}" for h, c in sorted(result.tasks_per_host.items(),
                                      key=lambda kv: -kv[1])
    ))
    return 0 if result.correct in (True, None) else 1


def cmd_testbed(args: argparse.Namespace) -> int:
    runtime = vienna_testbed(TestbedConfig(load_profile="dedicated"))
    rows = []
    for host in runtime.nas.known_hosts():
        spec = runtime.world.machine(host).spec
        cluster = runtime.nas.cluster_of(host)
        role = "manager" if runtime.nas.is_manager(host) else (
            "backup" if runtime.nas.is_backup(host) else "node"
        )
        rows.append([
            host, spec.model, spec.mflops, int(spec.total_mem_mb),
            int(spec.net_mbits), cluster, role,
        ])
    print(render_table(
        ["host", "model", "MFLOPS", "mem MB", "net Mbit", "cluster",
         "role"],
        rows,
        title="The simulated Vienna testbed (13 Sun workstations)",
    ))
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    from repro.cluster import grid_testbed

    runtime = grid_testbed(load_profile="dedicated")
    rows = []
    for site in runtime.nas.layout:
        for cluster in runtime.nas.clusters_of_site(site):
            members = runtime.nas.cluster_members(cluster)
            manager = runtime.nas.cluster_manager(cluster)
            rows.append([
                site, cluster, len(members), manager,
                ", ".join(members),
            ])
    print(render_table(
        ["site", "cluster", "nodes", "manager", "members"],
        rows,
        title="The wide-area grid testbed (3 sites, 24 hosts)",
    ))
    print(f"domain manager: {runtime.nas.domain_manager()}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis import analyze_paths, render_json, render_text
    from repro.analysis.runner import (
        apply_baseline,
        expand_rules,
        known_rules,
        load_baseline,
        render_github,
        render_sarif,
        rule_groups,
        write_baseline,
    )

    if args.list_rules:
        groups = rule_groups()
        owner = {
            rule: name for name, rules in groups.items() for rule in rules
        }
        for rule, severity in sorted(known_rules().items()):
            checker = owner.get(rule, "runner")
            print(f"{rule:32s} {str(severity):8s} [{checker}]")
        return 0
    paths = args.paths
    if not paths:
        # Default to the installed package: lint ourselves.
        paths = [os.path.dirname(os.path.abspath(__file__))]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        # A typo'd path must not silently gate nothing (e.g. in CI).
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    rules = None
    if args.rules:
        tokens = {r.strip() for r in args.rules.split(",") if r.strip()}
        # A token may be a checker name ("locality") selecting that
        # whole pass, or an individual rule id.
        rules, unknown = expand_rules(tokens)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    report = analyze_paths(paths, rules=rules)
    if args.baseline:
        if not os.path.exists(args.baseline) or args.update_baseline:
            count = write_baseline(report, args.baseline)
            print(f"wrote baseline {args.baseline} ({count} findings); "
                  "future runs fail only on new findings")
            return 0
        report = apply_baseline(report, load_baseline(args.baseline))
    if args.format == "json":
        print(render_json(report))
    elif args.format == "github":
        print(render_github(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report))
    if report.errors:
        return 1
    if args.strict and report.findings:
        return 1
    return 0


def _parse_kill(text: str) -> tuple[str, float]:
    host, sep, at = text.partition("@")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"bad --kill spec {text!r}; expected HOST@TIME, e.g. greta@3"
        )
    try:
        return host, float(at)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad --kill time in {text!r}; expected a number of "
            "simulated seconds"
        ) from None


def _run_traced(args: argparse.Namespace):
    """Run ``args.target`` (a script path or the 'matmul' builtin) under
    a fresh ambient tracer.  Returns ``(tracer, runtime)`` — the runtime
    only for the matmul builtin — or ``(None, None)`` if the target does
    not exist (an error was already printed)."""
    import os
    import runpy

    from repro.obs import Tracer, tracing

    target = args.target
    runtime = None
    with tracing(Tracer()) as tracer:
        if target == "matmul":
            config = TestbedConfig(
                load_profile=args.profile, seed=args.seed,
                incident_dir=getattr(args, "incident_dir", None),
            )
            kill = getattr(args, "kill", None)
            mutate = None
            if kill is not None:
                host, at = kill
                mutate = lambda w: w.schedule_failure(host, at)
                # A host is about to die mid-run: bound RPC waits and
                # tighten failure detection so the run terminates and
                # the NAS notices the death within the workload.
                if config.shell.rpc_timeout is None:
                    config.shell.rpc_timeout = 5.0
                config.nas.monitor_period = 2.0
                config.nas.probe_period = 2.0
                config.nas.failure_timeout = 1.0
            runtime = vienna_testbed(config, mutate_world=mutate)
            period = getattr(args, "monitor_period", None)
            if period:
                runtime.nas.config.monitor_period = period
            try:
                runtime.run_app(
                    lambda: run_matmul(
                        MatmulConfig(n=args.n, nr_nodes=args.nodes,
                                     real_compute=False)
                    )
                )
            except Exception as exc:
                if kill is None:
                    raise
                # Killed-host runs may not finish; the telemetry and
                # incident bundles captured so far are the point.
                print(f"workload aborted after --kill: {exc}",
                      file=sys.stderr)
            if kill is not None:
                # Keep the world running past the scheduled failure and
                # its NAS detection (probes + release protocol), even if
                # the workload finished first — the flight recorder and
                # the post-mortem heartbeats are the point of --kill.
                horizon = (max(runtime.world.now(), kill[1])
                           + 3.0 * config.nas.probe_period
                           + config.nas.failure_timeout)
                runtime.world.kernel.run(until=horizon)
        elif os.path.exists(target):
            # Any example/benchmark script; it builds its own world, which
            # adopts the ambient tracer installed above.
            runpy.run_path(target, run_name="__main__")
        else:
            print(f"no such trace target {target!r}; expected a script "
                  "path or 'matmul'", file=sys.stderr)
            return None, None
    return tracer, runtime


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_summary, write_chrome_trace

    tracer, _ = _run_traced(args)
    if tracer is None:
        return 2
    if args.json:
        write_chrome_trace(tracer, args.json)
        print(f"wrote {len(tracer.events)} events to {args.json}")
    if not args.no_summary:
        print(render_summary(tracer))
    return 0


def cmd_spans(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        critical_path,
        render_critical_path,
        render_span_tree,
        spans_document,
    )

    tracer, _ = _run_traced(args)
    if tracer is None:
        return 2
    print(render_span_tree(tracer))
    if args.critical_path:
        cp = critical_path(tracer)
        if cp is None:
            print("no spans recorded; nothing to extract a critical "
                  "path from", file=sys.stderr)
            return 1
        print()
        print(render_critical_path(cp))
    if args.json:
        doc = spans_document(tracer, with_critical_path=args.critical_path)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
        print(f"wrote {doc['span_count']} spans to {args.json}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.obs import frames_from_trace, render_top

    tracer, _ = _run_traced(args)
    if tracer is None:
        return 2
    frames = frames_from_trace(
        tracer, period=args.period, max_frames=args.frames
    )
    if not frames:
        print("no trace events recorded; nothing to show",
              file=sys.stderr)
        return 1
    print(render_top(frames))
    return 0


def _tracer_metrics_doc(tracer) -> dict:
    """The metrics document straight off a tracer (script targets,
    where we have no runtime handle): merged per-host registries plus
    the per-host snapshots behind the merge."""
    from repro.obs.timeseries import _jsonable

    host_metrics = getattr(tracer, "host_metrics", None) or {}
    return {
        "source": "tracer",
        "merged": _jsonable(tracer.merged_host_metrics())
        if host_metrics else {"counters": {}, "histograms": {}},
        "hosts": {
            host: _jsonable(host_metrics[host].snapshot())
            for host in sorted(host_metrics)
        },
        "windows": {},
    }


def cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_incident, render_prom

    tracer, runtime = _run_traced(args)
    if tracer is None:
        return 2
    doc = (runtime.metrics_document() if runtime is not None
           else _tracer_metrics_doc(tracer))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, default=repr)
        print(f"wrote metrics document ({doc['source']}, "
              f"{len(doc['hosts'])} hosts) to {args.json}",
              file=sys.stderr)
    if args.prom or not args.json:
        sys.stdout.write(render_prom(doc["merged"]))
    if runtime is not None and runtime.flight.incidents:
        print(f"\n{len(runtime.flight.incidents)} incident(s) captured:",
              file=sys.stderr)
        for bundle in runtime.flight.incidents:
            where = bundle.get("path") or "(in memory)"
            print(f"  {bundle['incident_id']}  trigger={bundle['trigger']}"
                  f"  {where}", file=sys.stderr)
        if args.show_incidents:
            for bundle in runtime.flight.incidents:
                print()
                print(render_incident(bundle))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the matmul builtin under a fault plan, reliability layer on
    (unless ``--no-retry``), and report what was injected and whether
    the workload survived.

    Exit code contract mirrors the chaos soak property: 0 when the
    workload completed correctly *or* failed with a typed
    :class:`~repro.errors.JSError` (faults are allowed to lose a run,
    never to corrupt one); 1 on a wrong result or an untyped crash."""
    from repro.agents.shell import ShellConfig
    from repro.chaos import ChaosInjector, FaultPlan
    from repro.errors import JSError
    from repro.obs import Tracer, tracing
    from repro.rmi.reliability import CircuitBreaker, RetryPolicy

    if args.target != "matmul":
        print(f"no such chaos target {args.target!r}; only the 'matmul' "
              "builtin is supported", file=sys.stderr)
        return 2
    if (args.plan is None) == (not args.random):
        print("chaos needs exactly one of --plan SPEC or --random",
              file=sys.stderr)
        return 2
    parsed_plan = None
    if args.plan is not None:
        try:
            parsed_plan = FaultPlan.parse(args.plan)
        except JSError as exc:
            print(f"bad chaos plan: {exc}", file=sys.stderr)
            return 2
    with tracing(Tracer()) as tracer:
        shell = ShellConfig(rpc_timeout=args.rpc_timeout)
        if not args.no_retry:
            shell.retry_policy = RetryPolicy()
            shell.dedup_window = 60.0
            shell.circuit_breaker = CircuitBreaker()
        config = TestbedConfig(
            load_profile=args.profile, seed=args.seed, shell=shell,
            incident_dir=args.incident_dir,
        )
        runtime = vienna_testbed(config)
        if parsed_plan is not None:
            plan = parsed_plan
        else:
            plan = FaultPlan.random_plan(
                args.seed, runtime.world.host_names()
            )
        injector = ChaosInjector(runtime.world, plan).install(
            runtime.transport
        )
        print(f"chaos plan : {plan.describe()}")
        print(f"reliability: "
              f"{'off (--no-retry)' if args.no_retry else 'retries on'}")
        failure: BaseException | None = None
        result = None
        try:
            result = runtime.run_app(
                lambda: run_matmul(
                    MatmulConfig(n=args.n, nr_nodes=args.nodes,
                                 real_compute=args.real)
                )
            )
        except JSError as exc:
            failure = exc
        merged = tracer.merged_host_metrics()
        counters = merged.get("counters", merged) if isinstance(
            merged, dict) else {}
        tally = ", ".join(
            f"{fault}={count}"
            for fault, count in sorted(injector.injected.items())
        ) or "(nothing injected)"
        print(f"injected   : {tally}")
        for counter in ("rpc.retries", "rpc.dedup.hits", "rpc.timeouts"):
            value = counters.get(counter)
            if value:
                print(f"  {counter:<14s}: {value}")
        if runtime.flight.incidents:
            print(f"incidents  : {len(runtime.flight.incidents)} captured"
                  + (f" in {args.incident_dir}" if args.incident_dir
                     else " (in memory)"))
        if failure is not None:
            print(f"workload   : FAILED (typed) "
                  f"{type(failure).__name__}: {failure}")
            return 0
        verified = getattr(result, "correct", None)
        print(f"workload   : completed in {result.elapsed:.2f} simulated "
              f"seconds" + (f", verified={verified}"
                            if verified is not None else ""))
        return 0 if verified in (True, None) else 1


def cmd_incidents(args: argparse.Namespace) -> int:
    import os

    from repro.obs import load_bundle, render_incident

    paths: list[str] = []
    for target in args.bundles:
        if os.path.isdir(target):
            paths.extend(
                os.path.join(target, name)
                for name in sorted(os.listdir(target))
                if name.endswith(".json")
            )
        elif os.path.exists(target):
            paths.append(target)
        else:
            print(f"no such incident bundle {target!r}", file=sys.stderr)
            return 2
    if not paths:
        print("no incident bundles found", file=sys.stderr)
        return 1
    for index, path in enumerate(paths):
        if index:
            print()
        print(render_incident(load_bundle(path),
                              max_events=args.events))
    return 0


def cmd_san(args: argparse.Namespace) -> int:
    import os
    import runpy

    from repro.errors import KernelError
    from repro.kernel.virtual import shutdown_all_kernels
    from repro.sanitizer import Sanitizer, sanitizing

    target = args.target
    san = Sanitizer(leaks=not args.no_leaks)
    with sanitizing(san):
        try:
            if target == "matmul":
                runtime = vienna_testbed(
                    TestbedConfig(load_profile=args.profile,
                                  seed=args.seed)
                )
                runtime.run_app(
                    lambda: run_matmul(
                        MatmulConfig(n=args.n, nr_nodes=args.nodes,
                                     real_compute=False)
                    )
                )
            elif os.path.exists(target):
                # Any example/benchmark script; the worlds it builds
                # adopt the ambient sanitizer installed above.
                runpy.run_path(target, run_name="__main__")
            else:
                print(f"no such sanitize target {target!r}; expected a "
                      "script path or 'matmul'", file=sys.stderr)
                return 2
        except KernelError as exc:
            # Detector aborts (SanDeadlockError, SimDeadlockError) are
            # already recorded as findings; keep going to the report.
            print(f"run aborted: {exc}", file=sys.stderr)
        finally:
            # Shut surviving kernels down so leak checks run.
            shutdown_all_kernels()
    report = san.report()
    if args.report:
        from repro.analysis.runner import render_json

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(render_json(report))
    for f in report.findings:
        symbol = f" [{f.symbol}]" if f.symbol else ""
        print(f"{f.path}:{f.line}: {f.severity}: {f.rule}: "
              f"{f.message}{symbol}")
    print(f"symsan: {len(report.findings)} findings "
          f"({len(report.errors)} errors)")
    if report.errors:
        return 1
    if args.strict and report.findings:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PySymphony: reproduce JavaSymphony (CLUSTER 2000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig5 = sub.add_parser("fig5", help="regenerate a Figure-5 series")
    p_fig5.add_argument("--n", type=int, default=1000,
                        help="matrix dimension (default 1000)")
    p_fig5.add_argument("--nodes", type=_parse_nodes,
                        default=DEFAULT_NODE_COUNTS,
                        help="comma-separated node counts")
    p_fig5.add_argument("--seed", type=int, default=1)
    p_fig5.set_defaults(fn=cmd_fig5)

    p_mm = sub.add_parser("matmul", help="run one matmul configuration")
    p_mm.add_argument("--n", type=int, default=128)
    p_mm.add_argument("--nodes", type=int, default=4)
    p_mm.add_argument("--profile", default="night",
                      choices=["dedicated", "night", "day"])
    p_mm.add_argument("--real", action="store_true",
                      help="really multiply (and verify) the matrices")
    p_mm.add_argument("--seed", type=int, default=1)
    p_mm.set_defaults(fn=cmd_matmul)

    p_tb = sub.add_parser("testbed", help="describe the Vienna testbed")
    p_tb.set_defaults(fn=cmd_testbed)

    p_grid = sub.add_parser("grid", help="describe the wide-area grid")
    p_grid.set_defaults(fn=cmd_grid)

    p_lint = sub.add_parser(
        "lint",
        help="run symlint, the PySymphony-aware static analyzer",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the repro package itself)",
    )
    p_lint.add_argument("--format", default="text",
                        choices=["text", "json", "github", "sarif"])
    p_lint.add_argument("--rules", default=None,
                        help="comma-separated rule ids or checker names "
                             "(e.g. 'locality') to report")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    p_lint.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file: written if missing, "
                             "otherwise known findings are filtered out "
                             "and only new ones gate the exit code")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite the --baseline file from this run")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print every rule id and severity, then exit")
    p_lint.set_defaults(fn=cmd_lint)

    p_trace = sub.add_parser(
        "trace",
        help="run a script or builtin under the obs tracer",
    )
    p_trace.add_argument(
        "target",
        help="path to an example/benchmark script, or 'matmul'",
    )
    p_trace.add_argument("--json", default=None, metavar="PATH",
                         help="write a Chrome trace_event JSON here")
    p_trace.add_argument("--no-summary", action="store_true",
                         help="suppress the text summary")
    p_trace.add_argument("--n", type=int, default=64,
                         help="matmul: matrix dimension")
    p_trace.add_argument("--nodes", type=int, default=4,
                         help="matmul: node count")
    p_trace.add_argument("--profile", default="night",
                         choices=["dedicated", "night", "day"])
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.set_defaults(fn=cmd_trace)

    p_spans = sub.add_parser(
        "spans",
        help="run a script or builtin traced; print the span tree and "
             "optionally the critical path",
    )
    p_spans.add_argument(
        "target",
        help="path to an example/benchmark script, or 'matmul'",
    )
    p_spans.add_argument("--critical-path", action="store_true",
                         help="extract and print the trace critical path")
    p_spans.add_argument("--json", default=None, metavar="PATH",
                         help="write the spans document (JSON) here")
    p_spans.add_argument("--n", type=int, default=64,
                         help="matmul: matrix dimension")
    p_spans.add_argument("--nodes", type=int, default=4,
                         help="matmul: node count")
    p_spans.add_argument("--profile", default="night",
                         choices=["dedicated", "night", "day"])
    p_spans.add_argument("--seed", type=int, default=1)
    p_spans.set_defaults(fn=cmd_spans)

    p_top = sub.add_parser(
        "top",
        help="run a script or builtin traced; print top-style per-node "
             "frames over simulated time",
    )
    p_top.add_argument(
        "target",
        help="path to an example/benchmark script, or 'matmul'",
    )
    p_top.add_argument("--period", type=float, default=None,
                       help="frame period in simulated seconds "
                            "(default: auto from the trace makespan)")
    p_top.add_argument("--frames", type=int, default=60,
                       help="maximum number of frames (default 60)")
    p_top.add_argument("--monitor-period", type=float, default=0.02,
                       help="matmul: NAS monitor period (s) so idle/mem "
                            "samples land inside short runs; 0 keeps the "
                            "testbed default")
    p_top.add_argument("--n", type=int, default=64,
                       help="matmul: matrix dimension")
    p_top.add_argument("--nodes", type=int, default=4,
                       help="matmul: node count")
    p_top.add_argument("--profile", default="night",
                       choices=["dedicated", "night", "day"])
    p_top.add_argument("--seed", type=int, default=1)
    p_top.set_defaults(fn=cmd_top)

    p_metrics = sub.add_parser(
        "metrics",
        help="run a script or builtin traced; print the merged cluster "
             "metrics (Prometheus exposition by default)",
    )
    p_metrics.add_argument(
        "target",
        help="path to an example/benchmark script, or 'matmul'",
    )
    p_metrics.add_argument("--prom", action="store_true",
                           help="print Prometheus exposition text "
                                "(the default when --json is not given)")
    p_metrics.add_argument("--json", default=None, metavar="PATH",
                           help="write the full metrics document "
                                "(merged + per-host) as JSON here")
    p_metrics.add_argument("--kill", type=_parse_kill, default=None,
                           metavar="HOST@TIME",
                           help="matmul: fail HOST at TIME simulated "
                                "seconds to exercise the flight recorder")
    p_metrics.add_argument("--incident-dir", default=None, metavar="DIR",
                           help="matmul: write incident bundles here")
    p_metrics.add_argument("--show-incidents", action="store_true",
                           help="also render captured incident bundles")
    p_metrics.add_argument("--monitor-period", type=float, default=0.05,
                           help="matmul: NAS monitor period (s) so "
                                "heartbeat deltas land inside short runs; "
                                "0 keeps the testbed default")
    p_metrics.add_argument("--n", type=int, default=64,
                           help="matmul: matrix dimension")
    p_metrics.add_argument("--nodes", type=int, default=4,
                           help="matmul: node count")
    p_metrics.add_argument("--profile", default="night",
                           choices=["dedicated", "night", "day"])
    p_metrics.add_argument("--seed", type=int, default=1)
    p_metrics.set_defaults(fn=cmd_metrics)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a builtin under seeded fault injection with the "
             "reliable-RMI layer enabled",
    )
    p_chaos.add_argument("target", help="the 'matmul' builtin")
    p_chaos.add_argument("--plan", default=None, metavar="SPEC",
                         help="fault plan spec, e.g. "
                              "'drop:p=0.1; stall:host=bruno,at=2,dur=5'")
    p_chaos.add_argument("--random", action="store_true",
                         help="generate a random plan from --seed")
    p_chaos.add_argument("--seed", type=int, default=1,
                         help="world seed AND random-plan seed")
    p_chaos.add_argument("--no-retry", action="store_true",
                         help="disable the reliability layer (show the "
                              "raw fault impact)")
    p_chaos.add_argument("--rpc-timeout", type=float, default=3.0,
                         help="per-RPC reply timeout in simulated "
                              "seconds (default 3)")
    p_chaos.add_argument("--incident-dir", default=None, metavar="DIR",
                         help="write flight-recorder incident bundles "
                              "here")
    p_chaos.add_argument("--n", type=int, default=64,
                         help="matmul: matrix dimension")
    p_chaos.add_argument("--nodes", type=int, default=4,
                         help="matmul: node count")
    p_chaos.add_argument("--real", action="store_true",
                         help="really multiply (and verify) the matrices")
    p_chaos.add_argument("--profile", default="night",
                         choices=["dedicated", "night", "day"])
    p_chaos.set_defaults(fn=cmd_chaos)

    p_inc = sub.add_parser(
        "incidents",
        help="render flight-recorder incident bundles (JSON files or "
             "a directory of them)",
    )
    p_inc.add_argument(
        "bundles", nargs="+",
        help="incident bundle .json files, or directories of them",
    )
    p_inc.add_argument("--events", type=int, default=20,
                       help="trailing ring events to show per bundle")
    p_inc.set_defaults(fn=cmd_incidents)

    p_san = sub.add_parser(
        "san",
        help="run a script or builtin under symsan, the concurrency "
             "sanitizer",
    )
    p_san.add_argument(
        "target",
        help="path to an example/benchmark script, or 'matmul'",
    )
    p_san.add_argument("--report", default=None, metavar="PATH",
                       help="write the findings as JSON here")
    p_san.add_argument("--no-leaks", action="store_true",
                       help="disable shutdown leak checks")
    p_san.add_argument("--strict", action="store_true",
                       help="exit non-zero on warnings (leaks) too")
    p_san.add_argument("--n", type=int, default=64,
                       help="matmul: matrix dimension")
    p_san.add_argument("--nodes", type=int, default=4,
                       help="matmul: node count")
    p_san.add_argument("--profile", default="night",
                       choices=["dedicated", "night", "day"])
    p_san.add_argument("--seed", type=int, default=1)
    p_san.set_defaults(fn=cmd_san)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
