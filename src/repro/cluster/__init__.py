"""Runtime assembly: JSRuntime wiring and the paper's Vienna testbed."""

from repro.cluster.builder import JSRuntime
from repro.cluster.grid import (
    GRID_HOSTS,
    grid_layout,
    grid_testbed,
    grid_world,
)
from repro.cluster.testbed import (
    SPARC_NAMES,
    ULTRA_NAMES,
    VIENNA_HOSTS,
    VIENNA_LAYOUT,
    TestbedConfig,
    vienna_testbed,
    vienna_world,
)

__all__ = [
    "JSRuntime",
    "GRID_HOSTS",
    "grid_layout",
    "grid_testbed",
    "grid_world",
    "SPARC_NAMES",
    "ULTRA_NAMES",
    "VIENNA_HOSTS",
    "VIENNA_LAYOUT",
    "TestbedConfig",
    "vienna_testbed",
    "vienna_world",
]
