"""A wide-area testbed: three sites joined by WAN links.

The paper positions virtual architectures for everything "from
small-scale cluster computing to large scale wide-area metacomputing"; a
domain "may define a large computational grid that can be distributed
across several continents".  The Vienna testbed exercises one site; this
grid exercises the full hierarchy: 3 sites (vienna, linz, budapest), 5
physical clusters, 24 hosts, WAN latencies in the tens of milliseconds
and ~2 Mbit/s of long-haul bandwidth (year-2000 academic links).
"""

from __future__ import annotations

from repro.agents.nas import NASConfig
from repro.agents.shell import ShellConfig
from repro.cluster.builder import JSRuntime
from repro.kernel import Kernel, VirtualKernel
from repro.simnet import (
    LoadModel,
    Segment,
    SimWorld,
    StochasticLoad,
    make_host,
)

#: {site: {cluster: [(host, model), ...]}}
GRID_HOSTS: dict[str, dict[str, list[tuple[str, str]]]] = {
    "vienna": {
        "vie-ultras": [
            ("milena", "Ultra10/440"), ("rachel", "Ultra10/440"),
            ("johanna", "Ultra10/300"), ("theresa", "Ultra10/300"),
        ],
        "vie-sparcs": [
            ("franz", "SS4/110"), ("greta", "SS4/110"),
            ("dora", "SS5/70"), ("erika", "SS5/70"),
        ],
    },
    "linz": {
        "linz-lab": [
            ("alois", "Ultra10/300"), ("berta", "Ultra10/300"),
            ("carl", "Ultra1/170"), ("dagmar", "Ultra1/170"),
            ("edmund", "Ultra1/170"), ("frieda", "SS5/70"),
        ],
    },
    "budapest": {
        "bud-fast": [
            ("adel", "Ultra10/440"), ("bela", "Ultra10/300"),
            ("csilla", "Ultra1/170"), ("denes", "Ultra1/170"),
        ],
        "bud-slow": [
            ("elek", "SS4/110"), ("flora", "SS4/110"),
            ("gyula", "SS10/40"), ("hanna", "SS10/40"),
            ("imre", "SS5/70"), ("julia", "SS5/70"),
        ],
    },
}

#: WAN link latencies between sites (one way, seconds) and shared
#: long-haul bandwidth in Mbit/s.
WAN_LATENCY = {
    ("vienna", "linz"): 0.012,
    ("vienna", "budapest"): 0.018,
    ("linz", "budapest"): 0.025,
}
WAN_MBITS = 2.0


def grid_layout() -> dict[str, dict[str, list[str]]]:
    return {
        site: {cl: [h for h, _ in hosts] for cl, hosts in clusters.items()}
        for site, clusters in GRID_HOSTS.items()
    }


def grid_world(
    seed: int = 0,
    load_profile: str = "night",
    kernel: Kernel | None = None,
    load_models: dict[str, LoadModel] | None = None,
) -> SimWorld:
    world = SimWorld(
        kernel if kernel is not None else VirtualKernel(), seed=seed
    )
    load_models = load_models or {}
    # One LAN segment per physical cluster; fast clusters switched,
    # "slow"/"sparc" clusters on shared 10 Mbit.
    for site, clusters in GRID_HOSTS.items():
        for cluster in clusters:
            shared = "sparc" in cluster or "slow" in cluster
            world.add_segment(Segment(
                f"lan:{cluster}",
                bandwidth_mbits=10.0 if shared else 100.0,
                latency_s=0.001 if shared else 0.0005,
                shared=shared,
            ))
    # A WAN segment per site pair, plus a site backbone joining each
    # site's LANs.
    for site in GRID_HOSTS:
        world.add_segment(Segment(
            f"bb:{site}", bandwidth_mbits=100.0, latency_s=0.0005,
        ))
        for cluster in GRID_HOSTS[site]:
            world.topology.connect_segments(
                f"lan:{cluster}", f"bb:{site}", latency_s=0.0004
            )
    for (a, b), latency in WAN_LATENCY.items():
        world.add_segment(Segment(
            f"wan:{a}-{b}", bandwidth_mbits=WAN_MBITS,
            latency_s=latency, shared=True,
        ))
        world.topology.connect_segments(f"bb:{a}", f"wan:{a}-{b}",
                                        latency_s=0.0)
        world.topology.connect_segments(f"wan:{a}-{b}", f"bb:{b}",
                                        latency_s=0.0)

    ip = 1
    for site, clusters in GRID_HOSTS.items():
        for cluster, hosts in clusters.items():
            for name, model in hosts:
                load: LoadModel | None = load_models.get(name)
                if load is None and load_profile != "dedicated":
                    rng = world.rng.stream(f"load:{name}")
                    load = (
                        StochasticLoad.day(rng)
                        if load_profile == "day"
                        else StochasticLoad.night(rng)
                    )
                world.add_machine(
                    make_host(name, model, ip), f"lan:{cluster}", load
                )
                ip += 1
    return world


def grid_testbed(
    seed: int = 0,
    load_profile: str = "night",
    kernel: Kernel | None = None,
    nas_config: NASConfig | None = None,
    shell_config: ShellConfig | None = None,
) -> JSRuntime:
    """The full wide-area JRS: 24 hosts, 5 clusters, 3 sites, 1 domain."""
    world = grid_world(seed, load_profile, kernel)
    runtime = JSRuntime(
        world,
        layout=grid_layout(),
        nas_config=nas_config,
        shell_config=shell_config,
    )
    return runtime.start()
