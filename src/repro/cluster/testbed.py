"""The paper's testbed: 13 non-dedicated Sun workstations in Vienna.

Section 6: Sparcstations 4/110, 10/40, 5/70 and Sun Ultras 1/170, 10/300,
10/440; all Ultras on 100 Mbit/s, everything else on 10 Mbit/s; Solaris 7,
JDK 1.2.1 with JIT.  The exact per-model counts are not given, so we pick
a split that yields 13 machines (7 Ultras + 6 Sparcstations) and document
it here; the benchmark conclusions depend on "a few fast switched Ultras +
several slow shared-Ethernet Sparcs", not on the precise split.

Host names follow the paper's examples ("milena", "rachel") with further
Austrian first names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.agents.nas import NASConfig
from repro.agents.shell import ShellConfig
from repro.cluster.builder import JSRuntime
from repro.kernel import Kernel, VirtualKernel
from repro.simnet import (
    HostSpec,
    LoadModel,
    SimWorld,
    StochasticLoad,
    build_lan,
    make_host,
)

#: (name, model) for the 13 workstations; Ultras first.
VIENNA_HOSTS: list[tuple[str, str]] = [
    ("milena", "Ultra10/440"),
    ("rachel", "Ultra10/440"),
    ("johanna", "Ultra10/300"),
    ("theresa", "Ultra10/300"),
    ("anton", "Ultra1/170"),
    ("bruno", "Ultra1/170"),
    ("clemens", "Ultra1/170"),
    ("dora", "SS5/70"),
    ("erika", "SS5/70"),
    ("franz", "SS4/110"),
    ("greta", "SS4/110"),
    ("hugo", "SS10/40"),
    ("ida", "SS10/40"),
]

ULTRA_NAMES = [n for n, m in VIENNA_HOSTS if m.startswith("Ultra")]
SPARC_NAMES = [n for n, m in VIENNA_HOSTS if m.startswith("SS")]

#: physical JRS layout: two clusters (by network segment), one site/domain
VIENNA_LAYOUT: dict[str, dict[str, list[str]]] = {
    "vienna": {
        "ultras": list(ULTRA_NAMES),
        "sparcs": list(SPARC_NAMES),
    }
}


@dataclass
class TestbedConfig:
    #: "day" (machines in interactive use) or "night" (nearly idle) or
    #: "dedicated" (zero external load)
    load_profile: str = "night"
    seed: int = 0
    nas: NASConfig = field(default_factory=NASConfig)
    shell: ShellConfig = field(default_factory=ShellConfig)
    #: extra per-host load overrides
    load_models: dict[str, LoadModel] = field(default_factory=dict)
    pool_policy: str = "available-compute"
    #: when set, the flight recorder writes incident bundles here
    incident_dir: str | None = None


def _load_model_for(
    config: TestbedConfig, world: SimWorld, host: str
) -> LoadModel | None:
    if host in config.load_models:
        return config.load_models[host]
    rng = world.rng.stream(f"load:{host}")
    if config.load_profile == "day":
        return StochasticLoad.day(rng)
    if config.load_profile == "night":
        return StochasticLoad.night(rng)
    if config.load_profile == "dedicated":
        return None
    raise ValueError(f"unknown load profile {config.load_profile!r}")


def vienna_world(
    config: TestbedConfig | None = None, kernel: Kernel | None = None
) -> SimWorld:
    """Build the 13-host simulated world (no JRS yet)."""
    config = config or TestbedConfig()
    world = SimWorld(
        kernel if kernel is not None else VirtualKernel(),
        seed=config.seed,
    )
    fast: list[HostSpec] = []
    slow: list[HostSpec] = []
    loads: dict[str, LoadModel] = {}
    for index, (name, model) in enumerate(VIENNA_HOSTS):
        spec = make_host(name, model, ip_suffix=10 + index)
        (fast if model.startswith("Ultra") else slow).append(spec)
        model_load = _load_model_for(config, world, name)
        if model_load is not None:
            loads[name] = model_load
    build_lan(world, fast_hosts=fast, slow_hosts=slow, load_models=loads)
    return world


def vienna_testbed(
    config: TestbedConfig | None = None,
    kernel: Kernel | None = None,
    mutate_world: Callable[[SimWorld], None] | None = None,
) -> JSRuntime:
    """The full paper testbed: simulated hosts + a started JRS."""
    config = config or TestbedConfig()
    world = vienna_world(config, kernel)
    if mutate_world is not None:
        mutate_world(world)
    runtime = JSRuntime(
        world,
        layout={
            site: {cl: list(hosts) for cl, hosts in clusters.items()}
            for site, clusters in VIENNA_LAYOUT.items()
        },
        nas_config=config.nas,
        shell_config=config.shell,
        pool_policy=config.pool_policy,
        incident_dir=config.incident_dir,
    )
    return runtime.start()
