"""``JSRuntime``: wiring a complete JRS over a simulated world.

One runtime = one JRS installation: transport, Network Agent System,
a PubOA per node, the JS-Shell, the resource pool (backed by monitored
data), the persistent store, and per-application AppOAs.  Applications
run via :meth:`run_app`, which pushes an ambient context so the paper's
bare-constructor API (``JSRegistration()``, ``Node()``, ``JSObj(...)``)
works unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro import context
from repro.agents.app_oa import AppOA
from repro.obs import events as ev
from repro.agents.nas import NASConfig, NetworkAgentSystem
from repro.agents.pub_oa import PubOA
from repro.agents.shell import JSShell, ShellConfig
from repro.constraints import JSConstraints
from repro.core.persistence import PersistentStore
from repro.errors import AllocationError, RegistrationError
from repro.obs.flight import (
    TRIGGER_DEADLOCK,
    TRIGGER_MIGRATE_PENDING,
    FlightRecorder,
)
from repro.simnet.world import SimWorld
from repro.sysmon import SysParam
from repro.transport import Transport
from repro.util.ids import IdGenerator
from repro.varch.pool import MonitoredPool


class JSRuntime:
    def __init__(
        self,
        world: SimWorld,
        layout: dict[str, dict[str, list[str]]],
        nas_config: NASConfig | None = None,
        shell_config: ShellConfig | None = None,
        persistence_dir: str | None = None,
        pool_policy: str = "available-compute",
        incident_dir: str | None = None,
    ) -> None:
        self.world = world
        self.kernel = world.kernel
        self.transport = Transport(world)
        self.nas = NetworkAgentSystem(
            world, self.transport, layout, nas_config
        )
        self.shell = JSShell(self, shell_config)
        self.pool = MonitoredPool(
            world,
            hosts=self.nas.known_hosts(),
            policy=pool_policy,
            default_constraints=self.shell.config.default_constraints,
            snapshot_fn=self.nas.latest_snapshot,
            site_fn=self.nas.site_of,
        )
        self.persistent_store = PersistentStore(persistence_dir)
        self.ids = IdGenerator()
        self.pub_oas: dict[str, PubOA] = {}
        self.apps: dict[str, AppOA] = {}
        #: simulated "URL space" for codebase.add(url)
        self.url_store: dict[str, list[str]] = {}
        self._started = False
        # Reliability layer (ISSUE 10): both knobs default to None, so
        # without explicit ShellConfig opt-in the transport keeps the
        # paper's fire-once semantics.
        self.transport.retry_policy = self.shell.config.retry_policy
        self.transport.health = self.shell.config.circuit_breaker
        if self.transport.health is not None:
            self.transport.health.on_state = self._on_circuit_state
        # Where each host registered originally, for NAS re-registration
        # after a crash-restart.
        self._host_homes = {
            host: (self.nas.cluster_of(host), self.nas.site_of(host))
            for host in self.nas.known_hosts()
        }
        for host in self.nas.known_hosts():
            self.ensure_pub_oa(host)
        # Keep pool membership in sync when the NAS releases failed nodes.
        self.nas.failure_listeners.append(self._on_node_failure)
        world.restart_listeners.append(self._on_node_restart)
        # The failure flight recorder: trace-event triggers (host.failed,
        # slo.alert, rpc.timeout) via the tracer, sanitizer findings
        # (deadlock / risky migration) via its failure hooks.  attach()
        # no-ops on a NullTracer, so wiring it is always safe.
        self.flight = FlightRecorder(
            world.tracer,
            cluster_provider=self.nas.cluster_metrics,
            nas_provider=self.nas.history_document,
            slo_provider=self._slo_alerts,
            incident_dir=incident_dir,
        )
        self.flight.attach()
        world.kernel.sanitizer.failure_hooks.append(
            self._on_sanitizer_finding
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "JSRuntime":
        if self._started:
            return self
        self._started = True
        self.nas.start()
        for pub_oa in self.pub_oas.values():
            pub_oa.start()
        return self

    def ensure_pub_oa(self, host: str) -> PubOA:
        pub_oa = self.pub_oas.get(host)
        if pub_oa is None:
            pub_oa = PubOA(self, host)
            self.pub_oas[host] = pub_oa
            if self._started:
                pub_oa.start()
        return pub_oa

    def register_archive(self, path_or_url: str, classes: list) -> None:
        """Declare a "jar file" or codebase URL: a named bundle of classes
        that ``JSCodebase.add(path_or_url)`` can pull in.  Class objects
        are registered globally; strings must already be registered."""
        from repro.agents.objects import ClassRegistry

        names: list[str] = []
        for item in classes:
            if isinstance(item, type):
                ClassRegistry.register(item)
                names.append(item.__name__)
            else:
                ClassRegistry.resolve(str(item))  # validates
                names.append(str(item))
        self.url_store[path_or_url] = names

    def _on_node_failure(self, host: str) -> None:
        # NAS released the node: stop offering it to new allocations.  The
        # OAS deliberately does NOT touch objects that lived there (paper:
        # the object agent system does not yet exploit failure info) —
        # unless the checkpoint-recovery extension is switched on.
        if host in self.pool.hosts:
            self.pool.remove_host(host)
        if self.transport.health is not None:
            # NAS-confirmed death outranks suspicion: trip immediately so
            # reliable RPC sheds traffic instead of burning retry budget.
            self.transport.health.force_open(host, self.world.now())
        if self.shell.config.oas_failure_recovery:
            for app in list(self.apps.values()):
                app.recover_from_failure(host)

    def _on_node_restart(self, host: str) -> None:
        """Crash-restart: the machine came back as a blank slate, so the
        agents layer must too — fresh holder tables (a new PubOA), NAS
        re-registration under the original cluster/site, pool
        membership, and a clean circuit."""
        old = self.pub_oas.pop(host, None)
        if old is not None:
            # The pre-crash endpoint's handlers close over dead holder
            # tables; close it so the fresh PubOA can re-register.
            old.endpoint.close()
        if self.nas.cluster_of(host) is None:
            cluster, site = self._host_homes.get(host, (None, None))
            if cluster is not None:
                self.nas.add_node(host, cluster, site)
        if host not in self.pool.hosts:
            self.pool.add_host(host)
        self.ensure_pub_oa(host)
        if self.transport.health is not None:
            self.transport.health.reset(host)

    def _on_circuit_state(self, host: str, state: str) -> None:
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.emit(ev.CIRCUIT_STATE, ts=self.world.now(), host=host,
                        state=state)
            tracer.count(f"circuit.{state}", host=host)

    # -- telemetry -----------------------------------------------------------

    def _slo_alerts(self) -> list[dict]:
        slo = self.nas.slo
        return list(slo.alerts) if slo is not None else []

    def _on_sanitizer_finding(self, finding) -> None:
        trigger = {
            "san-lock-deadlock": TRIGGER_DEADLOCK,
            "san-migrate-pending": TRIGGER_MIGRATE_PENDING,
        }.get(finding.rule)
        if trigger is None:
            return
        self.flight.record(
            trigger, ts=self.world.now(), rule=finding.rule,
            message=finding.message, symbol=finding.symbol,
        )

    def metrics_document(self) -> dict:
        """Cluster metrics as a JSON-safe document: the merged aggregate
        plus the per-host snapshots behind it.  Prefers the NAS-shipped
        :class:`~repro.obs.timeseries.ClusterMetrics` (heartbeat-fed,
        windowed); falls back to the tracer's live per-host registries
        when no delta has reached the domain manager yet."""
        from repro.obs.timeseries import _jsonable

        cluster = self.nas.cluster_metrics()
        if cluster is not None and cluster.ingested:
            return {
                "source": "nas",
                "merged": _jsonable(cluster.merged_snapshot()),
                "hosts": {
                    host: _jsonable(cluster.host_snapshot(host))
                    for host in cluster.hosts()
                },
                "windows": {
                    host: cluster.series[host].total_windows
                    for host in cluster.hosts()
                },
            }
        tracer = self.world.tracer
        host_metrics = getattr(tracer, "host_metrics", None) or {}
        return {
            "source": "tracer",
            "merged": _jsonable(tracer.merged_host_metrics())
            if host_metrics else {"counters": {}, "histograms": {}},
            "hosts": {
                host: _jsonable(host_metrics[host].snapshot())
                for host in sorted(host_metrics)
            },
            "windows": {},
        }

    # -- applications ------------------------------------------------------------

    def register_app(self, home: str | None = None) -> AppOA:
        if home is None:
            home = self.nas.known_hosts()[0]
        if home not in self.nas.known_hosts():
            raise RegistrationError(f"home node {home!r} is not under JRS")
        app_id = self.ids.next("app")
        app = AppOA(self, app_id, home)
        self.apps[app_id] = app
        return app

    def forget_app(self, app_id: str) -> None:
        self.apps.pop(app_id, None)

    def _app_body(
        self,
        fn: Callable[..., Any],
        args: tuple,
        env: "context.Environment",
        home: str,
        name: str,
    ) -> Callable[[], Any]:
        """Build the process body for an application: ambient environment
        plus (when tracing) an ``app`` root span that starts a fresh trace
        and covers the whole run — every invocation/migration the app
        triggers hangs off it, which is what makes the critical-path
        extractor's "main trace" well-defined."""

        def wrapped() -> Any:
            tracer = self.world.tracer
            span = None
            if tracer.enabled:
                span = tracer.begin_span(
                    ev.APP, ts=self.world.now(), host=home, actor=name,
                    parent=None, app=name,
                )
            try:
                with context.scoped(env):
                    return fn(*args)
            finally:
                if span is not None:
                    tracer.end_span(span, ts=self.world.now())

        return wrapped

    def run_app(
        self,
        fn: Callable[..., Any],
        *args: Any,
        node: str | None = None,
        name: str = "jsa",
    ) -> Any:
        """Run ``fn(*args)`` as a JavaSymphony application process and
        return its result.  Agent loops keep running between calls."""
        self.start()
        home = node if node is not None else self.nas.known_hosts()[0]
        env = context.Environment(pool=self.pool, runtime=self)
        env.extras["home"] = home
        wrapped = self._app_body(fn, args, env, home, name)
        proc = self.kernel.spawn(wrapped, name=name, context={"env": env})
        self.kernel.run(main=proc)
        return proc.result()

    def spawn_app(
        self,
        fn: Callable[..., Any],
        *args: Any,
        node: str | None = None,
        name: str = "jsa",
    ):
        """Spawn an application process without driving the kernel; use
        with :meth:`run_apps` (or your own ``kernel.run``) to execute
        several JSAs concurrently against one JRS."""
        self.start()
        home = node if node is not None else self.nas.known_hosts()[0]
        env = context.Environment(pool=self.pool, runtime=self)
        env.extras["home"] = home
        wrapped = self._app_body(fn, args, env, home, name)
        return self.kernel.spawn(wrapped, name=name, context={"env": env})

    def run_apps(
        self, *specs: Callable[..., Any] | tuple
    ) -> list[Any]:
        """Run several applications concurrently; each spec is a callable
        or ``(callable, home_node)``.  Returns their results in order."""
        procs = []
        for index, spec in enumerate(specs):
            if isinstance(spec, tuple):
                fn, node = spec
            else:
                fn, node = spec, None
            procs.append(
                self.spawn_app(fn, node=node, name=f"jsa-{index}")
            )
        for proc in procs:
            self.kernel.run(main=proc)
        return [proc.result() for proc in procs]

    # -- placement decisions -------------------------------------------------------

    def _placement_rank(
        self,
        hosts: Iterable[str],
        constraints: JSConstraints | None,
    ) -> list[str]:
        merged = (
            constraints.merged_with(self.shell.config.default_constraints)
            if constraints is not None
            else (self.shell.config.default_constraints or JSConstraints())
        )
        scored = []
        for host in hosts:
            if host not in self.pool.hosts:
                continue
            if self.world.machine(host).failed:
                continue
            if (
                self.transport.health is not None
                and self.transport.health.suspected(host)
            ):
                # Circuit open or probing: shed new placements until the
                # breaker closes again.
                continue
            snap = self.pool.snapshot(host)
            if not merged.holds(snap):
                continue
            available = (
                snap[SysParam.PEAK_MFLOPS] * snap[SysParam.IDLE] / 100.0
            )
            scored.append(
                (snap[SysParam.JS_OBJECTS], -available, host)
            )
        return [host for _, _, host in sorted(scored)]

    def choose_object_host(
        self,
        hosts: Iterable[str] | None = None,
        constraints: JSConstraints | None = None,
    ) -> str:
        """Where JRS puts an object: "a node with the smallest system load
        and reasonable resources available" among the candidates, spread
        by how many objects each node already hosts."""
        pool_hosts = self.pool.hosts if hosts is None else list(hosts)
        ranked = self._placement_rank(pool_hosts, constraints)
        if not ranked:
            raise AllocationError(
                "no node satisfies the object-placement constraints"
            )
        return ranked[0]

    def choose_migration_target(
        self,
        from_host: str,
        constraints: JSConstraints | None = None,
        exclude: Iterable[str] = (),
    ) -> str | None:
        """Target for (auto-)migration off ``from_host``: prefer a node in
        the same physical cluster, then the same site, then anywhere —
        the paper's locality-preserving search order."""
        excluded = set(exclude) | {from_host}
        candidates = [
            h for h in self._placement_rank(self.pool.hosts, constraints)
            if h not in excluded
        ]
        if not candidates:
            return None
        home_cluster = self.nas.cluster_of(from_host)
        home_site = self.nas.site_of(from_host)

        def tier(host: str) -> int:
            if home_cluster and self.nas.cluster_of(host) == home_cluster:
                return 0
            if home_site and self.nas.site_of(host) == home_site:
                return 1
            return 2

        return min(candidates, key=lambda h: (tier(h), candidates.index(h)))
