"""Seeded random streams.

Every stochastic element of a simulation (per-host background load, jitter
on monitoring periods, allocation tie-breaking) draws from an independent
named stream derived from one root seed, so adding a consumer does not
perturb the draws seen by existing consumers.
"""

from __future__ import annotations

import zlib

import numpy as np


def _stable_key(name: str) -> int:
    # str.hash() is salted per interpreter; crc32 is stable across runs.
    return zlib.crc32(name.encode("utf-8"))


class RngStreams:
    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """A generator unique to ``name``, stable across runs."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                self.seed, spawn_key=(_stable_key(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen
