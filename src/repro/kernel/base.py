"""Abstract execution-kernel interfaces.

Everything in PySymphony — network agents, object agents, and user
applications — is written in a *blocking* style against this interface,
exactly like JavaSymphony applications were written against JVM threads
and blocking Java/RMI.  Two implementations exist:

* :class:`repro.kernel.virtual.VirtualKernel` — cooperative thread-backed
  processes scheduled against an event heap in **virtual time**.  Fully
  deterministic under a seed; a 13-node simulated day of monitoring runs
  in host-milliseconds.
* :class:`repro.kernel.real.RealKernel` — preemptive OS threads and wall
  clock, demonstrating that the same agent code is genuinely concurrent.

The golden rule for code running on a kernel: *only block through kernel
primitives* (``sleep``, ``Future.wait``, ``Channel.get``, ...).  Blocking
through raw ``time.sleep``/``threading`` would stall the virtual scheduler.
"""

from __future__ import annotations

import abc
import enum
from typing import Any, Callable

from repro.errors import KernelError
from repro.obs.tracer import NULL_TRACER
from repro.sanitizer.core import NULL_SANITIZER


class ProcessState(enum.Enum):
    NEW = "new"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"
    FAILED = "failed"


class Process(abc.ABC):
    """A schedulable activity.  Comparable to one JVM thread in the paper."""

    kernel: "Kernel"
    pid: int
    name: str
    context: dict

    @property
    @abc.abstractmethod
    def state(self) -> ProcessState: ...

    @property
    def finished(self) -> bool:
        return self.state in (ProcessState.FINISHED, ProcessState.FAILED)

    @abc.abstractmethod
    def join(self, timeout: float | None = None) -> None:
        """Block the calling process until this process finishes."""

    @abc.abstractmethod
    def result(self) -> Any:
        """Return the process function's return value, re-raising any
        exception it died with.  Only valid after it finished."""


class Future(abc.ABC):
    """A single-assignment result slot — the substrate for async RMI
    handles, RPC replies and migration confirmations."""

    @abc.abstractmethod
    def done(self) -> bool: ...

    @abc.abstractmethod
    def set_result(self, value: Any) -> None: ...

    @abc.abstractmethod
    def set_exception(self, exc: BaseException) -> None: ...

    @abc.abstractmethod
    def wait(self, timeout: float | None = None) -> bool:
        """Block until done (returns True) or timeout (returns False)."""

    @abc.abstractmethod
    def result(self, timeout: float | None = None) -> Any:
        """Block until done and return the value / raise the exception.
        Raises :class:`repro.errors.WaitTimeout` on timeout."""

    @abc.abstractmethod
    def exception(self) -> BaseException | None:
        """The stored exception, or None.  Only valid once done."""


class Channel(abc.ABC):
    """Unbounded FIFO between processes (agent mailboxes)."""

    @abc.abstractmethod
    def put(self, item: Any) -> None: ...

    @abc.abstractmethod
    def get(self, timeout: float | None = None) -> Any:
        """Block for the next item; raises WaitTimeout on timeout."""

    @abc.abstractmethod
    def __len__(self) -> int: ...


class Semaphore(abc.ABC):
    @abc.abstractmethod
    def acquire(self, timeout: float | None = None) -> None: ...

    @abc.abstractmethod
    def release(self) -> None: ...


class Kernel(abc.ABC):
    """Factory + scheduler facade shared by both execution backends."""

    #: observability sink; worlds install the ambient tracer here so
    #: ``spawn`` can record process creation.  Null (and free) by default.
    tracer = NULL_TRACER

    #: concurrency sanitizer (symsan); kernels adopt the ambient sanitizer
    #: at construction time.  Null (and free) by default.
    sanitizer = NULL_SANITIZER

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall)."""

    @abc.abstractmethod
    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        context: dict | None = None,
        delay: float = 0.0,
    ) -> Process:
        """Create a process running ``fn(*args)``.  ``context`` defaults to
        the spawning process's context (shared reference), which is how the
        "current application" travels to async-invocation worker threads."""

    @abc.abstractmethod
    def sleep(self, duration: float) -> None:
        """Block the calling process for ``duration`` seconds."""

    @abc.abstractmethod
    def create_future(self) -> Future: ...

    @abc.abstractmethod
    def create_channel(self) -> Channel: ...

    @abc.abstractmethod
    def create_semaphore(self, value: int = 1) -> Semaphore: ...

    @abc.abstractmethod
    def current_process(self) -> Process | None:
        """The process the calling code runs in, or None outside any."""

    @abc.abstractmethod
    def run(
        self,
        main: Process | None = None,
        until: float | None = None,
    ) -> None:
        """Drive execution.  With ``main``, return once it finished; with
        ``until``, stop at that time.  Virtual kernels execute events here;
        the real kernel simply waits (threads run on their own)."""

    def current_process_name(self) -> str:
        """Name of the calling process, or "" outside any process."""
        proc = self.current_process()
        return proc.name if proc is not None else ""

    def require_process(self) -> Process:
        proc = self.current_process()
        if proc is None:
            raise KernelError(
                "this operation must run inside a kernel process"
            )
        return proc

    # -- convenience -------------------------------------------------------

    def run_callable(
        self, fn: Callable[..., Any], *args: Any, name: str = "main"
    ) -> Any:
        """Spawn ``fn`` as a process, run the kernel until it finishes and
        return its result (raising its exception)."""
        proc = self.spawn(fn, *args, name=name)
        self.run(main=proc)
        return proc.result()
