"""Deterministic virtual-time kernel.

Processes are backed by real OS threads but run in strict lockstep: at any
instant exactly one thread (either the scheduler or one process) is
active, with handoff through per-process events.  This keeps the blocking
programming style of the JavaSymphony API while making every run fully
deterministic — events are ordered by ``(time, sequence-number)`` and all
randomness flows from seeded streams.

The technique is the classic thread-based discrete-event simulation: the
scheduler pops the next event from a heap, advances the clock, resumes the
owning process, and waits until that process blocks again through a kernel
primitive before popping the next event.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import Any, Callable

from repro.errors import KernelError, SimDeadlockError, WaitTimeout
from repro.kernel.base import (
    Channel,
    Future,
    Kernel,
    Process,
    ProcessState,
    Semaphore,
)
from repro.obs import spans as _spans
from repro.obs.events import PROC_SPAWN
from repro.sanitizer.core import caller_site, current_sanitizer

_SWITCH_TIMEOUT = 60.0  # seconds of host time; trips only on kernel bugs


class _KernelShutdown(BaseException):
    """Raised inside process threads to unwind them on kernel shutdown.
    Derives from BaseException so application except-clauses don't eat it."""


class VirtualProcess(Process):
    def __init__(
        self,
        kernel: "VirtualKernel",
        pid: int,
        name: str,
        fn: Callable[..., Any],
        args: tuple,
        context: dict,
    ) -> None:
        self.kernel = kernel
        self.pid = pid
        self.name = name
        self.context = context
        self._fn = fn
        self._args = args
        self._state = ProcessState.NEW
        self._resume_evt = threading.Event()
        self._thread: threading.Thread | None = None
        self._result: Any = None
        self._exc: BaseException | None = None
        self._wake_token = 0
        self._wake_reason: str | None = None
        #: why/where this process is currently blocked (wait-for dumps)
        self._wait_why: str | None = None
        self._wait_site: tuple[str, int] | None = None
        #: spawner's span context (installed before fn runs, when traced)
        self._span_ctx = None
        self.finished_future: VirtualFuture = VirtualFuture(kernel)

    # -- Process API -------------------------------------------------------

    @property
    def state(self) -> ProcessState:
        return self._state

    def join(self, timeout: float | None = None) -> None:
        if not self.finished_future.wait(timeout):
            raise WaitTimeout(f"join on {self.name} timed out")

    def result(self) -> Any:
        if not self.finished:
            raise KernelError(f"process {self.name} has not finished")
        if self._exc is not None:
            raise self._exc
        return self._result

    # -- scheduler plumbing (kernel-internal) -------------------------------

    def _start_thread(self) -> None:
        self._thread = threading.Thread(
            target=self._main, name=f"vproc-{self.pid}-{self.name}",
            daemon=True,
        )
        self._thread.start()

    def _main(self) -> None:
        try:
            # Wait for the scheduler to hand us control the first time.
            self._wait_for_resume()
        except _KernelShutdown:
            self._state = ProcessState.FAILED
            return
        self._state = ProcessState.RUNNING
        if self._span_ctx is not None:
            # Async continuation: spans opened here chain to the spawner.
            _spans.set_context(self._span_ctx)
        san = self.kernel.sanitizer
        if san.enabled:
            san.register_thread(self.name)
            # spawn edge: everything the spawner did happens-before us
            san.hb_recv(self)
        try:
            self._result = self._fn(*self._args)
            self._state = ProcessState.FINISHED
        except _KernelShutdown:
            # Kernel torn down: exit silently, touch no shared state.
            self._state = ProcessState.FAILED
            return
        except BaseException as exc:  # noqa: BLE001 - captured for result()
            self._exc = exc
            self._state = ProcessState.FAILED
            self.kernel._note_crash(self, exc)
        # Completing the future wakes joiners via heap events; safe here
        # because we still hold control.
        if self._exc is not None:
            self.finished_future.set_exception(self._exc)
        else:
            self.finished_future.set_result(self._result)
        # Hand control back to the scheduler for good.
        self.kernel._sched_evt.set()

    def _wait_for_resume(self) -> None:
        if not self._resume_evt.wait(_SWITCH_TIMEOUT):
            raise KernelError(f"process {self.name}: resume wait timed out")
        self._resume_evt.clear()
        if self.kernel._shutting_down:
            raise _KernelShutdown()

    def _yield_to_scheduler(self) -> None:
        self.kernel._sched_evt.set()
        self._wait_for_resume()

    def _block(self, why: str) -> str:
        """Block the calling (current) process until woken.

        Returns the wake reason ('wake' for a normal wake, 'timeout' for a
        timer wake)."""
        self._state = ProcessState.BLOCKED
        self._wake_reason = None
        self._wait_why = why
        if self.kernel.sanitizer.enabled:
            self._wait_site = caller_site()
        self._yield_to_scheduler()
        self._wait_why = None
        self._wait_site = None
        self._state = ProcessState.RUNNING
        return self._wake_reason or "wake"

    def _new_token(self) -> int:
        self._wake_token += 1
        return self._wake_token


class VirtualFuture(Future):
    def __init__(self, kernel: "VirtualKernel") -> None:
        self._kernel = kernel
        self._done = False
        self._value: Any = None
        self._exc: BaseException | None = None
        self._waiters: list[tuple[VirtualProcess, int]] = []
        self._callbacks: list[Callable[["VirtualFuture"], None]] = []

    def done(self) -> bool:
        return self._done

    def _complete(self) -> None:
        san = self._kernel.sanitizer
        if san.enabled:
            # publish the completer's clock before waking waiters
            san.hb_send(self)
            san.future_completed(self)
        for proc, token in self._waiters:
            self._kernel._push_wake(self._kernel.now(), proc, token, "wake")
        self._waiters.clear()
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self._kernel.call_soon(cb, self)

    def set_result(self, value: Any) -> None:
        if self._done:
            raise KernelError("future already completed")
        self._done = True
        self._value = value
        self._complete()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise KernelError("future already completed")
        self._done = True
        self._exc = exc
        self._complete()

    def add_done_callback(self, cb: Callable[["VirtualFuture"], None]) -> None:
        """Run ``cb(self)`` in scheduler context once done (immediately if
        already done).  Callbacks must not block."""
        if self._done:
            self._kernel.call_soon(cb, self)
        else:
            self._callbacks.append(cb)

    def wait(self, timeout: float | None = None) -> bool:
        san = self._kernel.sanitizer
        if self._done:
            if san.enabled:
                san.hb_recv(self)
            return True
        proc = self._kernel._require_current()
        token = proc._new_token()
        self._waiters.append((proc, token))
        if timeout is not None:
            self._kernel._push_wake(
                self._kernel.now() + timeout, proc, token, "timeout"
            )
        reason = proc._block("future-wait")
        if reason == "timeout" and not self._done:
            self._waiters = [
                (p, t) for (p, t) in self._waiters if p is not proc
            ]
            return False
        if san.enabled and self._done:
            san.hb_recv(self)
        return self._done

    def result(self, timeout: float | None = None) -> Any:
        if not self.wait(timeout):
            raise WaitTimeout("future result timed out")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self) -> BaseException | None:
        return self._exc


class VirtualChannel(Channel):
    def __init__(self, kernel: "VirtualKernel") -> None:
        self._kernel = kernel
        self._items: deque[Any] = deque()
        self._waiters: deque[tuple[VirtualProcess, int]] = deque()

    def put(self, item: Any) -> None:
        if self._kernel.sanitizer.enabled:
            self._kernel.sanitizer.hb_send(self)
        self._items.append(item)
        while self._waiters:
            proc, token = self._waiters.popleft()
            self._kernel._push_wake(self._kernel.now(), proc, token, "wake")
            break  # wake one consumer per item

    def get(self, timeout: float | None = None) -> Any:
        kernel = self._kernel
        san = kernel.sanitizer
        proc = kernel._require_current()
        deadline = None if timeout is None else kernel.now() + timeout
        if san.enabled and not self._items:
            san.chan_wait(self, kernel)
        while not self._items:
            token = proc._new_token()
            self._waiters.append((proc, token))
            if deadline is not None:
                kernel._push_wake(deadline, proc, token, "timeout")
            reason = proc._block("channel-get")
            if reason == "timeout" and not self._items:
                self._waiters = deque(
                    (p, t) for (p, t) in self._waiters if p is not proc
                )
                if san.enabled:
                    san.chan_wait_done(self)
                raise WaitTimeout("channel get timed out")
        if san.enabled:
            san.chan_wait_done(self)
            san.hb_recv(self)
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


class VirtualSemaphore(Semaphore):
    def __init__(self, kernel: "VirtualKernel", value: int) -> None:
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self._kernel = kernel
        self._value = value
        self._waiters: deque[tuple[VirtualProcess, int]] = deque()

    def acquire(self, timeout: float | None = None) -> None:
        kernel = self._kernel
        proc = kernel._require_current()
        deadline = None if timeout is None else kernel.now() + timeout
        while self._value <= 0:
            token = proc._new_token()
            self._waiters.append((proc, token))
            if deadline is not None:
                kernel._push_wake(deadline, proc, token, "timeout")
            reason = proc._block("sem-acquire")
            if reason == "timeout" and self._value <= 0:
                self._waiters = deque(
                    (p, t) for (p, t) in self._waiters if p is not proc
                )
                raise WaitTimeout("semaphore acquire timed out")
        self._value -= 1
        if kernel.sanitizer.enabled:
            kernel.sanitizer.hb_recv(self)

    def release(self) -> None:
        if self._kernel.sanitizer.enabled:
            self._kernel.sanitizer.hb_send(self)
        self._value += 1
        if self._waiters:
            proc, token = self._waiters.popleft()
            self._kernel._push_wake(self._kernel.now(), proc, token, "wake")

    def __enter__(self) -> "VirtualSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class VirtualKernel(Kernel):
    """Event-heap scheduler with cooperative thread-backed processes."""

    def __init__(self, strict: bool = False) -> None:
        #: strict=True re-raises the first unhandled process exception when
        #: run() returns; agents are expected to handle their own errors, so
        #: tests enable this to catch bugs.
        self.strict = strict
        self.sanitizer = current_sanitizer()
        self._time = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, tuple]] = []
        self._sched_evt = threading.Event()
        self._current: VirtualProcess | None = None
        self._running = False
        self._shutting_down = False
        self._next_pid = 1
        self.crashes: list[tuple[VirtualProcess, BaseException]] = []
        self.processes: list[VirtualProcess] = []
        _LIVE_KERNELS.add(self)

    # -- time & events -------------------------------------------------------

    def now(self) -> float:
        return self._time

    def _push(self, time: float, event: tuple) -> int:
        if time < self._time - 1e-12:
            raise KernelError(
                f"cannot schedule event in the past ({time} < {self._time})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return self._seq

    def _push_wake(
        self, time: float, proc: VirtualProcess, token: int, reason: str
    ) -> None:
        self._push(time, ("wake", proc, token, reason))

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` in scheduler context at the current time.
        The callable must not block."""
        seq = self._push(self._time, ("call", fn, args))
        if self.sanitizer.enabled:
            # the pusher's clock travels with the event to the scheduler
            self.sanitizer.on_call_push(seq)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        seq = self._push(time, ("call", fn, args))
        if self.sanitizer.enabled:
            self.sanitizer.on_call_push(seq)

    # -- processes -----------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        context: dict | None = None,
        delay: float = 0.0,
    ) -> VirtualProcess:
        if context is None:
            parent = self._current
            context = parent.context if parent is not None else {}
        pid = self._next_pid
        self._next_pid += 1
        proc = VirtualProcess(
            self, pid, name or f"proc-{pid}", fn, tuple(args), context
        )
        self.processes.append(proc)
        self._push(self._time + delay, ("start", proc))
        if self.sanitizer.enabled:
            # spawn edge: the child's first action happens-after this point
            self.sanitizer.hb_send(proc)
        if self.tracer.enabled:
            proc._span_ctx = _spans.current_context()
            self.tracer.emit(PROC_SPAWN, ts=self._time + delay,
                             actor=proc.name, pid=pid)
            self.tracer.count("proc.spawned")
        return proc

    def sleep(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("cannot sleep a negative duration")
        proc = self._require_current()
        token = proc._new_token()
        self._push_wake(self._time + duration, proc, token, "wake")
        proc._block("sleeping")

    def current_process(self) -> VirtualProcess | None:
        return self._current

    def _require_current(self) -> VirtualProcess:
        proc = self._current
        if proc is None:
            raise KernelError(
                "blocking kernel operation called outside a process"
            )
        return proc

    def _note_crash(self, proc: VirtualProcess, exc: BaseException) -> None:
        self.crashes.append((proc, exc))

    # -- factories -----------------------------------------------------------

    def create_future(self) -> VirtualFuture:
        fut = VirtualFuture(self)
        if self.sanitizer.enabled:
            self.sanitizer.track_future(fut, self)
        return fut

    def create_channel(self) -> VirtualChannel:
        return VirtualChannel(self)

    def create_semaphore(self, value: int = 1) -> VirtualSemaphore:
        return VirtualSemaphore(self, value)

    # -- the scheduler loop ----------------------------------------------------

    def _switch_to(self, proc: VirtualProcess) -> None:
        self._current = proc
        proc._resume_evt.set()
        if not self._sched_evt.wait(_SWITCH_TIMEOUT):
            raise KernelError(
                f"scheduler handoff to {proc.name} timed out - a process "
                "blocked outside kernel primitives?"
            )
        self._sched_evt.clear()
        self._current = None

    def _dispatch(self, event: tuple, seq: int = 0) -> None:
        kind = event[0]
        if kind == "start":
            proc = event[1]
            proc._start_thread()
            self._switch_to(proc)
        elif kind == "wake":
            _, proc, token, reason = event
            if (
                proc.state is ProcessState.BLOCKED
                and proc._wake_token == token
            ):
                proc._wake_reason = reason
                self._switch_to(proc)
            # else: stale wake (process already woken by the other path)
        elif kind == "call":
            _, fn, args = event
            if self.sanitizer.enabled:
                # absorb the pusher's clock into the scheduler context
                self.sanitizer.on_call_run(seq)
            fn(*args)
        else:  # pragma: no cover - defensive
            raise KernelError(f"unknown event kind {kind!r}")

    def run(
        self,
        main: Process | None = None,
        until: float | None = None,
    ) -> None:
        if self._running:
            raise KernelError("kernel.run() is not re-entrant")
        if self._current is not None:
            raise KernelError("kernel.run() called from inside a process")
        self._running = True
        try:
            while self._heap:
                if main is not None and main.finished:
                    break
                time, seq, event = self._heap[0]
                if until is not None and time > until + 1e-12:
                    self._time = until
                    break
                heapq.heappop(self._heap)
                self._time = time
                self._dispatch(event, seq)
            else:
                # Heap exhausted.
                if until is not None and self._time < until:
                    self._time = until
                if main is not None and not main.finished:
                    dump = self._blocked_dump()
                    if self.sanitizer.enabled:
                        self.sanitizer.note_all_blocked(
                            self, dump, getattr(main, "_wait_site", None)
                        )
                    raise SimDeadlockError(
                        f"no more events but process {main.name} "
                        f"is still {main.state.value}; wait-for graph: "
                        f"{dump}"
                    )
        finally:
            self._running = False
        if self.strict:
            # The main process's own exception propagates through result();
            # strict mode flags crashes in *background* processes, which
            # would otherwise be silently swallowed.
            background = [(p, e) for p, e in self.crashes if p is not main]
            if background:
                proc, exc = background[0]
                raise KernelError(
                    f"process {proc.name} crashed: {exc!r}"
                ) from exc

    def run_until_idle(self) -> None:
        """Drain every pending event (only safe without infinite loops)."""
        self.run()

    def _blocked_dump(self) -> str:
        """One line per blocked process: what it waits on and where."""
        parts = []
        for proc in self.processes:
            if proc.state is not ProcessState.BLOCKED:
                continue
            why = proc._wait_why or "blocked"
            site = proc._wait_site
            where = f" at {site[0]}:{site[1]}" if site else ""
            parts.append(f"{proc.name}: {why}{where}")
        return "; ".join(parts) if parts else "<no blocked processes>"

    def shutdown(self) -> None:
        """Terminate every blocked process thread.

        Finished simulations otherwise leak their daemon threads (agent
        loops parked in kernel sleeps) for the life of the host process —
        harmless for one simulation, fatal for a test suite that builds
        hundreds.  Idempotent; the kernel is unusable afterwards."""
        if self._shutting_down:
            return
        if self._running or self._current is not None:
            raise KernelError("cannot shut down a running kernel")
        if self.sanitizer.enabled:
            # sweep leaks while blocked processes still hold their state
            self.sanitizer.check_leaks(self)
        self._shutting_down = True
        self._heap.clear()
        for proc in self.processes:
            thread = proc._thread
            if thread is not None and thread.is_alive():
                proc._resume_evt.set()
        for proc in self.processes:
            thread = proc._thread
            if thread is not None and thread.is_alive():
                thread.join(timeout=5.0)


import weakref  # noqa: E402  (kept by the class registry below)

#: every kernel ever created and not yet collected; test harnesses sweep
#: this to shut down leaked simulations between tests.
_LIVE_KERNELS: "weakref.WeakSet[VirtualKernel]" = weakref.WeakSet()


def shutdown_all_kernels() -> None:
    for kernel in list(_LIVE_KERNELS):
        try:
            kernel.shutdown()
        except KernelError:
            pass  # still running; its owner is responsible
