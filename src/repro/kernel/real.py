"""Wall-clock kernel: the same primitives mapped onto preemptive threads.

This backend exists to prove the agent and application code is genuinely
concurrent, not an artifact of the simulator — the JavaSymphony runtime
was a real multi-threaded system.  Time is wall time (optionally dilated
by ``time_scale`` so tests with long simulated periods finish quickly).
"""

from __future__ import annotations

import queue
import threading
import time as _time
from typing import Any, Callable

from repro.errors import KernelError, WaitTimeout
from repro.kernel.base import (
    Channel,
    Future,
    Kernel,
    Process,
    ProcessState,
    Semaphore,
)
from repro.obs import spans as _spans
from repro.obs.events import PROC_SPAWN
from repro.sanitizer.core import current_sanitizer


class RealProcess(Process):
    def __init__(
        self,
        kernel: "RealKernel",
        pid: int,
        name: str,
        fn: Callable[..., Any],
        args: tuple,
        context: dict,
        delay: float,
    ) -> None:
        self.kernel = kernel
        self.pid = pid
        self.name = name
        self.context = context
        self._fn = fn
        self._args = args
        self._delay = delay
        self._state = ProcessState.NEW
        self._result: Any = None
        self._exc: BaseException | None = None
        #: spawner's span context (installed before fn runs, when traced)
        self._span_ctx = None
        self._done_evt = threading.Event()
        self._thread = threading.Thread(
            target=self._main, name=f"rproc-{pid}-{name}", daemon=True
        )

    @property
    def state(self) -> ProcessState:
        return self._state

    def _main(self) -> None:
        from repro.kernel.virtual import _KernelShutdown

        if self._delay > 0:
            _time.sleep(self._delay * self.kernel.time_scale)
        self.kernel._register_thread(self)
        san = self.kernel.sanitizer
        if san.enabled:
            san.register_thread(self.name)
            # spawn edge: everything the spawner did happens-before us
            san.hb_recv(self)
        self._state = ProcessState.RUNNING
        if self._span_ctx is not None:
            # Async continuation: spans opened here chain to the spawner.
            _spans.set_context(self._span_ctx)
        try:
            self._result = self._fn(*self._args)
            self._state = ProcessState.FINISHED
        except _KernelShutdown:
            self._state = ProcessState.FAILED
        except BaseException as exc:  # noqa: BLE001 - captured for result()
            self._exc = exc
            self._state = ProcessState.FAILED
            self.kernel._note_crash(self, exc)
        finally:
            if san.enabled:
                # join edge: publish our clock before waking joiners
                san.hb_send(self)
            self._done_evt.set()

    def join(self, timeout: float | None = None) -> None:
        scaled = None if timeout is None else timeout * self.kernel.time_scale
        if not self._done_evt.wait(scaled):
            raise WaitTimeout(f"join on {self.name} timed out")
        if self.kernel.sanitizer.enabled:
            self.kernel.sanitizer.hb_recv(self)

    def result(self) -> Any:
        if not self.finished:
            raise KernelError(f"process {self.name} has not finished")
        if self._exc is not None:
            raise self._exc
        return self._result


class RealFuture(Future):
    def __init__(self, kernel: "RealKernel") -> None:
        self._kernel = kernel
        self._evt = threading.Event()
        self._lock = threading.Lock()
        self._value: Any = None
        self._exc: BaseException | None = None

    def done(self) -> bool:
        return self._evt.is_set()

    def set_result(self, value: Any) -> None:
        with self._lock:
            if self._evt.is_set():
                raise KernelError("future already completed")
            self._value = value
            self._complete()
            self._evt.set()

    def set_exception(self, exc: BaseException) -> None:
        with self._lock:
            if self._evt.is_set():
                raise KernelError("future already completed")
            self._exc = exc
            self._complete()
            self._evt.set()

    def _complete(self) -> None:
        san = self._kernel.sanitizer
        if san.enabled:
            # publish the completer's clock before waking waiters
            san.hb_send(self)
            san.future_completed(self)

    def wait(self, timeout: float | None = None) -> bool:
        scaled = None if timeout is None else timeout * self._kernel.time_scale
        done = self._evt.wait(scaled)
        if done and self._kernel.sanitizer.enabled:
            self._kernel.sanitizer.hb_recv(self)
        return done

    def result(self, timeout: float | None = None) -> Any:
        if not self.wait(timeout):
            raise WaitTimeout("future result timed out")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self) -> BaseException | None:
        return self._exc


class RealChannel(Channel):
    def __init__(self, kernel: "RealKernel") -> None:
        self._kernel = kernel
        self._queue: queue.Queue = queue.Queue()

    def put(self, item: Any) -> None:
        if self._kernel.sanitizer.enabled:
            self._kernel.sanitizer.hb_send(self)
        self._queue.put(item)

    def get(self, timeout: float | None = None) -> Any:
        scaled = None if timeout is None else timeout * self._kernel.time_scale
        san = self._kernel.sanitizer
        if san.enabled:
            san.chan_wait(self, self._kernel)
        try:
            item = self._queue.get(timeout=scaled)
        except queue.Empty:
            if san.enabled:
                san.chan_wait_done(self)
            raise WaitTimeout("channel get timed out") from None
        if san.enabled:
            san.chan_wait_done(self)
            san.hb_recv(self)
        return item

    def __len__(self) -> int:
        return self._queue.qsize()


class RealSemaphore(Semaphore):
    def __init__(self, kernel: "RealKernel", value: int) -> None:
        self._kernel = kernel
        self._sem = threading.Semaphore(value)

    def acquire(self, timeout: float | None = None) -> None:
        scaled = None if timeout is None else timeout * self._kernel.time_scale
        if not self._sem.acquire(timeout=scaled):
            raise WaitTimeout("semaphore acquire timed out")
        if self._kernel.sanitizer.enabled:
            self._kernel.sanitizer.hb_recv(self)

    def release(self) -> None:
        if self._kernel.sanitizer.enabled:
            self._kernel.sanitizer.hb_send(self)
        self._sem.release()

    def __enter__(self) -> "RealSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class RealKernel(Kernel):
    def __init__(self, time_scale: float = 1.0, strict: bool = False) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        #: Multiplier applied to every sleep/timeout: 0.01 makes a
        #: "10 second" monitoring period take 100 ms of wall time.
        self.time_scale = time_scale
        self.strict = strict
        self.sanitizer = current_sanitizer()
        self._t0 = _time.monotonic()
        self._next_pid = 1
        self._shutting_down = False
        #: guards pid allocation and the shared bookkeeping tables below;
        #: spawn()/_register_thread()/_note_crash() run on arbitrary
        #: worker threads (call_soon spawns from inside processes).
        self._lock = self.sanitizer.make_lock("RealKernel._lock")
        self._by_thread: dict[int, RealProcess] = {}
        self.crashes: list[tuple[RealProcess, BaseException]] = []
        self.processes: list[RealProcess] = []
        from repro.kernel.virtual import _LIVE_KERNELS

        _LIVE_KERNELS.add(self)

    def now(self) -> float:
        return (_time.monotonic() - self._t0) / self.time_scale

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        context: dict | None = None,
        delay: float = 0.0,
    ) -> RealProcess:
        if context is None:
            parent = self.current_process()
            context = parent.context if parent is not None else {}
        with self._lock:
            pid = self._next_pid
            self._next_pid += 1
        proc = RealProcess(
            self, pid, name or f"proc-{pid}", fn, tuple(args), context, delay
        )
        with self._lock:
            self.sanitizer.access("RealKernel", "processes", scope=self)
            self.processes.append(proc)
        if self.tracer.enabled:
            proc._span_ctx = _spans.current_context()
            self.tracer.emit(PROC_SPAWN, ts=self.now() + delay,
                             actor=proc.name, pid=pid)
            self.tracer.count("proc.spawned")
        if self.sanitizer.enabled:
            # spawn edge: the child's first action happens-after this point
            self.sanitizer.hb_send(proc)
        proc._thread.start()
        return proc

    def _register_thread(self, proc: RealProcess) -> None:
        with self._lock:
            self.sanitizer.access("RealKernel", "_by_thread", scope=self)
            self._by_thread[threading.get_ident()] = proc

    def sleep(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("cannot sleep a negative duration")
        if self._shutting_down:
            from repro.kernel.virtual import _KernelShutdown

            raise _KernelShutdown()
        _time.sleep(duration * self.time_scale)
        if self._shutting_down:
            from repro.kernel.virtual import _KernelShutdown

            raise _KernelShutdown()

    def current_process(self) -> RealProcess | None:
        return self._by_thread.get(threading.get_ident())

    def _note_crash(self, proc: RealProcess, exc: BaseException) -> None:
        with self._lock:
            self.sanitizer.access("RealKernel", "crashes", scope=self)
            self.crashes.append((proc, exc))

    def create_future(self) -> RealFuture:
        fut = RealFuture(self)
        if self.sanitizer.enabled:
            self.sanitizer.track_future(fut, self)
        return fut

    def create_channel(self) -> RealChannel:
        return RealChannel(self)

    def create_semaphore(self, value: int = 1) -> RealSemaphore:
        return RealSemaphore(self, value)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        self.spawn(fn, *args, name="call_soon")

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        delay = max(0.0, time - self.now())
        self.spawn(fn, *args, name="call_at", delay=delay)

    def run(
        self,
        main: Process | None = None,
        until: float | None = None,
    ) -> None:
        if main is not None:
            main.join()
        elif until is not None:
            remaining = until - self.now()
            if remaining > 0:
                _time.sleep(remaining * self.time_scale)
        if self.strict:
            with self._lock:
                crashes = list(self.crashes)
            background = [(p, e) for p, e in crashes if p is not main]
            if background:
                proc, exc = background[0]
                raise KernelError(
                    f"process {proc.name} crashed: {exc!r}"
                ) from exc

    def shutdown(self) -> None:
        """Ask every looping process to exit at its next kernel sleep.
        Threads blocked indefinitely on futures are left alone (they are
        parked, not spinning).  Idempotent."""
        self._shutting_down = True
        deadline = _time.monotonic() + 2.0
        with self._lock:
            processes = list(self.processes)
        for proc in processes:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                break
            proc._thread.join(timeout=remaining)
        if self.sanitizer.enabled:
            self.sanitizer.check_leaks(self)
