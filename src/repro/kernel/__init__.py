"""Execution kernels: virtual-time (deterministic) and wall-clock.

See :mod:`repro.kernel.base` for the contract both implement.
"""

from repro.kernel.base import (
    Channel,
    Future,
    Kernel,
    Process,
    ProcessState,
    Semaphore,
)
from repro.kernel.real import RealKernel
from repro.kernel.rng import RngStreams
from repro.kernel.virtual import VirtualKernel

__all__ = [
    "Channel",
    "Future",
    "Kernel",
    "Process",
    "ProcessState",
    "Semaphore",
    "RealKernel",
    "RngStreams",
    "VirtualKernel",
]
