"""Clean twin: locks and files used locally, plain data sent remotely.
Must produce ZERO symshare findings."""

import threading


def guarded_send(obj, items):
    mu = threading.Lock()
    with mu:
        payload = list(items)
    obj.sinvoke("work", payload)


def read_then_send(obj, path):
    with open(path) as fh:
        text = fh.read()
    obj.ainvoke("load", text).get_result()


def forward(target, payload):
    target.oinvoke("accept", payload)


def relay_data(target, items):
    forward(target, items)  # plain data through the same relay


class Holder:
    def __init__(self):
        self._mu = threading.Lock()

    def ship(self, obj, items):
        with self._mu:
            snapshot = list(items)
        obj.sinvoke("sync", snapshot)
