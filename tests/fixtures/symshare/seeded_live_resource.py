"""Fixture: live local resources flowing into remote-invoke arguments
(live-resource-in-remote-arg)."""

import threading


def send_lock(obj):
    mu = threading.Lock()
    obj.sinvoke("work", mu)  # <<RESOURCE_LOCK>>


def send_file(obj, path):
    fh = open(path)
    obj.ainvoke("load", fh)  # <<RESOURCE_FILE>>


def send_handle(obj, other):
    handle = obj.ainvoke("produce")
    other.sinvoke("observe", handle)  # <<RESOURCE_HANDLE>>


def forward(target, payload):
    target.oinvoke("accept", payload)


def relay_lock(target):
    # The remote hop hides inside forward(); only the escape summary
    # (forward's payload parameter escapes remotely) can see it.
    guard = threading.Lock()
    forward(target, guard)  # <<RESOURCE_VIA_CALLEE>>


class Shipper:
    def __init__(self):
        self._mu = threading.Lock()

    def ship(self, obj):
        obj.sinvoke("sync", self._mu)  # <<RESOURCE_SELF_LOCK>>
