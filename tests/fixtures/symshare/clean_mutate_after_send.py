"""Clean twin: every near-miss of mutate-after-send, written the way
the rule's message recommends.  Must produce ZERO symshare findings."""


def await_then_mutate(obj, data):
    handle = obj.ainvoke("scale", data)
    result = handle.get_result()
    data.append(0)  # after the await: ordering is explicit
    return result


def mutate_unrelated(obj, data, extra):
    handle = obj.ainvoke("scale", data)
    extra.append(0)  # different object, not aliased to the payload
    return handle.get_result()


def rebind_then_mutate(obj, data):
    handle = obj.ainvoke("scale", data)
    data = []
    data.append(0)  # rebound name: a fresh object, not the sent one
    return handle.get_result()


def measure(xs):
    return len(xs)


def harmless_callee(obj, data):
    handle = obj.ainvoke("scale", data)
    measure(data)  # callee only reads; its summary mutates nothing
    return handle.get_result()
