"""Clean twin: oinvoke fire-and-forget, ainvoke when the result
matters.  Must produce ZERO symshare findings."""


def fire_only(obj, item):
    obj.oinvoke("fire", [item])


def await_async(obj, item):
    receipt = obj.ainvoke("fire", [item])
    return receipt.get_result()


def poll_async(obj):
    receipt = obj.ainvoke("fire")
    if receipt.is_ready():
        return receipt.get_result()
    return None
