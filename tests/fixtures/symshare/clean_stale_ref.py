"""Clean twin: locations resolved fresh or used before the migrate.
Must produce ZERO symshare findings."""


def re_resolve(obj, target):
    obj.migrate(target)
    where = obj.get_node()  # resolved after the move: still valid
    return JSObj("Worker", where)


def use_before_migrate(obj, target):
    where = obj.get_node()
    spawned = JSObj("Worker", where)  # used while still valid
    obj.migrate(target)
    return spawned


def other_object_moves(obj, other):
    where = obj.get_node()
    other.migrate("node5")  # a different object migrated
    return JSObj("Worker", where)


def refresh_after_move(obj, other, target):
    obj.migrate(target)
    spot = obj.get_node()
    other.migrate(spot)
