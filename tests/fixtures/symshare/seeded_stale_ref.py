"""Fixture: locations cached before a migrate, used after it
(stale-ref-after-migrate)."""


def place_on_stale(obj, target):
    where = obj.get_node()
    obj.migrate(target)
    return JSObj("Worker", where)  # <<STALE_PLACEMENT>>


def migrate_to_stale(obj, other, target):
    spot = obj.get_node()
    obj.migrate(target)
    other.migrate(spot)  # <<STALE_MIGRATE_TARGET>>


def stale_via_alias(obj):
    peer = obj
    spot = obj.get_node()
    peer.migrate("node2")
    return JSObj("Worker", spot)  # <<STALE_VIA_ALIAS>>
