"""Clean twin: escaped handles that are awaited somewhere.
Must produce ZERO symshare findings."""


class Courier:
    def stash(self, obj):
        self._pending = obj.ainvoke("deliver")

    def collect(self):
        return self._pending.get_result()


def kick_off(obj):
    return obj.ainvoke("deliver")


def awaited_inline(obj):
    return kick_off(obj).get_result()


def awaited_later(obj):
    pending = kick_off(obj)
    return pending.get_result()


def propagated(obj):
    return kick_off(obj)  # the handle travels up; callers decide
