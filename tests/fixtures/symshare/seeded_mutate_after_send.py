"""Fixture: objects mutated after being sent by copy, before the
handle is awaited (mutate-after-send)."""


def mutate_direct(obj, data):
    handle = obj.ainvoke("scale", data)
    data.append(0)  # <<MUTATE_DIRECT>>
    return handle.get_result()


def mutate_alias(obj, data):
    view = data
    handle = obj.ainvoke("scale", data)
    view.append(0)  # <<MUTATE_ALIAS>>
    return handle.get_result()


def bump(counts):
    counts.append(1)


def mutate_via_callee(obj, counts):
    # The mutation hides inside bump(); only the interprocedural
    # escape summary (bump mutates its parameter) can see it.
    handle = obj.ainvoke("tally", counts)
    bump(counts)  # <<MUTATE_VIA_CALLEE>>
    return handle.get_result()


def mutate_polled(obj, data):
    handle = obj.ainvoke("scale", data)
    if not handle.is_ready():
        data.append(0)  # <<MUTATE_POLLED>>
    return handle.get_result()


def mutate_discarded(obj, data):
    obj.ainvoke("scale", data)
    data.append(1)  # <<MUTATE_DISCARDED>>
    return len(data)
