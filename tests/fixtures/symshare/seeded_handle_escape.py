"""Fixture: handles that escape and are provably never awaited
(handle-escapes-unawaited)."""


class Courier:
    def stash(self, obj):
        # No code in the project ever reads _parked_handle.
        self._parked_handle = obj.ainvoke("deliver")  # <<ESCAPE_FIELD>>


def kick_off(obj):
    return obj.ainvoke("deliver")


def forget_bare(obj):
    # symloc's dropped-result-handle cannot see this: the ainvoke hides
    # behind kick_off, so only the returns-handle summary catches it.
    kick_off(obj)  # <<ESCAPE_DROPPED_WRAPPER>>
    return True


def forget_named(obj):
    pending = kick_off(obj)  # <<ESCAPE_DEAD_NAME>>
    return True
