"""Fixture: one-sided oinvoke "results" that get consumed
(oneway-result-consumed)."""


def await_oneway(obj, item):
    receipt = obj.oinvoke("fire", [item])
    return receipt.get_result()  # <<ONEWAY_AWAIT>>


def poll_oneway(obj):
    receipt = obj.oinvoke("fire")
    if receipt.is_ready():  # <<ONEWAY_POLL>>
        return True
    return False


def chained_oneway(obj):
    return obj.oinvoke("fire").get_result()  # <<ONEWAY_CHAIN>>
