"""Seeded AB/BA deadlock under the wall-clock kernel (symsan fixture).

Two processes acquire two sanitizer-tracked locks in opposite orders,
synchronized through futures so both hold their first lock before
either tries the second.  Without symsan this hangs until the test
harness kills it; with symsan the acquire that would close the cycle
raises ``SanDeadlockError``, the raiser unwinds (releasing its lock),
and the peer completes — the deadlock is both *reported* and *broken*.
"""

from __future__ import annotations

from repro.errors import SanDeadlockError
from repro.kernel import RealKernel
from repro.sanitizer import current_sanitizer


def main() -> dict:
    kernel = RealKernel(time_scale=0.005)
    san = current_sanitizer()
    lock_a = san.make_lock("fixture.A")
    lock_b = san.make_lock("fixture.B")
    outcome: dict = {"raised": []}

    def worker(name, first, second, ready, other_ready):
        try:
            with first:
                ready.set_result(True)
                other_ready.result(timeout=5.0)
                with second:
                    pass
        except SanDeadlockError as exc:
            outcome["raised"].append((name, str(exc)))

    def root() -> None:
        ready_ab = kernel.create_future()
        ready_ba = kernel.create_future()
        p_ab = kernel.spawn(
            worker, "t_ab", lock_a, lock_b, ready_ab, ready_ba,
            name="t_ab",
        )
        p_ba = kernel.spawn(
            worker, "t_ba", lock_b, lock_a, ready_ba, ready_ab,
            name="t_ba",
        )
        p_ab.join()
        p_ba.join()

    try:
        kernel.run_callable(root)
    finally:
        kernel.shutdown()
    return outcome


if __name__ == "__main__":  # pragma: no cover
    main()
