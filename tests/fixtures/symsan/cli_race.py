"""Standalone racy script for the ``python -m repro san`` CLI test.

Self-contained (no fixture imports — ``runpy`` executes it as
``__main__``): two wall-clock kernel threads store into one table cell
with no lock, which the ambient sanitizer installed by the CLI reports
as ``san-race``.
"""

from __future__ import annotations

from repro.kernel import RealKernel


def main() -> None:
    kernel = RealKernel(time_scale=0.005)
    table: dict[str, str] = {}

    def store(tag: str) -> None:
        san = kernel.sanitizer
        for _ in range(5):
            if san.enabled:
                san.access("CliTable", "objects[shared]", scope=kernel)
            table["shared"] = tag
            kernel.sleep(0.1)

    def root() -> None:
        a = kernel.spawn(store, "a", name="writer-a")
        b = kernel.spawn(store, "b", name="writer-b")
        a.join()
        b.join()

    try:
        kernel.run_callable(root)
    finally:
        kernel.shutdown()


if __name__ == "__main__":
    main()
