"""Seeded all-blocked hang under the virtual kernel (symsan fixture).

The main process waits on a future nobody completes; the scheduler runs
out of events with the process still blocked.  The kernel raises its
usual ``SimDeadlockError`` and — when a sanitizer is installed —
additionally records a ``san-all-blocked`` finding carrying the
wait-for dump (who is parked, why, and where).
"""

from __future__ import annotations

from repro.errors import SimDeadlockError
from repro.kernel import VirtualKernel


def main() -> None:
    kernel = VirtualKernel()

    def root() -> None:
        fut = kernel.create_future()
        fut.result()  # nobody will ever set it

    proc = kernel.spawn(root, name="stuck-main")
    try:
        kernel.run(main=proc)
    except SimDeadlockError:
        pass
    finally:
        kernel.shutdown()


if __name__ == "__main__":  # pragma: no cover
    main()
