"""Seeded unlocked-table race (symsan runtime fixture).

``BuggyTable`` mimics ``ObjectHolder``'s instrumented store path minus
the ``_holder_lock`` — exactly the bug symlint's ``unguarded-write``
would flag if the lock existed, and exactly what symsan's lockset
detector catches at runtime: two real threads storing into the same
table cell with no common lock and no happens-before edge.
"""

from __future__ import annotations

from repro.kernel import RealKernel


class BuggyTable:
    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.objects: dict[str, str] = {}

    def store(self, key: str, value: str) -> None:
        san = self.kernel.sanitizer
        if san.enabled:
            san.access("BuggyTable", f"objects[{key}]", scope=self.kernel)
        self.objects[key] = value


def main() -> None:
    kernel = RealKernel(time_scale=0.005)
    table = BuggyTable(kernel)

    def writer(tag: str) -> None:
        for _ in range(5):
            table.store("shared", tag)
            kernel.sleep(0.1)

    def root() -> None:
        a = kernel.spawn(writer, "a", name="writer-a")
        b = kernel.spawn(writer, "b", name="writer-b")
        a.join()
        b.join()

    try:
        kernel.run_callable(root)
    finally:
        kernel.shutdown()


if __name__ == "__main__":  # pragma: no cover
    main()
