"""Seeded unbounded retry reachable from a handler (symlint fixture).

The handler itself looks innocent — the constant-true retry loop sits
one call away, in a helper that swallows ``ConnectionError`` and tries
again with no attempt or deadline bound.  If the peer stays down, the
request process spins (and sleeps) forever.  ``BoundedSyncer`` is the
clean twin: the same retry shape bounded by an attempt count, which
must produce no finding.
"""

SYNC = "sync"


class Syncer:
    def __init__(self, endpoint, peer, kernel):
        self.peer = peer
        self.kernel = kernel
        endpoint.register(SYNC, self._h_sync)

    def _h_sync(self, msg):
        return self._pull(msg)

    def _pull(self, msg):
        while True:  # <<UNBOUNDED_RETRY>>
            try:
                return self.peer.fetch(msg)
            except ConnectionError:
                self.kernel.sleep(0.1)


class BoundedSyncer:
    """Clean twin: bounded attempts, re-raises once they run out."""

    def __init__(self, endpoint, peer, kernel):
        self.peer = peer
        self.kernel = kernel
        endpoint.register(SYNC, self._h_sync)

    def _h_sync(self, msg):
        return self._pull(msg)

    def _pull(self, msg):
        last = None
        for _attempt in range(4):
            try:
                return self.peer.fetch(msg)
            except ConnectionError as exc:
                last = exc
                self.kernel.sleep(0.1)
        raise last
