"""Fixture: a seeded unguarded-write race for the lock-discipline pass.

Never imported — parsed only by the symlint tests.
"""

import threading


class RacyCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.log = []

    def guarded_increment(self):
        with self._lock:
            self.count += 1

    def racy_increment(self):
        self.count += 1  # <<RACE>>

    def racy_log(self):
        self.log.append("tick")  # <<MUTATION>>
