"""Fixture: telemetry-registry calls inside and outside lock-held
regions (the registry-call-under-lock rule)."""

import threading


class Collector:
    def __init__(self, metrics, recorder, telemetry):
        self._lock = threading.Lock()
        self.metrics = metrics
        self.recorder = recorder
        self.telemetry = telemetry
        self.pending = []

    def ingest_bad(self, delta):
        with self._lock:
            self.pending.append(delta.host)
            self.telemetry.ingest(delta)  # <<INGEST_UNDER_LOCK>>

    def observe_bad(self, value, now):
        with self._lock:
            self.metrics.observe("rpc.latency", value)  # <<OBSERVE_UNDER_LOCK>>

    def record_bad(self, now):
        with self._lock:
            if self.pending:
                self.recorder.record("queue.stall", ts=now)  # <<RECORD_UNDER_LOCK>>

    def merge_bad(self, snapshot):
        with self._lock:
            self.metrics.merge_snapshot(snapshot)  # <<MERGE_UNDER_LOCK>>

    def ingest_good(self, delta):
        with self._lock:
            self.pending.append(delta.host)
        self.telemetry.ingest(delta)

    def deferred_ok(self, delta):
        with self._lock:
            # A nested def under the lock runs later, not under it.
            def flush():
                self.telemetry.ingest(delta)

            self.pending.append(flush)
        return self.pending[-1]

    def unrelated_receiver_ok(self, cum, snapshot):
        with self._lock:
            # Receiver name carries no telemetry keyword: not flagged.
            cum.merge_snapshot(snapshot)

    def tracer_rule_wins(self, tracer, now):
        with self._lock:
            # Mentions both tracer and metrics: exactly one finding,
            # owned by the tracer rule.
            tracer.metrics.count("hits")  # <<TRACER_WINS>>
