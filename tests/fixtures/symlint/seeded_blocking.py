"""Fixture: blocking calls inside message handlers.

Never imported — parsed only by the symlint tests.
"""

import time


class SlowAgent:
    def __init__(self, endpoint, peer):
        self.endpoint = endpoint
        self.peer = peer
        endpoint.register("THROTTLE", self._h_throttle)

    def _h_throttle(self, msg):
        time.sleep(0.5)  # <<SLEEP>>
        return "done"

    def _h_relay(self, msg):
        return self.endpoint.rpc(self.peer, "RELAY", msg.payload)  # <<RPC>>
