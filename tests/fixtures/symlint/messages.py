"""Fixture protocol vocabulary for the symlint protocol checker.

Never imported — parsed only by the symlint tests.
"""

PING = "PING"
WORK = "WORK"
LOST = "LOST"        # sent by seeded_protocol but handled nowhere
RETIRED = "RETIRED"  # declared but never sent  <<DEAD>>
