"""Seeded cross-function rpc-under-lock violation (symlint fixture).

``Directory.rebind`` looks innocent per-file: the lock region only calls
a private helper.  Two hops down, the helper performs a synchronous RPC
while the lock is still held — only the interprocedural pass sees it.
"""

import threading

DIR_SYNC = "dir-sync"


class Directory:
    def __init__(self, endpoint, peer):
        self._lock = threading.Lock()
        self.endpoint = endpoint
        self.peer = peer
        self.entries = {}

    def rebind(self, name, addr):
        with self._lock:
            self.entries[name] = addr
            self._refresh(name)  # <<RPC_UNDER_LOCK>>

    def _refresh(self, name):
        self._push(name)

    def _push(self, name):
        self.endpoint.rpc(
            self.peer, DIR_SYNC, (name, self.entries[name])
        )  # <<RPC_SINK>>
