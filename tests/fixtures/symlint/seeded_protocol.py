"""Fixture: seeded protocol-completeness violations.

Never imported — parsed only by the symlint tests.
"""

from tests.fixtures.symlint import messages as M


class FixtureAgent:
    def __init__(self, endpoint, peer):
        self.endpoint = endpoint
        self.peer = peer
        endpoint.register(M.PING, self._h_ping)
        endpoint.register(M.WORK, self._h_work)

    def _h_ping(self, msg):
        return "pong"

    def _h_work(self, msg):
        return msg.payload

    def probe(self):
        return self.endpoint.rpc(self.peer, M.PING, None)

    def send_lost(self):
        self.endpoint.send_oneway(self.peer, M.LOST, None)  # <<LOST>>

    def send_raw(self):
        return self.endpoint.rpc(self.peer, "WORK", {"x": 1})  # <<RAW>>
