"""Seeded transitive wall-clock sleep in a handler (symlint fixture).

The handler itself contains no sleep — the per-file blocking checker
passes it — but its backoff helper stalls the request process with a raw
``time.sleep`` that only the call-graph pass can reach.
"""

import time

PING = "ping"


class Prober:
    def __init__(self, endpoint):
        endpoint.register(PING, self._h_ping)

    def _h_ping(self, msg):
        self._backoff()  # <<TRANSITIVE_SLEEP>>
        return "pong"

    def _backoff(self):
        time.sleep(0.5)  # <<RAW_SLEEP>>
