"""Fixture: a remotely instantiable class with unserializable state.

Never imported — parsed only by the symlint tests.
"""

import threading

from repro.agents.objects import jsclass


@jsclass
class LeakyWorker:
    def __init__(self):
        self.data = []
        self._guard = threading.Lock()  # <<LOCK>>
        self.stream = (i * i for i in range(10))  # <<GEN>>

    def work(self):
        with self._guard:
            self.data.append(1)
