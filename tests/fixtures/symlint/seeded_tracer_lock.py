"""Fixture: tracer calls inside and outside lock-held regions."""

import threading


class Holder:
    def __init__(self, tracer):
        self._lock = threading.Lock()
        self.tracer = tracer
        self.items = {}

    def store_bad(self, key, value, now):
        with self._lock:
            self.items[key] = value
            self.tracer.emit("obj.create", ts=now, obj_id=key)  # <<EMIT_UNDER_LOCK>>

    def count_bad(self, key, now):
        with self._lock:
            if key in self.items:
                self.tracer.count("hits")  # <<COUNT_UNDER_LOCK>>

    def span_bad(self, key, now):
        with self._lock:
            span = self.tracer.begin_span("obj.dispatch", ts=now, obj_id=key)  # <<SPAN_UNDER_LOCK>>
        return span

    def end_span_bad(self, span, now):
        with self._lock:
            self.items.pop(span, None)
            self.tracer.end_span(span, ts=now)  # <<END_SPAN_UNDER_LOCK>>

    def span_good(self, key, now):
        with self._lock:
            self.items[key] = now
        return self.tracer.emit_span("obj.create", ts=now, obj_id=key)

    def store_good(self, key, value, now):
        with self._lock:
            self.items[key] = value
        self.tracer.emit("obj.create", ts=now, obj_id=key)

    def deferred_ok(self, key, now):
        with self._lock:
            # A nested def under the lock runs later, not under it.
            def report():
                self.tracer.count("deferred")

            self.items[key] = report
        return self.items[key]

    def unrelated_observe_ok(self, hist, value):
        with self._lock:
            # Not a tracer: plain histogram object.
            hist.observe(value)
