"""Fixture: tracer calls inside and outside lock-held regions."""

import threading


class Holder:
    def __init__(self, tracer):
        self._lock = threading.Lock()
        self.tracer = tracer
        self.items = {}

    def store_bad(self, key, value, now):
        with self._lock:
            self.items[key] = value
            self.tracer.emit("obj.create", ts=now, obj_id=key)  # <<EMIT_UNDER_LOCK>>

    def count_bad(self, key, now):
        with self._lock:
            if key in self.items:
                self.tracer.count("hits")  # <<COUNT_UNDER_LOCK>>

    def store_good(self, key, value, now):
        with self._lock:
            self.items[key] = value
        self.tracer.emit("obj.create", ts=now, obj_id=key)

    def deferred_ok(self, key, now):
        with self._lock:
            # A nested def under the lock runs later, not under it.
            def report():
                self.tracer.count("deferred")

            self.items[key] = report
        return self.items[key]

    def unrelated_observe_ok(self, hist, value):
        with self._lock:
            # Not a tracer: plain histogram object.
            hist.observe(value)
