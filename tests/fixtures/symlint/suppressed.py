"""Fixture: the seeded race silenced by a justified suppression pragma.

Never imported — parsed only by the symlint tests.
"""

import threading


class QuietCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def guarded_increment(self):
        with self._lock:
            self.count += 1

    def racy_increment(self):
        # justification: benchmark-only helper, never shared across threads
        self.count += 1  # symlint: disable=unguarded-write
