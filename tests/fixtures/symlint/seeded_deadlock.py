"""Fixture: two locks acquired in opposite orders (deadlock cycle).

Never imported — parsed only by the symlint tests.
"""

import threading


class TwoAccounts:
    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self.balance = 0

    def transfer_ab(self):
        with self._lock_a:
            with self._lock_b:  # <<ORDER-AB>>
                self.balance += 1

    def transfer_ba(self):
        with self._lock_b:
            with self._lock_a:  # <<ORDER-BA>>
                self.balance -= 1
