"""Fixture: migration thrash and missed co-location.

``follow_the_data`` migrates per iteration (migrate-in-loop); because it
*does* migrate, its receiver is exempt from the co-location hint.
``poll_pair`` hits one loop-invariant object at two sites per iteration
without ever placing it (repeated-remote-no-migration, reported once at
the first site).
"""


def follow_the_data(obj, nodes):
    for node in nodes:
        obj.migrate(node)  # <<MIGRATE_IN_LOOP>>
        obj.oinvoke("refresh")
    return obj.sinvoke("report")


def poll_pair(sensor, items):
    for item in items:
        sensor.oinvoke("mark", [item])  # <<REPEATED_REMOTE>>
        sensor.oinvoke("log", [item])
    return True
