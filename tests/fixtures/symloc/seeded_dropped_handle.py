"""Fixture: ainvoke handles that die unawaited (dropped-result-handle)."""


def fire_and_forget_wrong(obj):
    obj.ainvoke("update", [1])  # <<DROPPED_BARE>>
    return obj.sinvoke("get")


def leaked_handle(obj):
    handle = obj.ainvoke("update", [2])  # <<DROPPED_DEAD>>
    return obj.sinvoke("get")
