"""Fixture: a loop-invariant Payload re-serialized per call
(large-arg-resend).

``Payload`` is the wire-size idiom from repro.util.serialization; the
rule keys on the constructor name, so the fixture needs no import.
"""


def resend_matrix(worker, chunks):
    matrix = Payload(1_000_000)
    for chunk in chunks:
        worker.oinvoke("multiply", [matrix, chunk])  # <<LARGE_ARG_RESEND>>
    return worker.sinvoke("collect")
