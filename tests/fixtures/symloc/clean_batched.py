"""Clean twin: the recommended locality idioms.  Must produce ZERO
locality findings — every function here is a near-miss of a seeded
pattern, written the way symloc's messages recommend.
"""


def batched_rounds(objs, items):
    handles = [obj.ainvoke("work", [item]) for obj, item in zip(objs, items)]
    return [handle.get_result() for handle in handles]


def install_once(worker, chunks):
    big = Payload(1_000_000)
    worker.oinvoke("init", [big])
    for chunk in chunks:
        worker.oinvoke("multiply", [chunk])
    return worker.sinvoke("collect")


def local_receiver(items):
    collector = JSObj("Collector", "local")
    for item in items:
        collector.sinvoke("add", [item])
    return collector.sinvoke("merge")


def place_then_loop(obj, node, items):
    obj.migrate(node)
    for item in items:
        obj.oinvoke("feed", [item])
    handle = obj.ainvoke("drain")
    return handle.get_result()


def prompt_use(obj):
    value = obj.sinvoke("get")
    return value + 1


def ordered_updates(obj):
    obj.sinvoke("reset")
    obj.sinvoke("seed", [1])
    obj.oinvoke("tick")
    return obj.sinvoke("get")
