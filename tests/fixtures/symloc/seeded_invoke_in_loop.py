"""Fixture: synchronous remote calls inside loops (remote-invoke-in-loop).

Each marked line must produce exactly one ``remote-invoke-in-loop``
finding; the depth-2 site escalates to an error.
"""


def chatty_sum(objs):
    total = 0
    for obj in objs:
        total += obj.sinvoke("get")  # <<SINVOKE_IN_LOOP>>
    return total


def ghost_exchange(grid):
    for row in grid:
        for cell in row:
            cell.sinvoke("touch")  # <<SINVOKE_DEPTH2>>


def chained_wait(obj, items):
    out = []
    for item in items:
        out.append(obj.ainvoke("work", [item]).get_result())  # <<CHAINED_WAIT>>
    return out


def serialized_rounds(obj, items):
    out = []
    for item in items:
        handle = obj.ainvoke("work", [item])
        out.append(handle.get_result())  # <<IMMEDIATE_WAIT>>
    return out


def comprehension_fetch(objs):
    return [o.sinvoke("get") for o in objs]  # <<SINVOKE_IN_COMP>>
