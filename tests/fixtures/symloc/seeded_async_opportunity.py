"""Fixture: sinvoke results not needed promptly (sync-invoke-async-opportunity).

Liveness / use-distance backed: the discarded result, the distant first
use, and the never-read result must each fire exactly once.
"""


def discarded_ping(obj, log):
    obj.sinvoke("warm_cache")  # <<DISCARDED_RESULT>>
    log.append("warmed")
    log.append("continuing")
    return log


def distant_use(obj, items):
    size = obj.sinvoke("size")  # <<DISTANT_FIRST_USE>>
    prepared = [item * 2 for item in items]
    count = len(prepared)
    total = size + count
    return total


def never_used(obj):
    status = obj.sinvoke("flush")  # <<NEVER_USED>>
    return True
