"""Unit tests for the deterministic virtual-time kernel."""

import pytest

from repro.errors import KernelError, SimDeadlockError, WaitTimeout
from repro.kernel import ProcessState, VirtualKernel


@pytest.fixture()
def kernel():
    return VirtualKernel(strict=True)


class TestClockAndSleep:
    def test_time_starts_at_zero(self, kernel):
        assert kernel.now() == 0.0

    def test_sleep_advances_virtual_time(self, kernel):
        seen = {}

        def main():
            kernel.sleep(5.0)
            seen["t"] = kernel.now()

        kernel.run_callable(main)
        assert seen["t"] == pytest.approx(5.0)

    def test_virtual_time_is_free(self, kernel):
        # A year of virtual sleeping completes instantly in host time.
        def main():
            kernel.sleep(365 * 24 * 3600.0)

        kernel.run_callable(main)
        assert kernel.now() == pytest.approx(365 * 24 * 3600.0)

    def test_negative_sleep_rejected(self, kernel):
        def main():
            kernel.sleep(-1.0)

        with pytest.raises(ValueError):
            kernel.run_callable(main)

    def test_run_until_stops_at_time(self, kernel):
        ticks = []

        def ticker():
            while True:
                kernel.sleep(1.0)
                ticks.append(kernel.now())

        kernel.spawn(ticker)
        kernel.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert kernel.now() == pytest.approx(3.5)

    def test_run_until_can_resume(self, kernel):
        ticks = []

        def ticker():
            while True:
                kernel.sleep(1.0)
                ticks.append(kernel.now())

        kernel.spawn(ticker)
        kernel.run(until=2.0)
        kernel.run(until=4.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0]


class TestProcesses:
    def test_result_returned(self, kernel):
        proc = kernel.spawn(lambda: 41 + 1)
        kernel.run(main=proc)
        assert proc.result() == 42
        assert proc.state is ProcessState.FINISHED

    def test_exception_propagates_via_result(self):
        kernel = VirtualKernel(strict=False)
        proc = kernel.spawn(lambda: 1 / 0)
        kernel.run(main=proc)
        assert proc.state is ProcessState.FAILED
        with pytest.raises(ZeroDivisionError):
            proc.result()

    def test_strict_kernel_raises_on_background_crash(self):
        kernel = VirtualKernel(strict=True)

        def main():
            kernel.spawn(lambda: 1 / 0, name="crasher")
            kernel.sleep(1.0)

        proc = kernel.spawn(main)
        with pytest.raises(KernelError, match="crasher"):
            kernel.run(main=proc)

    def test_main_crash_not_doubled_in_strict(self):
        kernel = VirtualKernel(strict=True)
        proc = kernel.spawn(lambda: 1 / 0)
        kernel.run(main=proc)  # no KernelError: main's own crash
        with pytest.raises(ZeroDivisionError):
            proc.result()

    def test_result_before_finish_is_an_error(self, kernel):
        proc = kernel.spawn(lambda: kernel.sleep(10))
        with pytest.raises(KernelError):
            proc.result()

    def test_join(self, kernel):
        order = []

        def child():
            kernel.sleep(2.0)
            order.append("child")

        def main():
            proc = kernel.spawn(child)
            proc.join()
            order.append("main")

        kernel.run_callable(main)
        assert order == ["child", "main"]

    def test_join_timeout(self, kernel):
        def child():
            kernel.sleep(100.0)

        def main():
            proc = kernel.spawn(child)
            with pytest.raises(WaitTimeout):
                proc.join(timeout=1.0)
            return kernel.now()

        assert kernel.run_callable(main) == pytest.approx(1.0)

    def test_spawn_delay(self, kernel):
        times = {}

        def child():
            times["start"] = kernel.now()

        def main():
            kernel.spawn(child, delay=3.0).join()

        kernel.run_callable(main)
        assert times["start"] == pytest.approx(3.0)

    def test_context_inherited_by_reference(self, kernel):
        seen = {}

        def child():
            seen["app"] = kernel.current_process().context.get("app")

        def main():
            kernel.current_process().context["app"] = "app-1"
            kernel.spawn(child).join()

        kernel.run_callable(main)
        assert seen["app"] == "app-1"

    def test_current_process_outside_is_none(self, kernel):
        assert kernel.current_process() is None

    def test_blocking_outside_process_rejected(self, kernel):
        with pytest.raises(KernelError):
            kernel.sleep(1.0)


class TestDeterminism:
    def _trace(self):
        kernel = VirtualKernel()
        trace = []

        def worker(name, period):
            for _ in range(5):
                kernel.sleep(period)
                trace.append((round(kernel.now(), 6), name))

        for i, period in enumerate([0.3, 0.7, 0.3, 1.1]):
            kernel.spawn(worker, f"w{i}", period)
        kernel.run()
        return trace

    def test_identical_runs(self):
        assert self._trace() == self._trace()

    def test_fifo_tie_break_at_same_time(self):
        kernel = VirtualKernel()
        order = []

        def worker(name):
            kernel.sleep(1.0)
            order.append(name)

        for name in ["a", "b", "c"]:
            kernel.spawn(worker, name)
        kernel.run()
        assert order == ["a", "b", "c"]


class TestFuture:
    def test_set_and_result(self, kernel):
        def main():
            fut = kernel.create_future()
            kernel.spawn(lambda: kernel.sleep(1.0) or fut.set_result(7))
            return fut.result()

        assert kernel.run_callable(main) == 7

    def test_wait_timeout_returns_false(self, kernel):
        def main():
            fut = kernel.create_future()
            return fut.wait(timeout=2.0), kernel.now()

        done, t = kernel.run_callable(main)
        assert done is False
        assert t == pytest.approx(2.0)

    def test_result_timeout_raises(self, kernel):
        def main():
            fut = kernel.create_future()
            fut.result(timeout=1.5)

        proc = kernel.spawn(main)
        kernel.run(main=proc)
        with pytest.raises(WaitTimeout):
            proc.result()
        assert isinstance(proc.finished_future.exception(), WaitTimeout)

    def test_exception_propagates(self, kernel):
        def main():
            fut = kernel.create_future()
            fut.set_exception(ValueError("boom"))
            with pytest.raises(ValueError):
                fut.result()
            return fut.exception()

        assert isinstance(kernel.run_callable(main), ValueError)

    def test_double_set_rejected(self, kernel):
        def main():
            fut = kernel.create_future()
            fut.set_result(1)
            fut.set_result(2)

        with pytest.raises(KernelError):
            kernel.run_callable(main)

    def test_wait_after_done_is_instant(self, kernel):
        def main():
            fut = kernel.create_future()
            fut.set_result("x")
            t0 = kernel.now()
            assert fut.wait() is True
            assert kernel.now() == t0
            return fut.result()

        assert kernel.run_callable(main) == "x"

    def test_multiple_waiters_all_wake(self, kernel):
        woken = []

        def waiter(fut, name):
            fut.result()
            woken.append(name)

        def main():
            fut = kernel.create_future()
            procs = [kernel.spawn(waiter, fut, f"w{i}") for i in range(3)]
            kernel.sleep(1.0)
            fut.set_result(None)
            for p in procs:
                p.join()

        kernel.run_callable(main)
        assert sorted(woken) == ["w0", "w1", "w2"]

    def test_done_callback(self, kernel):
        fired = []

        def main():
            fut = kernel.create_future()
            fut.add_done_callback(lambda f: fired.append(f.result(0)))
            fut.set_result(5)
            kernel.sleep(0.001)

        kernel.run_callable(main)
        assert fired == [5]


class TestChannel:
    def test_fifo_order(self, kernel):
        def main():
            ch = kernel.create_channel()
            for i in range(5):
                ch.put(i)
            return [ch.get() for _ in range(5)]

        assert kernel.run_callable(main) == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, kernel):
        def producer(ch):
            kernel.sleep(3.0)
            ch.put("item")

        def main():
            ch = kernel.create_channel()
            kernel.spawn(producer, ch)
            value = ch.get()
            return value, kernel.now()

        value, t = kernel.run_callable(main)
        assert value == "item"
        assert t == pytest.approx(3.0)

    def test_get_timeout(self, kernel):
        def main():
            ch = kernel.create_channel()
            with pytest.raises(WaitTimeout):
                ch.get(timeout=1.0)
            return kernel.now()

        assert kernel.run_callable(main) == pytest.approx(1.0)

    def test_len(self, kernel):
        def main():
            ch = kernel.create_channel()
            ch.put(1)
            ch.put(2)
            assert len(ch) == 2
            ch.get()
            assert len(ch) == 1

        kernel.run_callable(main)

    def test_two_consumers_share_items(self, kernel):
        got = []

        def consumer(ch, name):
            got.append((name, ch.get()))

        def main():
            ch = kernel.create_channel()
            p1 = kernel.spawn(consumer, ch, "c1")
            p2 = kernel.spawn(consumer, ch, "c2")
            kernel.sleep(1.0)
            ch.put("a")
            ch.put("b")
            p1.join()
            p2.join()

        kernel.run_callable(main)
        assert sorted(item for _, item in got) == ["a", "b"]


class TestSemaphore:
    def test_mutual_exclusion(self, kernel):
        active = {"count": 0, "max": 0}

        def worker(sem):
            with sem:
                active["count"] += 1
                active["max"] = max(active["max"], active["count"])
                kernel.sleep(1.0)
                active["count"] -= 1

        def main():
            sem = kernel.create_semaphore(2)
            procs = [kernel.spawn(worker, sem) for _ in range(6)]
            for p in procs:
                p.join()
            return kernel.now()

        # 6 workers, 2 at a time, 1s each -> 3s
        assert kernel.run_callable(main) == pytest.approx(3.0)
        assert active["max"] == 2

    def test_acquire_timeout(self, kernel):
        def main():
            sem = kernel.create_semaphore(0)
            with pytest.raises(WaitTimeout):
                sem.acquire(timeout=2.0)
            return kernel.now()

        assert kernel.run_callable(main) == pytest.approx(2.0)


class TestSchedulerSafety:
    def test_deadlock_detected(self, kernel):
        # The hang is the point of this test: detach any ambient symsan
        # sanitizer so a REPRO_SAN=1 run doesn't report it as a finding.
        from repro.sanitizer import NULL_SANITIZER

        kernel.sanitizer = NULL_SANITIZER

        def main():
            fut = kernel.create_future()
            fut.result()  # nobody will ever set it

        proc = kernel.spawn(main)
        with pytest.raises(SimDeadlockError, match="wait-for graph"):
            kernel.run(main=proc)

    def test_cannot_schedule_in_past(self, kernel):
        def main():
            kernel.sleep(5.0)
            kernel.call_at(1.0, lambda: None)

        with pytest.raises(KernelError):
            kernel.run_callable(main)

    def test_run_not_reentrant(self, kernel):
        def main():
            kernel.run()

        with pytest.raises(KernelError):
            kernel.run_callable(main)

    def test_call_soon_runs_in_order(self, kernel):
        order = []

        def main():
            kernel.call_soon(order.append, 1)
            kernel.call_soon(order.append, 2)
            kernel.sleep(0.001)

        kernel.run_callable(main)
        assert order == [1, 2]
