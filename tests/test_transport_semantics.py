"""Deeper transport semantics: FIFO per host pair, sender CPU charging,
stats, and hypothesis ordering properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import VirtualKernel
from repro.simnet import ConstantLoad, SimWorld, build_lan, make_host
from repro.transport import Addr, Transport
from repro.util.serialization import Payload


def make_world(fast_load=0.0):
    world = SimWorld(VirtualKernel(strict=True), seed=5)
    build_lan(
        world,
        fast_hosts=[make_host("u1", "Ultra10/440", 1),
                    make_host("u2", "Ultra10/300", 2)],
        slow_hosts=[make_host("s1", "SS4/110", 3)],
        load_models={"u1": ConstantLoad(fast_load)},
    )
    return world


class TestFIFO:
    def test_small_message_cannot_overtake_big_one(self):
        """RMI over one TCP connection is ordered: a 1-byte call sent
        after a 2 MB transfer arrives after it."""
        world = make_world()
        transport = Transport(world)
        arrivals = []
        ep = transport.create_endpoint(Addr("s1", "srv"))
        ep.register("MARK", lambda msg: arrivals.append(msg.payload.data
                                                        if isinstance(
                                                            msg.payload,
                                                            Payload)
                                                        else msg.payload))
        cli = transport.create_endpoint(Addr("u1", "cli"))

        def main():
            cli.send_oneway(Addr("s1", "srv"), "MARK",
                            Payload(data="big", nbytes=2_000_000))
            cli.send_oneway(Addr("s1", "srv"), "MARK", "small")
            world.kernel.sleep(60.0)

        world.kernel.run_callable(main)
        assert arrivals == ["big", "small"]

    def test_fifo_disabled_allows_overtaking(self):
        world = make_world()
        transport = Transport(world, fifo=False)
        arrivals = []
        ep = transport.create_endpoint(Addr("s1", "srv"))
        ep.register("MARK", lambda msg: arrivals.append(
            msg.payload.data if isinstance(msg.payload, Payload)
            else msg.payload))
        cli = transport.create_endpoint(Addr("u1", "cli"))

        def main():
            cli.send_oneway(Addr("s1", "srv"), "MARK",
                            Payload(data="big", nbytes=2_000_000))
            cli.send_oneway(Addr("s1", "srv"), "MARK", "small")
            world.kernel.sleep(60.0)

        world.kernel.run_callable(main)
        assert arrivals == ["small", "big"]

    def test_different_destinations_independent(self):
        world = make_world()
        transport = Transport(world)
        arrivals = []
        for host in ("u2", "s1"):
            ep = transport.create_endpoint(Addr(host, "srv"))
            ep.register(
                "MARK",
                lambda msg, h=host: arrivals.append(h),
            )
        cli = transport.create_endpoint(Addr("u1", "cli"))

        def main():
            # Big transfer to s1 must not delay the small call to u2.
            cli.send_oneway(Addr("s1", "srv"), "MARK",
                            Payload(nbytes=2_000_000))
            cli.send_oneway(Addr("u2", "srv"), "MARK", "x")
            world.kernel.sleep(60.0)

        world.kernel.run_callable(main)
        assert arrivals == ["u2", "s1"]

    @settings(deadline=None, max_examples=20)
    @given(sizes=st.lists(st.integers(10, 500_000), min_size=2,
                          max_size=8))
    def test_order_preserved_for_any_size_sequence(self, sizes):
        world = make_world()
        transport = Transport(world)
        arrivals = []
        ep = transport.create_endpoint(Addr("s1", "srv"))
        ep.register("MARK", lambda msg: arrivals.append(
            msg.payload.meta["seq"]))
        cli = transport.create_endpoint(Addr("u1", "cli"))

        def main():
            for i, size in enumerate(sizes):
                cli.send_oneway(
                    Addr("s1", "srv"), "MARK",
                    Payload(nbytes=size, meta={"seq": i}),
                )
            world.kernel.sleep(120.0)

        world.kernel.run_callable(main)
        assert arrivals == list(range(len(sizes)))


class TestSenderCPU:
    def test_send_charges_sender_compute(self):
        world = make_world()
        transport = Transport(world)
        transport.create_endpoint(Addr("u2", "srv")).register(
            "X", lambda msg: None
        )
        cli = transport.create_endpoint(Addr("u1", "cli"))

        def main():
            t0 = world.now()
            cli.send_oneway(Addr("u2", "srv"), "X",
                            Payload(nbytes=6_000_000))
            return world.now() - t0

        blocked = world.kernel.run_callable(main)
        # 6 MB x 4 flops/byte = 24 Mflop on a 60 MFLOPS machine ~ 0.4 s
        # of *sender* time before the message even leaves.
        assert blocked > 0.3

    def test_loaded_sender_serializes_slower(self):
        def issue_time(load):
            world = make_world(fast_load=load)
            transport = Transport(world)
            transport.create_endpoint(Addr("u2", "srv")).register(
                "X", lambda msg: None
            )
            cli = transport.create_endpoint(Addr("u1", "cli"))

            def main():
                t0 = world.now()
                cli.send_oneway(Addr("u2", "srv"), "X",
                                Payload(nbytes=4_000_000))
                return world.now() - t0

            return world.kernel.run_callable(main)

        assert issue_time(0.75) > 3 * issue_time(0.0)


class TestStatsDetail:
    def test_bytes_accumulate_with_nominal_sizes(self):
        world = make_world()
        transport = Transport(world)
        transport.create_endpoint(Addr("u2", "srv")).register(
            "X", lambda msg: "r"
        )
        cli = transport.create_endpoint(Addr("u1", "cli"))

        def main():
            cli.rpc(Addr("u2", "srv"), "X", Payload(nbytes=1_000_000))

        world.kernel.run_callable(main)
        assert transport.stats.bytes_total > 1_000_000
        assert transport.stats.rpcs == 1
        assert transport.stats.messages == 2  # request + reply
