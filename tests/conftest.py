"""Shared fixtures: registered test classes and testbed factories.

Set ``REPRO_SAN=1`` to run the whole suite under the symsan concurrency
sanitizer: every kernel created during a test binds a shared sanitizer,
and any finding (race, deadlock cycle, all-blocked hang) fails the run at
session end.  ``REPRO_SAN_REPORT=<path>`` additionally writes the symsan
JSON report there (CI uploads it as an artifact).
"""

import os

import pytest

from repro.agents.objects import js_compute, jsclass
from repro.cluster import TestbedConfig, vienna_testbed
from repro.kernel.virtual import shutdown_all_kernels

_SAN_ENABLED = os.environ.get("REPRO_SAN", "") not in ("", "0")
_SESSION_SANITIZER = None


def pytest_configure(config):
    global _SESSION_SANITIZER
    if _SAN_ENABLED:
        from repro.sanitizer import Sanitizer, set_sanitizer

        # leaks stay off suite-wide: agent mailbox loops legitimately park
        # on channel gets, and tests tear worlds down mid-flight.
        _SESSION_SANITIZER = Sanitizer(leaks=False)
        set_sanitizer(_SESSION_SANITIZER)


def pytest_unconfigure(config):
    if _SESSION_SANITIZER is None:
        return
    from repro.analysis.runner import render_json
    from repro.sanitizer import set_sanitizer

    set_sanitizer(None)
    report = _SESSION_SANITIZER.report()
    report_path = os.environ.get("REPRO_SAN_REPORT")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(render_json(report))
    if report.findings:
        lines = "\n".join(
            f"  {f.path}:{f.line}: {f.rule}: {f.message}"
            for f in report.findings
        )
        raise pytest.UsageError(
            f"symsan found {len(report.findings)} concurrency "
            f"finding(s) during the sanitized run:\n{lines}"
        )


@pytest.fixture(autouse=True)
def _sweep_leaked_kernels():
    """Each finished simulation parks its daemon threads forever; sweep
    them after every test so the suite doesn't accumulate thousands of
    threads (which starves the wall-clock kernel tests)."""
    yield
    shutdown_all_kernels()
    if _SESSION_SANITIZER is not None:
        # Tests build independent worlds but reuse deterministic object
        # ids (and the OS recycles thread idents), so access history must
        # not leak from one test into the next.
        _SESSION_SANITIZER.reset_context()


@jsclass
class Counter:
    """Simple stateful test object."""

    def __init__(self, start: int = 0) -> None:
        self.value = int(start)

    def incr(self, by: int = 1) -> int:
        self.value += by
        return self.value

    def get(self) -> int:
        return self.value

    def boom(self) -> None:
        raise ValueError("intentional failure")


@jsclass
class Echo:
    def echo(self, value):
        return value

    def mutate(self, data):
        data["mutated"] = True
        return data


@jsclass
class Spinner:
    """Object whose method takes modelled compute time."""

    @js_compute(lambda self, flops: float(flops))
    def spin(self, flops: float) -> str:
        return "done"


@jsclass
class Linker:
    """Calls another object through a passed handle (first-order refs)."""

    def __init__(self) -> None:
        self.peer = None

    def set_peer(self, peer_ref) -> None:
        self.peer = peer_ref

    def relay_incr(self) -> int:
        # self.peer is an ObjectRef; a holder can invoke through its own
        # agent only via the app in this design, so Linker just returns
        # the ref for the caller to act on (kept simple deliberately).
        return 1


@pytest.fixture()
def dedicated_testbed():
    """Fresh zero-load testbed per test (deterministic)."""
    return vienna_testbed(TestbedConfig(load_profile="dedicated", seed=3))


@pytest.fixture()
def night_testbed():
    return vienna_testbed(TestbedConfig(load_profile="night", seed=3))


def run_app(runtime, fn, **kwargs):
    return runtime.run_app(fn, **kwargs)
