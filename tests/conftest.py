"""Shared fixtures: registered test classes and testbed factories."""

import pytest

from repro.agents.objects import js_compute, jsclass
from repro.cluster import TestbedConfig, vienna_testbed
from repro.kernel.virtual import shutdown_all_kernels


@pytest.fixture(autouse=True)
def _sweep_leaked_kernels():
    """Each finished simulation parks its daemon threads forever; sweep
    them after every test so the suite doesn't accumulate thousands of
    threads (which starves the wall-clock kernel tests)."""
    yield
    shutdown_all_kernels()


@jsclass
class Counter:
    """Simple stateful test object."""

    def __init__(self, start: int = 0) -> None:
        self.value = int(start)

    def incr(self, by: int = 1) -> int:
        self.value += by
        return self.value

    def get(self) -> int:
        return self.value

    def boom(self) -> None:
        raise ValueError("intentional failure")


@jsclass
class Echo:
    def echo(self, value):
        return value

    def mutate(self, data):
        data["mutated"] = True
        return data


@jsclass
class Spinner:
    """Object whose method takes modelled compute time."""

    @js_compute(lambda self, flops: float(flops))
    def spin(self, flops: float) -> str:
        return "done"


@jsclass
class Linker:
    """Calls another object through a passed handle (first-order refs)."""

    def __init__(self) -> None:
        self.peer = None

    def set_peer(self, peer_ref) -> None:
        self.peer = peer_ref

    def relay_incr(self) -> int:
        # self.peer is an ObjectRef; a holder can invoke through its own
        # agent only via the app in this design, so Linker just returns
        # the ref for the caller to act on (kept simple deliberately).
        return 1


@pytest.fixture()
def dedicated_testbed():
    """Fresh zero-load testbed per test (deterministic)."""
    return vienna_testbed(TestbedConfig(load_profile="dedicated", seed=3))


@pytest.fixture()
def night_testbed():
    return vienna_testbed(TestbedConfig(load_profile="night", seed=3))


def run_app(runtime, fn, **kwargs):
    return runtime.run_app(fn, **kwargs)
