"""Every example script must run end-to-end (they are documentation)."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "matmul_cluster",
        "adaptive_migration",
        "fault_tolerance_demo",
        "persistent_objects",
        "widearea_grid",
    } <= names


def test_quickstart_output_mentions_key_steps():
    result = subprocess.run(
        [sys.executable, "examples/quickstart.py"],
        capture_output=True, text=True, timeout=120,
        cwd=Path(__file__).parent.parent,
    )
    for marker in ["registered", "cluster nodes", "hello world",
                   "unregistered cleanly"]:
        assert marker in result.stdout
