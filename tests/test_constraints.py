"""Tests for the constraint system, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.constraints import (
    Constraint,
    JSConstraints,
    parse_constraint,
    parse_constraints,
)
from repro.errors import ConstraintError
from repro.simnet import ConstantLoad, Machine, make_host
from repro.sysmon import SysParam, sample_all


def snapshot(load=0.0, name="m1", model="Ultra10/440", t=10.0):
    m = Machine(spec=make_host(name, model), load_model=ConstantLoad(load))
    return sample_all(m, t)


class TestConstraint:
    def test_numeric_holds(self):
        snap = snapshot(load=0.1)
        assert Constraint(SysParam.IDLE, ">=", 50).holds(snap)
        assert not Constraint(SysParam.IDLE, "<", 50).holds(snap)

    def test_string_equality(self):
        snap = snapshot(name="milena")
        assert Constraint(SysParam.NODE_NAME, "==", "milena").holds(snap)
        assert not Constraint(SysParam.NODE_NAME, "!=", "milena").holds(snap)

    def test_numeric_value_as_string_coerced(self):
        snap = snapshot(load=0.1)
        assert Constraint(SysParam.IDLE, ">=", "50").holds(snap)

    def test_bad_operator_rejected(self):
        with pytest.raises(ConstraintError):
            Constraint(SysParam.IDLE, "~=", 50)

    def test_non_numeric_value_for_numeric_param_rejected(self):
        with pytest.raises(ConstraintError):
            Constraint(SysParam.IDLE, ">=", "plenty")

    def test_single_equals_alias(self):
        snap = snapshot(name="rachel")
        assert Constraint(SysParam.NODE_NAME, "=", "rachel").holds(snap)

    def test_missing_param_raises(self):
        with pytest.raises(ConstraintError):
            Constraint(SysParam.IDLE, ">=", 50).holds({})


class TestJSConstraints:
    def paper_example(self):
        """The exact constraint set from Section 4.2."""
        constr = JSConstraints()
        constr.setConstraints(SysParam.NODE_NAME, "!=", "milena")
        constr.setConstraints(SysParam.CPU_SYS_LOAD, "<=", 10)
        constr.setConstraints(SysParam.IDLE, ">=", 50)
        constr.setConstraints(SysParam.AVAIL_MEM, ">=", 50)
        constr.setConstraints(SysParam.SWAP_SPACE_RATIO, "<=", 0.3)
        return constr

    def test_paper_example_on_idle_machine(self):
        assert self.paper_example().holds(snapshot(load=0.02, name="rachel"))

    def test_paper_example_excludes_milena(self):
        assert not self.paper_example().holds(
            snapshot(load=0.02, name="milena")
        )

    def test_paper_example_excludes_loaded_node(self):
        snap = snapshot(load=0.85, name="rachel")
        constr = self.paper_example()
        assert not constr.holds(snap)
        failing = constr.failing(snap)
        assert any(c.param is SysParam.IDLE for c in failing)

    def test_empty_constraints_always_hold(self):
        assert JSConstraints().holds(snapshot())

    def test_string_param_names_accepted(self):
        constr = JSConstraints([("IDLE", ">=", 10)])
        assert constr.holds(snapshot(load=0.1))

    def test_unknown_param_rejected(self):
        with pytest.raises(ConstraintError):
            JSConstraints([("WARP_FIELD", ">=", 10)])

    def test_merged_with(self):
        a = JSConstraints([("IDLE", ">=", 50)])
        b = JSConstraints([("AVAIL_MEM", ">=", 10)])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert len(a) == 1  # originals untouched

    def test_merged_with_none(self):
        a = JSConstraints([("IDLE", ">=", 50)])
        assert len(a.merged_with(None)) == 1

    def test_str(self):
        text = str(self.paper_example())
        assert "NODE_NAME != milena" in text
        assert " AND " in text


class TestParser:
    def test_parse_single(self):
        c = parse_constraint("IDLE >= 50")
        assert c.param is SysParam.IDLE
        assert c.op == ">="
        assert c.value == 50.0

    def test_parse_string_value(self):
        c = parse_constraint("NODE_NAME != 'milena'")
        assert c.value == "milena"

    def test_parse_multiple(self):
        constr = parse_constraints(
            "IDLE >= 50; AVAIL_MEM >= 64\n# comment\nCPU_SYS_LOAD <= 10"
        )
        assert len(constr) == 3

    def test_parse_garbage_rejected(self):
        with pytest.raises(ConstraintError):
            parse_constraint("what even is this")

    def test_parse_unknown_param_rejected(self):
        with pytest.raises(ConstraintError):
            parse_constraint("BOGUS >= 1")

    def test_parse_bad_numeric_value_rejected(self):
        with pytest.raises(ConstraintError):
            parse_constraint("IDLE >= lots")


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

numeric_params = st.sampled_from(
    [p for p in SysParam if p.is_numeric]
)
thresholds = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestConstraintProperties:
    @given(param=numeric_params, value=thresholds)
    def test_le_ge_partition(self, param, value):
        """For any snapshot value v and threshold x, exactly one of
        (v < x), (v == x), (v > x) holds."""
        snap = snapshot(load=0.25)
        lt = Constraint(param, "<", value).holds(snap)
        eq = Constraint(param, "==", value).holds(snap)
        gt = Constraint(param, ">", value).holds(snap)
        assert sum([lt, eq, gt]) == 1

    @given(param=numeric_params, value=thresholds)
    def test_negation_duality(self, param, value):
        snap = snapshot(load=0.4)
        assert Constraint(param, "<=", value).holds(snap) != Constraint(
            param, ">", value
        ).holds(snap)
        assert Constraint(param, "==", value).holds(snap) != Constraint(
            param, "!=", value
        ).holds(snap)

    @given(
        params=st.lists(
            st.tuples(numeric_params, st.sampled_from(["<=", ">="]),
                      thresholds),
            max_size=6,
        )
    )
    def test_conjunction_semantics(self, params):
        """JSConstraints.holds == AND of the individual constraints."""
        snap = snapshot(load=0.3)
        constr = JSConstraints(list(params))
        individual = all(
            Constraint(p, op, v).holds(snap) for p, op, v in params
        )
        assert constr.holds(snap) == individual

    @given(param=numeric_params, value=thresholds)
    def test_parse_round_trip(self, param, value):
        c = Constraint(param, ">=", value)
        reparsed = parse_constraint(str(c))
        assert reparsed.param is c.param
        assert reparsed.op == c.op
        assert float(reparsed.value) == pytest.approx(float(c.value))
