"""Chaos plane + reliable RMI: the ISSUE-10 acceptance scenarios.

Three properties pinned here:

* **Determinism** — a (plan, seed) pair replays bit-identically: same
  injected-fault tally, same event stream, same simulated elapsed time.
* **Survival** — under the acceptance plan (10% request/reply loss plus
  a 5 s gray-failure stall) the workload completes *correctly* with the
  reliability layer on, and demonstrably fails without it.
* **At-most-once execution** — a dropped *reply* makes the client
  retry, but the holder-side replay cache answers the duplicate from
  its cache instead of executing the method twice.
"""

import pytest

from repro.agents.shell import ShellConfig
from repro.apps.matmul import MatmulConfig, run_matmul
from repro.chaos import ChaosInjector, FaultPlan
from repro.cluster import TestbedConfig, vienna_testbed
from repro.core import JSCodebase, JSObj, JSRegistration
from repro.errors import JSError, RPCTimeoutError
from repro.obs import Tracer, tracing
from repro.rmi.reliability import CircuitBreaker, RetryPolicy
from tests.conftest import Counter  # noqa: F401

#: the ISSUE-10 acceptance plan: 10% loss + a 5 s stall on a worker
ACCEPTANCE_PLAN = "drop:p=0.10; stall:host=bruno,at=2,dur=5"
ACCEPTANCE_SEED = 7


def chaos_testbed(plan, seed, reliable=True, rpc_timeout=3.0):
    shell = ShellConfig(rpc_timeout=rpc_timeout)
    if reliable:
        shell.retry_policy = RetryPolicy()
        shell.dedup_window = 60.0
        shell.circuit_breaker = CircuitBreaker()
    runtime = vienna_testbed(TestbedConfig(
        load_profile="dedicated", seed=seed, shell=shell,
    ))
    injector = ChaosInjector(runtime.world, plan).install(runtime.transport)
    return runtime, injector


def run_chaos_matmul(plan, seed, reliable=True, rpc_timeout=3.0,
                     n=8, nodes=3):
    """One traced matmul under ``plan``; returns (result, tracer,
    injector) — ``result`` is the raised ``JSError`` when the run is
    lost to the faults."""
    with tracing(Tracer()) as tracer:
        runtime, injector = chaos_testbed(
            plan, seed, reliable=reliable, rpc_timeout=rpc_timeout,
        )
        try:
            result = runtime.run_app(lambda: run_matmul(
                MatmulConfig(n=n, nr_nodes=nodes, real_compute=True)
            ))
        except JSError as exc:
            result = exc
    return result, tracer, injector


class TestSeededReplay:
    def test_chaos_run_replays_bit_identically(self):
        plan_spec = ACCEPTANCE_PLAN
        runs = []
        for _ in range(2):
            result, tracer, injector = run_chaos_matmul(
                FaultPlan.parse(plan_spec), ACCEPTANCE_SEED,
            )
            runs.append((
                result.elapsed,
                dict(injector.injected),
                [(e.etype, e.ts, e.host) for e in tracer.events],
            ))
        first, second = runs
        assert first[0] == second[0]        # same simulated elapsed
        assert first[1] == second[1]        # same injected tally
        assert first[2] == second[2]        # same event stream

    def test_random_plan_generation_is_seed_deterministic(self):
        hosts = ["anton", "bruno", "clemens", "dora"]
        a = FaultPlan.random_plan(42, hosts)
        b = FaultPlan.random_plan(42, hosts)
        assert a.describe() == b.describe()
        assert a.describe() != FaultPlan.random_plan(43, hosts).describe()


class TestAcceptance:
    def test_reliable_run_survives_loss_and_stall(self):
        result, tracer, injector = run_chaos_matmul(
            FaultPlan.parse(ACCEPTANCE_PLAN), ACCEPTANCE_SEED,
            reliable=True,
        )
        # Survived — no RPCTimeoutError (or any error) reached the app,
        # and the product verifies against the sequential reference.
        assert not isinstance(result, BaseException)
        assert result.correct
        assert injector.injected.get("drop", 0) > 0
        assert injector.injected.get("stall") == 1
        merged = tracer.merged_host_metrics()
        counters = merged.get("counters", merged)
        assert counters.get("rpc.retries", 0) > 0

    def test_same_plan_without_retries_fails(self):
        with pytest.raises(RPCTimeoutError):
            result, _, _ = run_chaos_matmul(
                FaultPlan.parse(ACCEPTANCE_PLAN), ACCEPTANCE_SEED,
                reliable=False,
            )
            if isinstance(result, BaseException):
                raise result


class TestDedup:
    def test_lost_reply_is_not_reexecuted(self):
        """Drop exactly the first invoke *reply*: the call executed, the
        client retries, and the replay cache must answer the duplicate
        from cache — the counter increments once per call."""
        plan = FaultPlan.parse("drop:p=1,kinds=INVOKE,stage=reply,max=1")
        with tracing(Tracer()) as tracer:
            runtime, injector = chaos_testbed(plan, seed=3)
            values = []

            def app():
                reg = JSRegistration()
                cb = JSCodebase(); cb.add(Counter); cb.load("rachel")
                obj = JSObj("Counter", "rachel")
                values.append(obj.sinvoke("incr"))
                values.append(obj.sinvoke("incr"))
                reg.unregister()

            runtime.run_app(app)
        assert injector.injected.get("drop") == 1
        # double execution would yield [2, 3]
        assert values == [1, 2]
        merged = tracer.merged_host_metrics()
        counters = merged.get("counters", merged)
        assert counters.get("rpc.dedup.hits", 0) >= 1


class TestRestart:
    def test_restarted_host_rejoins_the_cluster(self):
        runtime, _ = chaos_testbed(FaultPlan(), seed=5)
        world = runtime.world
        world.kernel.run(until=1.0)
        world.fail_host("bruno")
        # NAS failure detection is probe-based; give it simulated time.
        world.kernel.run(until=world.now() + 15.0)
        assert "bruno" not in runtime.nas.known_hosts()

        world.restart_host("bruno")
        assert "bruno" in runtime.nas.known_hosts()
        assert not world.machine("bruno").failed

        # The revived host is immediately usable for placement again.
        def app():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Counter); cb.load("bruno")
            obj = JSObj("Counter", "bruno")
            assert obj.sinvoke("incr") == 1
            reg.unregister()

        runtime.run_app(app)


class TestSoak:
    @pytest.mark.parametrize("seed", [5, 7, 11])
    def test_random_plans_complete_or_fail_typed(self, seed):
        """Faults may lose a run (typed JSError) but never corrupt one:
        a completed run's product is correct, and nothing hangs."""
        plan = FaultPlan.random_plan(
            seed, ["anton", "bruno", "clemens", "dora", "erika"],
        )
        result, _, _ = run_chaos_matmul(plan, seed, reliable=True)
        if isinstance(result, BaseException):
            assert isinstance(result, JSError)
        else:
            assert result.correct
