"""Multiple concurrent applications on one JRS (the paper's PubOAs serve
"any JSA on the local node")."""

import pytest

from repro.core import JSCodebase, JSObj, JSRegistration
from tests.conftest import Counter, Spinner  # noqa: F401


class TestConcurrentApps:
    def test_two_apps_run_concurrently(self, dedicated_testbed):
        rt = dedicated_testbed
        timeline = {}

        def make_app(tag, host):
            def app():
                reg = JSRegistration()
                cb = JSCodebase(); cb.add(Spinner); cb.load(host)
                obj = JSObj("Spinner", host)
                # ~1 s on an Ultra10/300
                assert obj.sinvoke("spin", [42e6]) == "done"
                timeline[tag] = rt.world.now()
                reg.unregister()
                return tag

            return app

        results = rt.run_apps(
            (make_app("a", "johanna"), "milena"),
            (make_app("b", "theresa"), "rachel"),
        )
        assert results == ["a", "b"]
        # Both finished around t=1: they overlapped, not serialized.
        assert max(timeline.values()) < 2.0

    def test_apps_have_isolated_tables(self, dedicated_testbed):
        rt = dedicated_testbed
        seen = {}

        def app_one():
            reg = JSRegistration()
            obj = JSObj("Counter", "local")
            obj.sinvoke("incr", [10])
            seen["app1_id"] = reg.app_id
            seen["obj"] = obj.ref
            rt.world.kernel.sleep(5.0)
            seen["app1_value"] = obj.sinvoke("get")
            reg.unregister()

        def app_two():
            reg = JSRegistration()
            obj = JSObj("Counter", "local")
            obj.sinvoke("incr", [99])
            seen["app2_id"] = reg.app_id
            reg.unregister()

        rt.run_apps((app_one, "milena"), (app_two, "rachel"))
        assert seen["app1_id"] != seen["app2_id"]
        assert seen["app1_value"] == 10  # app two never touched it

    def test_handle_sharing_across_apps(self, dedicated_testbed):
        """First-order handles: app B invokes an object app A created,
        and A's origin authority resolves after migration."""
        rt = dedicated_testbed
        shared = {}

        def producer():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Counter)
            cb.load(["johanna", "greta"])
            obj = JSObj("Counter", "johanna")
            assert obj.sinvoke("incr", [5]) == 5
            shared["ref"] = obj.ref
            rt.world.kernel.sleep(2.0)   # let the consumer hit it
            obj.migrate("greta")
            rt.world.kernel.sleep(5.0)   # consumer hits the stale ref
            value = obj.sinvoke("get")
            reg.unregister()
            return value

        def consumer():
            reg = JSRegistration()
            while "ref" not in shared:
                rt.world.kernel.sleep(0.1)
            stale = JSObj._from_ref(shared["ref"], reg.app)
            # The first hit must land at johanna *before* the producer
            # migrates; its timing, not its value, is what's under test.
            # symlint: disable-next-line=sync-invoke-async-opportunity
            first = stale.sinvoke("incr")     # at johanna
            rt.world.kernel.sleep(4.0)
            second = stale.sinvoke("incr")    # redirected to greta
            reg.unregister()
            return first, second

        prod_value, (first, second) = rt.run_apps(
            (producer, "milena"), (consumer, "rachel")
        )
        assert (first, second) == (6, 7)
        assert prod_value == 7

    def test_unregister_does_not_disturb_other_app(self, dedicated_testbed):
        rt = dedicated_testbed

        def short_lived():
            reg = JSRegistration()
            JSObj("Counter", "local")
            reg.unregister()

        def long_lived():
            reg = JSRegistration()
            obj = JSObj("Counter", "local")
            obj.sinvoke("incr", [3])
            rt.world.kernel.sleep(3.0)  # short_lived comes and goes
            value = obj.sinvoke("get")
            reg.unregister()
            return value

        results = rt.run_apps((long_lived, "milena"),
                              (short_lived, "rachel"))
        assert results[0] == 3
