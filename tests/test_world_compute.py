"""Tests for the compute-charging model: load re-sampling during long
computations and CPU sharing between concurrent tasks."""

import pytest

from repro.kernel import VirtualKernel
from repro.simnet import (
    ConstantLoad,
    SimWorld,
    SpikeLoad,
    build_lan,
    make_host,
)


def world_with(load_model=None):
    world = SimWorld(VirtualKernel(strict=True), seed=1)
    build_lan(
        world,
        fast_hosts=[make_host("u1", "Ultra10/440", 1)],  # 60 MFLOPS
        slow_hosts=[make_host("s1", "SS4/110", 2)],
        load_models={"u1": load_model} if load_model else {},
    )
    return world


class TestComputeCharging:
    def test_basic_duration(self):
        world = world_with()

        def main():
            return world.compute("u1", 120e6)

        assert world.kernel.run_callable(main) == pytest.approx(2.0)

    def test_spike_mid_compute_slows_then_recovers(self):
        """A task that starts before a load spike pays for the spike only
        while it lasts — not for its whole duration."""
        spike = SpikeLoad(ConstantLoad(0.0), start=5.0, duration=10.0,
                          magnitude=0.9)
        world = world_with(spike)

        def main():
            # 20 s of idle-speed work: 5 s idle, 10 s at 10% speed
            # (1 s equivalent), then the rest at full speed again.
            return world.compute("u1", 20 * 60e6)

        elapsed = world.kernel.run_callable(main)
        # idle: 5 s -> 5 s of work; spike: 10 s -> 1 s of work;
        # remaining 14 s of work at full speed -> total = 29 s.
        assert elapsed == pytest.approx(29.0, rel=0.05)

    def test_load_clearing_mid_compute_speeds_up(self):
        spike = SpikeLoad(ConstantLoad(0.0), start=0.0, duration=10.0,
                          magnitude=0.9)
        world = world_with(spike)

        def main():
            return world.compute("u1", 20 * 60e6)

        elapsed = world.kernel.run_callable(main)
        # Naive lock-in at start would predict 200 s; with re-sampling:
        # 10 s at 10% (2 s of work) + 18 s full speed = 28 s.
        assert elapsed == pytest.approx(28.0, rel=0.05)

    def test_concurrent_tasks_share_cpu(self):
        world = world_with()
        done = {}

        def worker(name):
            world.compute("u1", 60e6)  # 1 s alone
            done[name] = world.now()

        def main():
            procs = [world.kernel.spawn(worker, f"w{i}") for i in range(2)]
            for p in procs:
                p.join()

        world.kernel.run_callable(main)
        # Processor sharing is approximated per slice (concurrency is
        # sampled when a slice starts), so the first finisher may see
        # less contention — but both land in [1, 2] s and the last one
        # pays the full sharing cost.
        times = sorted(done.values())
        assert 1.0 <= times[0] <= 2.0 + 1e-9
        assert times[-1] == pytest.approx(2.0, rel=0.1)

    def test_staggered_arrival_approximation(self):
        """A second task arriving mid-flight slows the remainder of the
        first (both re-sample concurrency within compute_resample)."""
        world = world_with()
        done = {}

        def early():
            world.compute("u1", 10 * 60e6)
            done["early"] = world.now()

        def late():
            world.kernel.sleep(4.0)
            world.compute("u1", 60e6)
            done["late"] = world.now()

        def main():
            p1 = world.kernel.spawn(early)
            p2 = world.kernel.spawn(late)
            p1.join(); p2.join()

        world.kernel.run_callable(main)
        # Early alone would take 10 s; sharing from t=4 pushes it out.
        assert done["early"] > 11.0

    def test_negative_flops_rejected(self):
        world = world_with()

        def main():
            world.compute("u1", -1.0)

        proc = world.kernel.spawn(main)
        world.kernel.run(main=proc)
        with pytest.raises(ValueError):
            proc.result()

    def test_compute_on_failed_host_raises(self):
        from repro.errors import NodeFailedError

        world = world_with()
        world.schedule_failure("u1", at=2.0)

        def main():
            world.compute("u1", 600e6)  # 10 s of work, dies at t=2

        proc = world.kernel.spawn(main)
        world.kernel.run(main=proc)
        with pytest.raises(NodeFailedError):
            proc.result()

    def test_heterogeneous_speed_ratio(self):
        world = world_with()

        def main():
            fast = world.compute("u1", 60e6)
            slow = world.compute("s1", 60e6)
            return slow / fast

        # 60 vs 5.5 MFLOPS.
        assert world.kernel.run_callable(main) == pytest.approx(
            60 / 5.5, rel=0.01
        )
