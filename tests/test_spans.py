"""Tests for the span layer: TraceContext propagation, critical path,
spans document, top frames, host-failure handling."""

import pytest

from repro.obs import (
    NULL_TRACER,
    Tracer,
    critical_path,
    current_context,
    events as ev,
    frames_from_trace,
    render_critical_path,
    render_span_tree,
    render_top,
    spans_document,
    tracing,
)


# ---------------------------------------------------------------------------
# span primitives
# ---------------------------------------------------------------------------


class TestSpanPrimitives:
    def test_emit_span_returns_context_and_records(self):
        tracer = Tracer()
        ctx = tracer.emit_span(ev.COMPUTE, ts=1.0, dur=0.5, host="h",
                               parent=None, flops=10)
        assert ctx.trace_id and ctx.span_id and ctx.parent_id is None
        (event,) = tracer.events
        assert event.ctx == ctx and event.dur == 0.5

    def test_begin_span_installs_context_and_end_restores(self):
        tracer = Tracer()
        assert current_context() is None
        outer = tracer.begin_span(ev.APP, ts=0.0, host="h", parent=None)
        assert current_context() == outer.ctx
        assert outer.ctx.span_id in tracer.open_spans
        inner = tracer.begin_span(ev.OBJ_INVOKE, ts=0.1, host="h")
        assert inner.ctx.parent_id == outer.ctx.span_id
        assert inner.ctx.trace_id == outer.ctx.trace_id
        tracer.end_span(inner, ts=0.2)
        assert current_context() == outer.ctx
        tracer.end_span(outer, ts=0.3)
        assert current_context() is None
        assert tracer.open_spans == {}
        invoke = tracer.events_of(ev.OBJ_INVOKE)[0]
        assert invoke.dur == pytest.approx(0.1)

    def test_uninstalled_span_leaves_current_context_alone(self):
        tracer = Tracer()
        span = tracer.begin_span(ev.OBJ_INVOKE, ts=0.0, host="h",
                                 parent=None, install=False)
        assert current_context() is None
        tracer.end_span(span, ts=0.1)
        assert current_context() is None

    def test_end_span_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin_span(ev.APP, ts=0.0, host="h", parent=None)
        tracer.end_span(span, ts=1.0)
        tracer.end_span(span, ts=2.0)  # no-op: already closed
        assert len(tracer.events_of(ev.APP)) == 1
        tracer.end_span(None, ts=3.0)  # no-op: disabled hook point

    def test_instants_inherit_current_span_context(self):
        tracer = Tracer()
        span = tracer.begin_span(ev.APP, ts=0.0, host="h", parent=None)
        tracer.emit(ev.OBJ_CREATE, ts=0.1, host="h", obj_id="o1")
        tracer.end_span(span, ts=0.2)
        create = tracer.events_of(ev.OBJ_CREATE)[0]
        assert create.ctx is not None
        assert create.ctx.span_id == span.ctx.span_id

    def test_null_tracer_span_api_allocates_nothing(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit_span(ev.COMPUTE, ts=0.0) is None
        assert NULL_TRACER.begin_span(ev.APP, ts=0.0) is None
        NULL_TRACER.end_span(None, ts=0.0)
        NULL_TRACER.host_failed("h", ts=0.0)
        assert current_context() is None


# ---------------------------------------------------------------------------
# traced matmul: the acceptance-criteria run
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def matmul_tracer():
    from repro import TestbedConfig, vienna_testbed
    from repro.apps.matmul import MatmulConfig, run_matmul

    with tracing(Tracer()) as tracer:
        runtime = vienna_testbed(
            TestbedConfig(load_profile="dedicated", seed=3)
        )
        runtime.run_app(
            lambda: run_matmul(
                MatmulConfig(n=32, nr_nodes=3, real_compute=False)
            )
        )
    return tracer


class TestReplyAncestry:
    def test_every_cross_host_reply_descends_from_its_request(
        self, matmul_tracer
    ):
        tracer = matmul_tracer
        by_id = {e.ctx.span_id: e for e in tracer.events
                 if e.ctx is not None}
        requests = {e.fields["msg_id"]: e
                    for e in tracer.events_of(ev.RPC_REQUEST)}
        replies = tracer.events_of(ev.RPC_REPLY)
        assert replies, "traced matmul produced no replies"
        cross_host = 0
        for reply in replies:
            request = requests[reply.fields["msg_id"]]
            if request.host == reply.host:
                continue
            cross_host += 1
            assert reply.ctx is not None
            assert reply.ctx.trace_id == request.ctx.trace_id
            # Walk the parent chain; the requesting span must appear.
            chain = []
            node = reply.ctx
            while node is not None and node.parent_id is not None:
                parent = by_id.get(node.parent_id)
                assert parent is not None, (
                    f"broken parent chain at {node.parent_id}"
                )
                assert parent.ctx.trace_id == reply.ctx.trace_id
                chain.append(parent)
                node = parent.ctx
            assert request in chain, (
                f"request {request.fields['msg_id']} is not an ancestor "
                f"of its reply"
            )
        assert cross_host > 0, "no cross-host RPCs in traced matmul"

    def test_invocation_span_is_ancestor_of_its_request(
        self, matmul_tracer
    ):
        tracer = matmul_tracer
        by_id = {e.ctx.span_id: e for e in tracer.events
                 if e.ctx is not None}
        invokes = tracer.events_of(ev.OBJ_INVOKE)
        assert invokes
        # matmul hands its tasks out via minvoke, so the invocation
        # requests travel as INVOKE_BATCH under obj.invoke.batch spans.
        owners = {
            "INVOKE": ev.OBJ_INVOKE,
            "INVOKE_BATCH": ev.OBJ_INVOKE_BATCH,
        }
        found = 0
        for request in tracer.events_of(ev.RPC_REQUEST):
            owner = owners.get(request.fields["kind"])
            if owner is None:
                continue
            parent = by_id.get(request.ctx.parent_id)
            while parent is not None and parent.etype != owner:
                parent = by_id.get(parent.ctx.parent_id)
            assert parent is not None
            found += 1
        assert found > 0

    def test_app_root_span_owns_the_main_trace(self, matmul_tracer):
        apps = matmul_tracer.events_of(ev.APP)
        assert len(apps) == 1
        (app,) = apps
        assert app.ctx.parent_id is None
        spans_in_trace = [
            e for e in matmul_tracer.events
            if e.ctx is not None and e.ctx.trace_id == app.ctx.trace_id
        ]
        # The application trace dominates the run.
        assert len(spans_in_trace) > 50


class TestCriticalPath:
    def test_segments_tile_the_makespan(self, matmul_tracer):
        cp = critical_path(matmul_tracer)
        assert cp is not None
        total = sum(seg.dur for seg in cp.segments)
        assert total == pytest.approx(cp.makespan, rel=0.01)
        # Segments are contiguous and ordered.
        for a, b in zip(cp.segments, cp.segments[1:]):
            assert b.start == pytest.approx(a.end, abs=1e-9)
        assert cp.segments[0].start == pytest.approx(cp.trace_start)
        assert cp.segments[-1].end == pytest.approx(cp.trace_end)

    def test_totals_cover_expected_categories(self, matmul_tracer):
        cp = critical_path(matmul_tracer)
        totals = cp.totals()
        assert sum(totals.values()) == pytest.approx(cp.makespan,
                                                     rel=0.01)
        # A distributed matmul is network- and compute-bound.
        assert totals.get("network", 0.0) > 0.0
        assert totals.get("compute", 0.0) > 0.0

    def test_renderers_produce_text(self, matmul_tracer):
        cp = critical_path(matmul_tracer)
        text = render_critical_path(cp)
        assert "Critical path" in text
        assert "makespan" in text
        tree = render_span_tree(matmul_tracer)
        assert "app" in tree and "rpc.request" in tree

    def test_spans_document_shape(self, matmul_tracer):
        import json

        doc = spans_document(matmul_tracer, with_critical_path=True)
        json.dumps(doc)  # JSON-serializable all the way down
        assert doc["span_count"] == len(doc["spans"])
        assert doc["trace_id"]
        for span in doc["spans"]:
            assert {"trace_id", "span_id", "etype", "ts", "dur",
                    "host"} <= set(span)
        segs = doc["critical_path"]["segments"]
        total = sum(s["dur"] for s in segs)
        assert total == pytest.approx(doc["makespan"], rel=0.01)


class TestTopFrames:
    def test_frames_reconstruct_per_host_activity(self, matmul_tracer):
        frames = frames_from_trace(matmul_tracer, max_frames=6)
        assert frames
        hosts = {row.host for f in frames for row in f.rows}
        assert {"milena"} <= hosts
        # Somebody computed and somebody sent RPCs in some window.
        assert any(row.cpu_busy > 0 for f in frames for row in f.rows)
        assert any(row.rpc_tx > 0 for f in frames for row in f.rows)
        text = render_top(frames)
        assert "js-top" in text and "in-flight" in text

    def test_shell_top_renders_live_frame(self):
        from repro import TestbedConfig, vienna_testbed

        with tracing(Tracer()) as tracer:
            runtime = vienna_testbed(
                TestbedConfig(load_profile="dedicated", seed=1)
            )
            runtime.nas.config.monitor_period = 0.05
            captured = []

            def app():
                runtime.world.kernel.sleep(0.2)
                captured.append(runtime.shell.top())

            runtime.run_app(app)

        assert tracer.events  # the run was traced
        (text,) = captured
        assert "js-top" in text
        assert "milena" in text
        # Live frame reads idle straight off the NAS snapshots.
        assert "%" in text
        assert ("top" in [kind for _, kind, _ in runtime.shell.log])


# ---------------------------------------------------------------------------
# async continuation + spawn propagation
# ---------------------------------------------------------------------------


class TestAsyncPropagation:
    def test_obj_wait_parents_under_the_async_invocation(self):
        from repro import (
            JSCodebase,
            JSObj,
            JSRegistration,
            TestbedConfig,
            vienna_testbed,
        )
        from tests.conftest import Counter  # noqa: F401

        with tracing(Tracer()) as tracer:
            runtime = vienna_testbed(
                TestbedConfig(load_profile="dedicated", seed=7)
            )

            def app():
                reg = JSRegistration()
                cb = JSCodebase()
                cb.add(Counter)
                cb.load(["rachel"])
                obj = JSObj("Counter", "rachel")
                handle = obj.ainvoke("incr")
                assert handle.ctx is not None
                handle.get_result()
                obj.free()
                reg.unregister()

            runtime.run_app(app)

        waits = tracer.events_of(ev.OBJ_WAIT)
        assert waits, "blocking get_result recorded no obj.wait span"
        invokes = {e.ctx.span_id: e
                   for e in tracer.events_of(ev.OBJ_INVOKE)}
        for wait in waits:
            parent = invokes.get(wait.ctx.parent_id)
            assert parent is not None
            assert parent.fields["mode"] == "async"
            assert wait.ctx.trace_id == parent.ctx.trace_id

    def test_spawned_process_inherits_span_context(self):
        from repro.kernel.virtual import VirtualKernel

        with tracing(Tracer()) as tracer:
            kernel = VirtualKernel(strict=True)
            kernel.tracer = tracer

            def child():
                tracer.emit(ev.OBJ_CREATE, ts=kernel.now(), host="h",
                            obj_id="o1")

            def parent():
                span = tracer.begin_span(ev.APP, ts=kernel.now(),
                                         host="h", parent=None)
                kernel.spawn(child, name="child")
                kernel.sleep(0.01)
                tracer.end_span(span, ts=kernel.now())

            main = kernel.spawn(parent, name="parent")
            kernel.run(main=main)

        app_span = tracer.events_of(ev.APP)[0]
        create = tracer.events_of(ev.OBJ_CREATE)[0]
        assert create.ctx is not None
        assert create.ctx.trace_id == app_span.ctx.trace_id
        assert create.ctx.span_id == app_span.ctx.span_id

    def test_local_oneway_span_covers_dispatch(self):
        """The oinvoke local fast path hands its span to the fired
        worker: the span must stay open across the dispatch (it used to
        be closed by the issuing caller at fire time, recording ~zero
        duration and orphaning the dispatch span)."""
        from repro import (
            JSCodebase,
            JSObj,
            JSRegistration,
            TestbedConfig,
            vienna_testbed,
        )
        from tests.conftest import Spinner  # noqa: F401

        with tracing(Tracer()) as tracer:
            runtime = vienna_testbed(
                TestbedConfig(load_profile="dedicated", seed=7)
            )
            kernel = runtime.world.kernel

            def app():
                reg = JSRegistration()
                obj = JSObj("Spinner", "local")
                obj.oinvoke("spin", [30e6])
                kernel.sleep(10.0)  # let the fired worker finish
                obj.free()
                reg.unregister()

            runtime.run_app(app)

        oneways = [e for e in tracer.events_of(ev.OBJ_INVOKE)
                   if e.fields.get("mode") == "oneway"]
        assert oneways, "local oinvoke recorded no oneway span"
        (oneway,) = oneways
        dispatches = [e for e in tracer.events_of(ev.OBJ_DISPATCH)
                      if e.ctx.parent_id == oneway.ctx.span_id]
        assert dispatches, "dispatch span not parented under the oneway"
        # The span brackets the modelled compute, not just the issue.
        assert oneway.dur >= dispatches[0].dur > 0.0

    def test_batch_span_parents_per_call_spans(self):
        """minvoke: one obj.invoke.batch span per destination group,
        with every per-call obj.invoke span (mode=batch) as a child,
        plus the batching counters."""
        from repro import (
            JSCodebase,
            JSObj,
            JSRegistration,
            TestbedConfig,
            vienna_testbed,
        )
        from tests.conftest import Counter  # noqa: F401

        with tracing(Tracer()) as tracer:
            runtime = vienna_testbed(
                TestbedConfig(load_profile="dedicated", seed=7)
            )

            def app():
                reg = JSRegistration()
                cb = JSCodebase()
                cb.add(Counter)
                cb.load(["rachel"])
                obj = JSObj("Counter", "rachel")
                assert obj.minvoke(
                    "incr", [[1], [2], [3]]
                ).get_results() == [1, 3, 6]
                obj.free()
                reg.unregister()

            runtime.run_app(app)

        batches = tracer.events_of(ev.OBJ_INVOKE_BATCH)
        assert len(batches) == 1
        (batch,) = batches
        assert batch.fields["size"] == 3
        assert batch.fields["coalesced"] is False
        calls = [e for e in tracer.events_of(ev.OBJ_INVOKE)
                 if e.fields.get("mode") == "batch"]
        assert len(calls) == 3
        for call in calls:
            assert call.ctx.parent_id == batch.ctx.span_id
            assert call.ctx.trace_id == batch.ctx.trace_id
        assert tracer.metrics.counter("invoke.batched") == 3
        assert tracer.metrics.counter("invoke.batch.messages") == 1
        assert tracer.metrics.counter("invoke.batch.dispatched") == 3
        hist = tracer.metrics.histogram("batch.size")
        assert hist is not None


# ---------------------------------------------------------------------------
# host failure
# ---------------------------------------------------------------------------


class TestHostFailure:
    def test_open_spans_on_failed_host_are_closed_and_marked(self):
        from repro.kernel.virtual import VirtualKernel
        from repro.simnet import HostSpec, SimWorld

        with tracing(Tracer()) as tracer:
            world = SimWorld(VirtualKernel(strict=True), seed=0)
            from repro.simnet.topology import Segment

            world.add_segment(Segment("s", bandwidth_mbits=100.0))
            world.add_machine(
                HostSpec(name="doomed", model="test", mflops=100.0), "s"
            )
            world.add_machine(
                HostSpec(name="fine", model="test", mflops=100.0), "s"
            )

            def app():
                tracer.begin_span(ev.OBJ_DISPATCH, ts=world.now(),
                                  host="doomed", actor="oa@doomed",
                                  parent=None, install=False)
                survivor = tracer.begin_span(
                    ev.APP, ts=world.now(), host="fine", parent=None,
                    install=False,
                )
                world.kernel.sleep(1.0)
                world.fail_host("doomed")
                # Later events from the dead host are marked, not lost.
                tracer.emit(ev.RPC_DROP, ts=world.now(), host="doomed",
                            kind="INVOKE")
                tracer.end_span(survivor, ts=world.now())

            main = world.kernel.spawn(app, name="app")
            world.kernel.run(main=main)

        dispatches = tracer.events_of(ev.OBJ_DISPATCH)
        assert len(dispatches) == 1
        (dispatch,) = dispatches
        assert dispatch.fields["host_failed"] is True
        assert dispatch.ctx is not None  # span context kept
        assert dispatch.dur == pytest.approx(1.0)
        failed = tracer.events_of(ev.HOST_FAILED)
        assert len(failed) == 1 and failed[0].host == "doomed"
        drop = tracer.events_of(ev.RPC_DROP)[0]
        assert drop.fields["host_failed"] is True
        # The survivor span on the healthy host stays unmarked.
        app_event = tracer.events_of(ev.APP)[0]
        assert "host_failed" not in app_event.fields
        assert tracer.open_spans == {}

    def test_nas_failure_run_keeps_span_contexts(self):
        from repro import TestbedConfig, vienna_testbed

        with tracing(Tracer()) as tracer:
            runtime = vienna_testbed(
                TestbedConfig(load_profile="dedicated", seed=5)
            )
            runtime.nas.config.monitor_period = 0.05
            runtime.nas.config.probe_period = 0.05
            runtime.nas.config.failure_timeout = 0.2
            runtime.world.schedule_failure("rachel", at=0.3)

            def app():
                runtime.world.kernel.sleep(2.0)

            runtime.run_app(app)

        failed = tracer.events_of(ev.HOST_FAILED)
        assert any(e.host == "rachel" for e in failed)
        marked = [e for e in tracer.events
                  if e.fields.get("host_failed")]
        for event in marked:
            assert event.host == "rachel"
        # Marked span events still carry their trace context.
        assert all(e.ctx is not None for e in marked
                   if e.etype == ev.NAS_SAMPLE)
        # No span from the dead host is left dangling open.
        assert not any(s.host == "rachel"
                       for s in tracer.open_spans.values())
