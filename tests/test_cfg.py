"""The reusable CFG/dataflow engine behind symloc.

Structural tests build small functions from source and assert block
shapes, edge targets and loop depths; dataflow tests check the
reaching-definitions and liveness fixpoints at statement granularity.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import (
    build_cfg,
    calls_in_stmt,
    function_cfgs,
    stmt_defs,
    stmt_uses,
)
from repro.analysis.dataflow import Liveness, ReachingDefinitions


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def block_with(cfg, kind, pred=lambda s: True):
    """The unique block holding a statement of ``kind`` matching ``pred``."""
    hits = [
        b for b in cfg.blocks
        if any(isinstance(s, kind) and pred(s) for s in b.stmts)
    ]
    assert len(hits) == 1, f"expected one block with {kind}, got {hits}"
    return hits[0]


def reachable(cfg, src, dst) -> bool:
    seen, work = set(), [src]
    while work:
        bid = work.pop()
        if bid == dst:
            return True
        if bid in seen:
            continue
        seen.add(bid)
        work.extend(cfg.block(bid).succs)
    return False


# ---------------------------------------------------------------------------
# structure
# ---------------------------------------------------------------------------


def test_linear_function_is_one_block():
    cfg = cfg_of("""
        def f(x):
            y = x + 1
            z = y * 2
            return z
    """)
    entry = cfg.block(cfg.entry)
    assert [type(s).__name__ for s in entry.stmts] == \
        ["Assign", "Assign", "Return"]
    assert cfg.exit in entry.succs


def test_if_else_meets_at_join():
    cfg = cfg_of("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """)
    header = block_with(cfg, ast.If)
    ret = block_with(cfg, ast.Return)
    assert len(header.succs) == 2
    then_b, else_b = (cfg.block(s) for s in header.succs)
    # both arms flow into the block holding the return
    for arm in (then_b, else_b):
        assert reachable(cfg, arm.id, ret.id)
    assert ret.id not in header.succs  # no fallthrough without an arm


def test_if_without_else_falls_through():
    cfg = cfg_of("""
        def f(x):
            if x:
                a = 1
            return x
    """)
    header = block_with(cfg, ast.If)
    ret = block_with(cfg, ast.Return)
    # one successor is the then-arm, the other the join holding return
    assert ret.id in [
        s for s in header.succs
    ] or any(reachable(cfg, s, ret.id) for s in header.succs)
    assert any(cfg.block(s) is ret for s in header.succs)


def test_while_header_is_inside_the_loop():
    cfg = cfg_of("""
        def f(x):
            while x > 0:
                x -= 1
            return x
    """)
    header = block_with(cfg, ast.While)
    body = block_with(cfg, ast.AugAssign)
    assert header.loop_depth == 1  # the test re-executes per iteration
    assert body.loop_depth == 1
    assert body.id in header.succs
    assert header.id in body.succs  # back edge


def test_for_header_stays_at_outer_depth():
    cfg = cfg_of("""
        def f(items):
            for item in items:
                use(item)
            return None
    """)
    header = block_with(cfg, ast.For)
    body = block_with(cfg, ast.Expr)
    assert header.loop_depth == 0  # the iterable evaluates once
    assert body.loop_depth == 1
    assert header.id in body.succs


def test_nested_loops_stack_depth():
    cfg = cfg_of("""
        def f(grid):
            for row in grid:
                for cell in row:
                    touch(cell)
    """)
    inner_body = block_with(cfg, ast.Expr)
    assert inner_body.loop_depth == 2


def test_break_skips_while_else():
    cfg = cfg_of("""
        def f(xs):
            while xs:
                if bad(xs):
                    break
                xs = shrink(xs)
            else:
                finish()
            return xs
    """)
    header = block_with(cfg, ast.While)
    brk = block_with(cfg, ast.Break)
    els = block_with(
        cfg, ast.Expr,
        lambda s: isinstance(s.value, ast.Call)
        and s.value.func.id == "finish",
    )
    ret = block_with(cfg, ast.Return)
    # normal exit runs the else; break jumps straight past it
    assert els.id in header.succs
    after = brk.succs[0]
    assert after != els.id
    assert ret.id == after or reachable(cfg, after, ret.id)
    assert not reachable(cfg, brk.succs[0], els.id)


def test_continue_edges_back_to_header():
    cfg = cfg_of("""
        def f(xs):
            for x in xs:
                if skip(x):
                    continue
                handle(x)
    """)
    header = block_with(cfg, ast.For)
    cont = block_with(cfg, ast.Continue)
    assert header.id in cont.succs


def test_for_else_runs_on_normal_exit():
    cfg = cfg_of("""
        def f(xs):
            for x in xs:
                probe(x)
            else:
                wrapup()
            return None
    """)
    header = block_with(cfg, ast.For)
    els = block_with(
        cfg, ast.Expr,
        lambda s: isinstance(s.value, ast.Call)
        and s.value.func.id == "wrapup",
    )
    assert els.id in header.succs


def test_try_body_edges_into_handler_and_finally():
    cfg = cfg_of("""
        def f(x):
            try:
                risky(x)
                more(x)
            except ValueError:
                recover(x)
            finally:
                cleanup(x)
            return x
    """)
    handler = block_with(cfg, ast.ExceptHandler)
    fin = block_with(
        cfg, ast.Expr,
        lambda s: isinstance(s.value, ast.Call)
        and s.value.func.id == "cleanup",
    )
    body = block_with(
        cfg, ast.Expr,
        lambda s: isinstance(s.value, ast.Call)
        and s.value.func.id == "risky",
    )
    # an exception can split the body anywhere
    assert handler.id in body.succs
    assert fin.id in body.succs
    # the handler also drains through the finally
    assert reachable(cfg, handler.id, fin.id)
    # and the finally reaches both the fallthrough and the exit
    ret = block_with(cfg, ast.Return)
    assert reachable(cfg, fin.id, ret.id)
    assert reachable(cfg, fin.id, cfg.exit)


def test_return_routes_through_enclosing_finally():
    cfg = cfg_of("""
        def f(x):
            try:
                return x
            finally:
                cleanup()
    """)
    ret = block_with(cfg, ast.Return)
    fin = block_with(cfg, ast.Expr)
    assert fin.id in ret.succs


def test_statements_enumerates_every_stmt():
    cfg = cfg_of("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            for i in range(a):
                x += i
            return x
    """)
    kinds = sorted(
        type(s).__name__ for _b, _i, s in cfg.statements()
    )
    assert kinds == ["Assign", "Assign", "AugAssign", "For", "If", "Return"]


def test_function_cfgs_covers_methods_and_nested_defs():
    tree = ast.parse(textwrap.dedent("""
        def top():
            def inner():
                pass

        class K:
            def m(self):
                pass
    """))
    names = [qualname for qualname, _f, _c in function_cfgs(tree)]
    assert names == ["top", "top.inner", "K.m"]


# ---------------------------------------------------------------------------
# defs / uses / calls at statement granularity
# ---------------------------------------------------------------------------


def stmt(source: str) -> ast.stmt:
    return ast.parse(textwrap.dedent(source)).body[0]


def test_for_header_defines_target_uses_iterable():
    node = stmt("for a, b in pairs():\n    body()")
    assert stmt_defs(node) == {"a", "b"}
    assert "pairs" in stmt_uses(node)
    assert "body" not in stmt_uses(node)  # the body is another block


def test_subscript_store_counts_base_as_use():
    node = stmt("xs[i] = compute()")
    assert stmt_defs(node) == set()
    assert {"xs", "i", "compute"} <= stmt_uses(node)


def test_lambda_free_variables_stay_live():
    node = stmt("cb = lambda: shared + 1")
    assert stmt_defs(node) == {"cb"}
    assert "shared" in stmt_uses(node)


def test_calls_in_comprehension_carry_loop_depth():
    node = stmt("out = [fetch(x) for x in source() if keep(x)]")
    depths = {
        c.func.id: d for c, d in calls_in_stmt(node)
    }
    assert depths["fetch"] == 1     # once per produced element
    assert depths["keep"] == 1      # the filter too
    assert depths["source"] == 0    # first iterable evaluates once


def test_calls_inside_nested_def_are_opaque():
    node = stmt("def g():\n    hidden()")
    assert list(calls_in_stmt(node)) == []


# ---------------------------------------------------------------------------
# dataflow
# ---------------------------------------------------------------------------


def test_reaching_definitions_merge_at_join():
    cfg = cfg_of("""
        def f(cond):
            x = 1
            if cond:
                x = 2
            return x
    """)
    reaching = ReachingDefinitions(cfg)
    ret_block = block_with(cfg, ast.Return)
    idx = next(
        i for i, s in enumerate(ret_block.stmts)
        if isinstance(s, ast.Return)
    )
    lines = sorted(
        d.line for d in reaching.reaching_before(ret_block, idx)
        if d.name == "x"
    )
    assert lines == [3, 5]  # both the outer and the branch binding


def test_reaching_definitions_kill_within_block():
    cfg = cfg_of("""
        def f():
            x = 1
            x = 2
            return x
    """)
    reaching = ReachingDefinitions(cfg)
    block = block_with(cfg, ast.Return)
    facts = reaching.reaching_before(block, 2)
    xs = [d for d in facts if d.name == "x"]
    assert len(xs) == 1 and xs[0].line == 4  # the rebind shadows


def test_liveness_at_statement_granularity():
    cfg = cfg_of("""
        def f(a):
            b = a + 1
            c = b * 2
            return c
    """)
    live = Liveness(cfg)
    entry = cfg.block(cfg.entry)
    assert "b" in live.live_after(entry, 0)   # read by the next stmt
    assert "b" not in live.live_after(entry, 1)
    assert "c" in live.live_after(entry, 1)


def test_liveness_carries_around_loop_back_edge():
    cfg = cfg_of("""
        def f(n):
            total = 0
            for i in range(n):
                total = total + i
            return total
    """)
    live = Liveness(cfg)
    body = block_with(cfg, ast.Assign,
                      lambda s: isinstance(s.value, ast.BinOp))
    # after the body's last stmt, total is still live: the next
    # iteration (and the return) read it
    assert "total" in live.live_after(body, len(body.stmts) - 1)


def test_dead_result_is_not_live():
    cfg = cfg_of("""
        def f(obj):
            unused = obj.poke()
            return 1
    """)
    live = Liveness(cfg)
    entry = cfg.block(cfg.entry)
    assert "unused" not in live.live_after(entry, 0)
