"""Invoke/migrate race coverage: the pending counter is load-bearing
now — migration drains in-flight async invocations (or hands stragglers
to the tombstone redirect under ``migrate_drain_timeout``, with a
``san-migrate-pending`` finding), and pending is tracked for foreign
refs the local table has never seen."""

import pytest

from repro.cluster import TestbedConfig as TBConfig
from repro.cluster import vienna_testbed
from repro.core import JSCodebase, JSObj, JSRegistration
from repro.sanitizer import Sanitizer, sanitizing
from repro.util.serialization import Payload, unwrap
from tests.conftest import Counter, Echo, Spinner  # noqa: F401


def load_classes(hosts):
    cb = JSCodebase()
    cb.add(Counter)
    cb.add(Echo)
    cb.add(Spinner)
    cb.load(list(hosts))
    return cb


class TestInvokeMigrateRace:
    def test_sinvoke_races_migration(self, dedicated_testbed):
        """A process hammering sinvoke while the owner migrates the
        object around the testbed: every increment must land exactly
        once, wherever the object happened to live."""
        rt = dedicated_testbed
        kernel = rt.world.kernel

        def app():
            reg = JSRegistration()
            load_classes(["johanna", "greta", "ida"])
            obj = JSObj("Counter", "johanna")

            def racer():
                for _ in range(12):
                    # The blocking per-iteration round trip IS the test:
                    # each call must land wherever the object lives now.
                    # symlint: disable-next-line=remote-invoke-in-loop
                    obj.sinvoke("incr")
                    kernel.sleep(0.05)

            proc = kernel.spawn(racer, name="racer")
            for dst in ("greta", "ida", "johanna", "greta"):
                kernel.sleep(0.11)
                # Deliberate migration churn while the racer fires.
                # symlint: disable-next-line=migrate-in-loop
                obj.migrate(dst)
            proc.join()
            # Final consistency read; nothing to overlap with.
            # symlint: disable-next-line=sync-invoke-async-opportunity
            value = obj.sinvoke("get")
            assert obj.get_node() == "greta"
            reg.unregister()
            return value

        assert rt.run_app(app) == 12

    def test_ainvoke_burst_races_migration(self, dedicated_testbed):
        """A burst of ainvokes immediately followed by migrate: the
        drain waits them out, every handle resolves, nothing is lost."""
        rt = dedicated_testbed

        def app():
            reg = JSRegistration()
            load_classes(["johanna", "greta"])
            obj = JSObj("Counter", "johanna")
            handles = [obj.ainvoke("incr") for _ in range(8)]
            obj.migrate("greta")
            assert reg.app.pending_invocations(obj.obj_id) == 0
            assert sorted(h.get_result() for h in handles) == list(
                range(1, 9)
            )
            assert obj.sinvoke("get") == 8
            reg.unregister()

        rt.run_app(app)

    def test_migrate_drains_pending_async(self, dedicated_testbed):
        """Default policy (no drain timeout): migration blocks until the
        in-flight async invocation has fully completed."""
        rt = dedicated_testbed
        kernel = rt.world.kernel

        def app():
            reg = JSRegistration()
            load_classes(["johanna", "greta"])
            obj = JSObj("Spinner", "johanna")
            handle = obj.ainvoke("spin", [42e6])  # ~1 s of modelled work
            t0 = kernel.now()
            obj.migrate("greta")
            drained = kernel.now() - t0
            # The migrate call sat out the remote compute, it did not
            # yank the object from under the invocation.
            assert drained > 0.5
            assert handle.is_ready()
            assert handle.get_result() == "done"
            assert reg.app.pending_invocations(obj.obj_id) == 0
            reg.unregister()

        rt.run_app(app)

    def test_drain_timeout_hands_off_with_finding(self):
        """With a drain timeout the migration proceeds while a request
        is still on the wire: the sanitizer records the hazard and the
        straggler resolves through the tombstone redirect anyway."""
        san = Sanitizer()
        with sanitizing(san):
            rt = vienna_testbed(
                TBConfig(load_profile="dedicated", seed=3)
            )
            rt.shell.config.migrate_drain_timeout = 0.05

            def app():
                reg = JSRegistration()
                load_classes(["ida", "greta"])
                obj = JSObj("Echo", "ida")
                obj.sinvoke("echo", ["warm"])
                # ~3 s of transit on the shared 10 Mbit segment: the
                # request is still in flight when migrate starts.
                handle = obj.ainvoke(
                    "echo", [Payload(data="big", nbytes=4_000_000)]
                )
                assert reg.app.pending_invocations(obj.obj_id) == 1
                obj.migrate("greta")
                assert unwrap(handle.get_result()) == "big"
                assert reg.app.pending_invocations(obj.obj_id) == 0
                assert obj.sinvoke("echo", ["alive"]) == "alive"
                reg.unregister()

            rt.run_app(app)
        rules = [f.rule for f in san.report().findings]
        assert "san-migrate-pending" in rules
        finding = next(
            f for f in san.report().findings
            if f.rule == "san-migrate-pending"
        )
        assert "still in flight" in finding.message

    def test_no_finding_when_drain_completes(self):
        """A full drain (timeout None) never trips the sanitizer."""
        san = Sanitizer()
        with sanitizing(san):
            rt = vienna_testbed(
                TBConfig(load_profile="dedicated", seed=3)
            )

            def app():
                reg = JSRegistration()
                load_classes(["johanna", "greta"])
                obj = JSObj("Spinner", "johanna")
                handle = obj.ainvoke("spin", [10e6])
                obj.migrate("greta")
                assert handle.get_result() == "done"
                reg.unregister()

            rt.run_app(app)
        rules = [f.rule for f in san.report().findings]
        assert "san-migrate-pending" not in rules

    def test_foreign_ref_pending_tracked(self, dedicated_testbed):
        """Async invocations through a ref the local table has never
        registered (remote-origin handle) are counted too — they used to
        vanish from the pending accounting entirely."""
        rt = dedicated_testbed
        kernel = rt.world.kernel
        captured = {}

        def producer():
            reg = JSRegistration()
            load_classes(["johanna"])
            obj = JSObj("Spinner", "johanna")
            captured["ref"] = obj.ref
            captured["reg"] = reg

        rt.run_app(producer)

        def consumer():
            reg = JSRegistration()
            app = reg.app
            foreign = JSObj._from_ref(captured["ref"], app)
            assert foreign.obj_id not in app.refs
            handle = foreign.ainvoke("spin", [42e6])
            kernel.sleep(0.2)  # request issued, result far away
            assert app.pending_invocations(foreign.obj_id) == 1
            assert handle.get_result() == "done"
            assert app.pending_invocations(foreign.obj_id) == 0
            # The counter dict does not accumulate dead entries.
            assert foreign.obj_id not in app.foreign_pending
            reg.unregister()

        rt.run_app(consumer, node="rachel")
        # No tidy-up unregister: freeing the producer's refs from a
        # third process has no happens-before edge to their creation,
        # which the sanitized run reports; the kernel sweep fixture
        # reclaims the world.
