"""Integration tests: object lifecycle, invocation modes, classloading."""

import pytest

from repro.core import JSCodebase, JSObj, JSRegistration
from repro.errors import (
    ObjectStateError,
    RegistrationError,
    RemoteInvocationError,
)
from repro.varch import Cluster, Node
from tests.conftest import Counter, Echo, Spinner  # noqa: F401


class TestRegistration:
    def test_register_unregister(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            assert reg.app_id.startswith("app")
            assert reg.home_node in dedicated_testbed.nas.known_hosts()
            reg.unregister()

        dedicated_testbed.run_app(app)

    def test_double_unregister_rejected(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            reg.unregister()
            with pytest.raises(RegistrationError):
                reg.unregister()

        dedicated_testbed.run_app(app)

    def test_double_register_rejected(self, dedicated_testbed):
        def app():
            JSRegistration()
            with pytest.raises(RegistrationError):
                JSRegistration()

        dedicated_testbed.run_app(app)

    def test_home_node_selectable(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            assert reg.home_node == "anton"
            reg.unregister()

        dedicated_testbed.run_app(app, node="anton")

    def test_unregister_frees_objects(self, dedicated_testbed):
        rt = dedicated_testbed

        def app():
            reg = JSRegistration()
            node = Node("rachel")
            cb = JSCodebase(); cb.add(Counter); cb.load(node)
            JSObj("Counter", node)
            assert len(rt.pub_oas["rachel"].objects) == 1
            reg.unregister()
            assert len(rt.pub_oas["rachel"].objects) == 0

        rt.run_app(app)

    def test_objects_outside_registration_rejected(self, dedicated_testbed):
        from repro.errors import JSError

        def app():
            with pytest.raises(JSError):
                JSObj("Counter")

        dedicated_testbed.run_app(app)


class TestCreation:
    def test_create_unmapped_lets_jrs_choose(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            obj = JSObj("Counter")
            host = obj.get_node()
            assert host in dedicated_testbed.nas.known_hosts()
            reg.unregister()
            return host

        # JRS picks an idle fast machine.
        assert dedicated_testbed.run_app(app) in ("milena", "rachel")

    def test_create_on_local(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            obj = JSObj("Counter", "local")
            assert obj.get_node() == reg.home_node
            reg.unregister()

        dedicated_testbed.run_app(app, node="bruno")

    def test_create_on_node(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            node = Node("greta")
            cb = JSCodebase(); cb.add(Counter); cb.load(node)
            obj = JSObj("Counter", node)
            assert obj.get_node() == "greta"
            reg.unregister()

        dedicated_testbed.run_app(app)

    def test_create_on_cluster_picks_member(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            cluster = Cluster(3)
            cb = JSCodebase(); cb.add(Counter); cb.load(cluster)
            obj = JSObj("Counter", cluster)
            assert obj.get_node() in cluster.hostnames()
            reg.unregister()

        dedicated_testbed.run_app(app)

    def test_constructor_args(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            obj = JSObj("Counter", "local", args=[41])
            value = obj.sinvoke("incr")
            reg.unregister()
            return value

        assert dedicated_testbed.run_app(app) == 42

    def test_colocate_with_other_object(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            cluster = Cluster(4)
            cb = JSCodebase(); cb.add(Counter); cb.load(cluster)
            obj1 = JSObj("Counter", cluster.get_node(2))
            # Paper: generate obj2 on the same node as obj1.
            obj2 = JSObj("Counter", obj1.get_node())
            assert obj1.get_node() == obj2.get_node()
            reg.unregister()

        dedicated_testbed.run_app(app)

    def test_classload_gate_enforced(self, dedicated_testbed):
        from repro.errors import RemoteInvocationError

        def app():
            reg = JSRegistration()
            node = Node("ida")  # no codebase loaded there
            try:
                with pytest.raises(RemoteInvocationError) as err:
                    JSObj("Counter", node)
                from repro.errors import ClassNotLoadedError

                assert isinstance(err.value.cause, ClassNotLoadedError)
            finally:
                reg.unregister()

        dedicated_testbed.run_app(app)

    def test_local_creation_needs_no_codebase(self, dedicated_testbed):
        # The home node's CLASSPATH has the application's own classes.
        def app():
            reg = JSRegistration()
            obj = JSObj("Counter", "local")
            assert obj.sinvoke("get") == 0
            reg.unregister()

        dedicated_testbed.run_app(app)


class TestInvocation:
    def _with_remote_counter(self, testbed, body):
        def app():
            reg = JSRegistration()
            node = Node("johanna")
            cb = JSCodebase(); cb.add(Counter); cb.add(Echo)
            cb.add(Spinner); cb.load(node)
            try:
                return body(reg, node)
            finally:
                reg.unregister()

        return testbed.run_app(app)

    def test_sinvoke_remote_state(self, dedicated_testbed):
        def body(reg, node):
            obj = JSObj("Counter", node)
            assert obj.sinvoke("incr", [5]) == 5
            assert obj.sinvoke("incr", [2]) == 7
            return obj.sinvoke("get")

        assert self._with_remote_counter(dedicated_testbed, body) == 7

    def test_remote_exception_propagates(self, dedicated_testbed):
        def body(reg, node):
            obj = JSObj("Counter", node)
            with pytest.raises(RemoteInvocationError) as err:
                obj.sinvoke("boom")
            assert isinstance(err.value.cause, ValueError)

        self._with_remote_counter(dedicated_testbed, body)

    def test_missing_method(self, dedicated_testbed):
        def body(reg, node):
            obj = JSObj("Counter", node)
            with pytest.raises(RemoteInvocationError):
                obj.sinvoke("no_such_method")

        self._with_remote_counter(dedicated_testbed, body)

    def test_copy_semantics_remote(self, dedicated_testbed):
        def body(reg, node):
            obj = JSObj("Echo", node)
            arg = {"mutated": False}
            result = obj.sinvoke("mutate", [arg])
            return arg, result

        arg, result = self._with_remote_counter(dedicated_testbed, body)
        assert arg == {"mutated": False}
        assert result["mutated"] is True

    def test_ainvoke_returns_handle_immediately(self, dedicated_testbed):
        rt = dedicated_testbed

        def body(reg, node):
            obj = JSObj("Spinner", node)
            t0 = rt.world.now()
            handle = obj.ainvoke("spin", [42e6])  # 1 s on johanna
            spawn_cost = rt.world.now() - t0
            assert not handle.is_ready()
            result = handle.get_result()
            elapsed = rt.world.now() - t0
            return spawn_cost, result, elapsed

        spawn_cost, result, elapsed = self._with_remote_counter(
            dedicated_testbed, body
        )
        assert spawn_cost < 0.01
        assert result == "done"
        assert elapsed >= 1.0

    def test_ainvoke_overlaps_invocations(self, dedicated_testbed):
        rt = dedicated_testbed

        def app():
            reg = JSRegistration()
            cluster = Cluster(3)
            cb = JSCodebase(); cb.add(Spinner); cb.load(cluster)
            objs = [JSObj("Spinner", cluster.get_node(i)) for i in range(3)]
            t0 = rt.world.now()
            handles = [o.ainvoke("spin", [60e6]) for o in objs]
            for h in handles:
                assert h.get_result() == "done"
            elapsed = rt.world.now() - t0
            reg.unregister()
            return elapsed

        # Three 1-second-ish computations on three nodes overlap.
        assert dedicated_testbed.run_app(app) < 2.5

    def test_is_ready_polling(self, dedicated_testbed):
        rt = dedicated_testbed

        def body(reg, node):
            obj = JSObj("Spinner", node)
            handle = obj.ainvoke("spin", [42e6])
            polls = 0
            while not handle.is_ready():
                rt.world.kernel.sleep(0.1)
                polls += 1
            return polls, handle.get_result()

        polls, result = self._with_remote_counter(dedicated_testbed, body)
        assert polls >= 5
        assert result == "done"

    def test_oinvoke_fire_and_forget(self, dedicated_testbed):
        rt = dedicated_testbed

        def body(reg, node):
            obj = JSObj("Counter", node)
            t0 = rt.world.now()
            obj.oinvoke("incr", [10])
            assert rt.world.now() - t0 < 0.01  # did not wait
            rt.world.kernel.sleep(1.0)  # let it land
            return obj.sinvoke("get")

        assert self._with_remote_counter(dedicated_testbed, body) == 10

    def test_oinvoke_errors_are_dropped(self, dedicated_testbed):
        def body(reg, node):
            obj = JSObj("Counter", node)
            obj.oinvoke("boom")  # must not raise, ever
            dedicated_testbed.world.kernel.sleep(1.0)
            return obj.sinvoke("get")

        assert self._with_remote_counter(dedicated_testbed, body) == 0

    def test_serial_dispatch_per_object(self, dedicated_testbed):
        rt = dedicated_testbed

        def body(reg, node):
            obj = JSObj("Spinner", node)
            t0 = rt.world.now()
            h1 = obj.ainvoke("spin", [42e6])
            h2 = obj.ainvoke("spin", [42e6])
            h1.get_result(); h2.get_result()
            return rt.world.now() - t0

        # Same object: the two 1-second invocations serialize (~2 s).
        assert self._with_remote_counter(dedicated_testbed, body) >= 2.0

    def test_object_ref_passing(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            cluster = Cluster(2)
            cb = JSCodebase(); cb.add(Echo); cb.load(cluster)
            obj1 = JSObj("Echo", cluster.get_node(0))
            obj2 = JSObj("Echo", cluster.get_node(1))
            # Pass obj2's handle through obj1 and get it back usable.
            returned = obj1.sinvoke("echo", [obj2])
            assert returned.obj_id == obj2.obj_id
            assert returned.sinvoke("echo", ["hi"]) == "hi"
            reg.unregister()

        dedicated_testbed.run_app(app)


class TestFree:
    def test_free_then_invoke_rejected(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            obj = JSObj("Counter", "local")
            obj.free()
            with pytest.raises(ObjectStateError):
                obj.sinvoke("get")
            reg.unregister()

        dedicated_testbed.run_app(app)

    def test_free_releases_memory(self, dedicated_testbed):
        rt = dedicated_testbed

        def app():
            reg = JSRegistration()
            node = Node("theresa")
            cb = JSCodebase(); cb.add(Counter); cb.load(node)
            machine = rt.world.machine("theresa")
            before = machine.js_mem_mb
            obj = JSObj("Counter", node)
            assert machine.js_mem_mb > before
            obj.free()
            assert machine.js_mem_mb == pytest.approx(before)
            reg.unregister()

        rt.run_app(app)

    def test_double_free_rejected(self, dedicated_testbed):
        def app():
            reg = JSRegistration()
            obj = JSObj("Counter", "local")
            obj.free()
            with pytest.raises(ObjectStateError):
                obj.free()
            reg.unregister()

        dedicated_testbed.run_app(app)
