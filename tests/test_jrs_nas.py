"""Integration tests for the Network Agent System: monitoring flow,
hierarchical aggregation, failure detection, manager takeover, and
JS-Shell administration."""

import pytest

from repro.agents.nas import NASConfig
from repro.cluster import TestbedConfig as TBConfig
from repro.cluster import vienna_testbed
from repro.errors import ShellError
from repro.sysmon import SysParam


def fast_nas():
    return NASConfig(
        monitor_period=2.0, probe_period=2.0, failure_timeout=1.0
    )


def make_testbed(**kwargs):
    config = TBConfig(load_profile="dedicated", seed=9, nas=fast_nas())
    for key, value in kwargs.items():
        setattr(config, key, value)
    return vienna_testbed(config)


def run_for(runtime, seconds):
    runtime.world.kernel.run(until=runtime.world.now() + seconds)


class TestMonitoringFlow:
    def test_agents_sample_their_nodes(self):
        rt = make_testbed()
        run_for(rt, 10.0)
        for host in rt.nas.known_hosts():
            snap = rt.nas.agents[host].latest_snapshot()
            assert snap is not None
            assert snap[SysParam.NODE_NAME] == host

    def test_cluster_manager_collects_member_samples(self):
        rt = make_testbed()
        run_for(rt, 10.0)
        manager = rt.nas.cluster_manager("ultras")
        agent = rt.nas.agents[manager]
        # All 7 ultras report to the ultras cluster manager.
        assert len(agent.member_samples) == 7

    def test_cluster_average_aggregates(self):
        rt = make_testbed()
        run_for(rt, 10.0)
        avg = rt.nas.cluster_average("sparcs")
        assert avg is not None
        # Average of SS4/110 (5.5), SS5/70 (4.5), SS10/40 (3.5) pairs.
        assert avg[SysParam.PEAK_MFLOPS] == pytest.approx(
            (5.5 * 2 + 4.5 * 2 + 3.5 * 2) / 6
        )

    def test_site_and_domain_average(self):
        rt = make_testbed()
        run_for(rt, 12.0)
        site_avg = rt.nas.site_average("vienna")
        assert site_avg is not None
        expected = (60 * 2 + 42 * 2 + 22 * 3 + 5.5 * 2 + 4.5 * 2 + 3.5 * 2) / 13
        assert site_avg[SysParam.PEAK_MFLOPS] == pytest.approx(expected)
        domain_avg = rt.nas.domain_average()
        assert domain_avg[SysParam.PEAK_MFLOPS] == pytest.approx(expected)

    def test_manager_nesting_rule(self):
        rt = make_testbed()
        ultras_mgr = rt.nas.cluster_manager("ultras")
        assert rt.nas.site_manager("vienna") == ultras_mgr
        assert rt.nas.domain_manager() == ultras_mgr
        assert rt.nas.is_manager(ultras_mgr)

    def test_monitoring_sees_load_changes(self):
        rt = make_testbed()
        run_for(rt, 10.0)
        idle_before = rt.nas.latest_snapshot("rachel")[SysParam.IDLE]
        assert idle_before > 90
        # Pin rachel's CPU via a JS task and wait for fresh samples.
        rt.world.machine("rachel").begin_task()
        run_for(rt, 6.0)
        idle_after = rt.nas.latest_snapshot("rachel")[SysParam.IDLE]
        rt.world.machine("rachel").end_task()
        assert idle_after < 20


class TestFailureDetection:
    def test_failed_member_released(self):
        rt = make_testbed()
        run_for(rt, 5.0)
        assert "greta" in rt.nas.cluster_members("sparcs")
        rt.world.fail_host("greta")
        run_for(rt, 15.0)
        assert "greta" not in rt.nas.cluster_members("sparcs")
        assert "greta" not in rt.pool.hosts  # pool follows NAS
        events = [e for e in rt.nas.events if e.kind == "node-released"]
        assert any(e.detail["host"] == "greta" for e in events)

    def test_failed_manager_takeover(self):
        rt = make_testbed()
        run_for(rt, 5.0)
        old_manager = rt.nas.cluster_manager("sparcs")
        backups = rt.nas.managers["sparcs"].backups
        assert backups
        expected_successor = backups[0]
        rt.world.fail_host(old_manager)
        run_for(rt, 20.0)
        assert rt.nas.cluster_manager("sparcs") == expected_successor
        takeovers = [
            e for e in rt.nas.events if e.kind == "manager-takeover"
        ]
        assert len(takeovers) == 1
        assert takeovers[0].detail["failed"] == old_manager
        assert takeovers[0].detail["new_manager"] == expected_successor

    def test_site_manager_failure_promotes_backup(self):
        rt = make_testbed()
        run_for(rt, 5.0)
        old = rt.nas.domain_manager()  # = ultras manager = site manager
        rt.world.fail_host(old)
        run_for(rt, 20.0)
        new = rt.nas.domain_manager()
        assert new != old
        assert rt.nas.site_manager("vienna") == new
        takeover = [
            e for e in rt.nas.events if e.kind == "manager-takeover"
        ][0]
        assert takeover.detail["was_site_manager"]
        assert takeover.detail["was_domain_manager"]

    def test_monitoring_continues_after_takeover(self):
        rt = make_testbed()
        run_for(rt, 5.0)
        rt.world.fail_host(rt.nas.cluster_manager("sparcs"))
        run_for(rt, 25.0)
        avg = rt.nas.cluster_average("sparcs")
        assert avg is not None
        # The new manager aggregates the 5 surviving sparcs.
        members = rt.nas.cluster_members("sparcs")
        assert len(members) == 5

    def test_double_failure_consumes_both_backups(self):
        rt = make_testbed()
        run_for(rt, 5.0)
        first = rt.nas.cluster_manager("sparcs")
        rt.world.fail_host(first)
        run_for(rt, 20.0)
        second = rt.nas.cluster_manager("sparcs")
        rt.world.fail_host(second)
        run_for(rt, 20.0)
        third = rt.nas.cluster_manager("sparcs")
        assert len({first, second, third}) == 3
        assert third in rt.nas.cluster_members("sparcs")

    def test_oas_does_not_recover_objects(self):
        """Paper: 'currently the object agent system does not exploit
        information about system failures provided by the NAS'."""
        from repro.core import JSCodebase, JSObj, JSRegistration
        from tests.conftest import Counter  # noqa: F401

        rt = make_testbed()
        holder = {}

        def app():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Counter); cb.load("greta")
            obj = JSObj("Counter", "greta")
            assert obj.sinvoke("incr", [1]) == 1
            holder["obj"] = obj
            holder["reg"] = reg

        rt.run_app(app)
        rt.world.fail_host("greta")
        run_for(rt, 15.0)

        def check():
            # The object is simply gone; invoking it times out.
            rt.shell.config.rpc_timeout = 3.0
            from repro.errors import RPCTimeoutError

            with pytest.raises(RPCTimeoutError):
                holder["obj"].sinvoke("get")
            holder["reg"].unregister()

        rt.run_app(check)


class TestShellAdministration:
    def test_add_and_remove_node(self):
        from repro.simnet import make_host

        def add_machine(world):
            world.add_machine(make_host("neu", "Ultra10/440", 99),
                              "switch-100")

        config = TBConfig(load_profile="dedicated", seed=9, nas=fast_nas())
        rt = vienna_testbed(config, mutate_world=add_machine)
        assert "neu" not in rt.nas.known_hosts()
        rt.shell.add_node("neu", cluster="ultras", site="vienna")
        assert "neu" in rt.nas.known_hosts()
        assert "neu" in rt.pool.hosts
        run_for(rt, 10.0)
        assert rt.nas.agents["neu"].latest_snapshot() is not None
        rt.shell.remove_node("neu")
        assert "neu" not in rt.nas.known_hosts()
        assert "neu" not in rt.pool.hosts

    def test_add_unknown_host_rejected(self):
        rt = make_testbed()
        with pytest.raises(ShellError):
            rt.shell.add_node("ghost", cluster="ultras", site="vienna")

    def test_duplicate_add_rejected(self):
        rt = make_testbed()
        with pytest.raises(ShellError):
            rt.shell.add_node("milena", cluster="ultras", site="vienna")

    def test_period_configuration(self):
        rt = make_testbed()
        rt.shell.set_monitor_period(1.0)
        rt.shell.set_probe_period(1.5)
        rt.shell.set_failure_timeout(0.5)
        assert rt.nas.config.monitor_period == 1.0
        assert rt.nas.config.probe_period == 1.5
        assert rt.nas.config.failure_timeout == 0.5
        with pytest.raises(ShellError):
            rt.shell.set_monitor_period(0)

    def test_auto_migration_toggle_logged(self):
        rt = make_testbed()
        rt.shell.enable_auto_migration(watch_period=3.0)
        assert rt.shell.config.auto_migration
        assert rt.shell.config.watch_period == 3.0
        rt.shell.disable_auto_migration()
        assert not rt.shell.config.auto_migration
        kinds = [kind for _, kind, _ in rt.shell.log]
        assert kinds.count("auto-migration") == 2

    def test_shell_sees_failure_events(self):
        rt = make_testbed()
        run_for(rt, 5.0)
        rt.world.fail_host("ida")
        run_for(rt, 15.0)
        assert rt.shell.failure_events()
