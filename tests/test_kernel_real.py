"""Tests for the wall-clock kernel.  Kept fast via time_scale dilation."""

import pytest

from repro.errors import WaitTimeout
from repro.kernel import ProcessState, RealKernel


@pytest.fixture()
def kernel():
    # 1 "kernel second" = 5 ms of wall time.
    return RealKernel(time_scale=0.005)


class TestRealProcesses:
    def test_result(self, kernel):
        proc = kernel.spawn(lambda: "done")
        kernel.run(main=proc)
        assert proc.result() == "done"
        assert proc.state is ProcessState.FINISHED

    def test_exception(self, kernel):
        proc = kernel.spawn(lambda: 1 / 0)
        kernel.run(main=proc)
        with pytest.raises(ZeroDivisionError):
            proc.result()

    def test_true_concurrency(self, kernel):
        """Two workers sleeping 1 kernel-second each overlap in wall time."""

        def worker():
            kernel.sleep(1.0)

        def main():
            t0 = kernel.now()
            procs = [kernel.spawn(worker) for _ in range(4)]
            for p in procs:
                p.join()
            return kernel.now() - t0

        elapsed = kernel.run_callable(main)
        assert elapsed < 3.0  # would be 4.0 if serialized

    def test_now_advances(self, kernel):
        def main():
            t0 = kernel.now()
            kernel.sleep(1.0)
            return kernel.now() - t0

        assert kernel.run_callable(main) >= 0.9

    def test_context_inherited(self, kernel):
        seen = {}

        def child():
            seen["app"] = kernel.current_process().context.get("app")

        def main():
            kernel.current_process().context["app"] = "a1"
            kernel.spawn(child).join()

        kernel.run_callable(main)
        assert seen["app"] == "a1"


class TestRealSync:
    def test_future_set_from_other_thread(self, kernel):
        def setter(fut):
            kernel.sleep(0.5)
            fut.set_result(99)

        def main():
            fut = kernel.create_future()
            kernel.spawn(setter, fut)
            return fut.result(timeout=50.0)

        assert kernel.run_callable(main) == 99

    def test_future_timeout(self, kernel):
        def main():
            fut = kernel.create_future()
            with pytest.raises(WaitTimeout):
                fut.result(timeout=0.5)

        kernel.run_callable(main)

    def test_channel_roundtrip(self, kernel):
        def producer(ch):
            for i in range(3):
                ch.put(i)

        def main():
            ch = kernel.create_channel()
            kernel.spawn(producer, ch)
            return [ch.get(timeout=50.0) for _ in range(3)]

        assert kernel.run_callable(main) == [0, 1, 2]

    def test_channel_timeout(self, kernel):
        def main():
            ch = kernel.create_channel()
            with pytest.raises(WaitTimeout):
                ch.get(timeout=0.2)

        kernel.run_callable(main)

    def test_semaphore_limits_concurrency(self, kernel):
        import threading

        active = {"count": 0, "max": 0}
        lock = threading.Lock()

        def worker(sem):
            with sem:
                with lock:
                    active["count"] += 1
                    active["max"] = max(active["max"], active["count"])
                kernel.sleep(0.3)
                with lock:
                    active["count"] -= 1

        def main():
            sem = kernel.create_semaphore(2)
            procs = [kernel.spawn(worker, sem) for _ in range(6)]
            for p in procs:
                p.join()

        kernel.run_callable(main)
        assert active["max"] <= 2
