"""Kernel shutdown: blocked process threads must be reaped."""

import threading
import time

import pytest

from repro.errors import KernelError
from repro.kernel import RealKernel, VirtualKernel


class TestVirtualShutdown:
    def test_reaps_blocked_threads(self):
        kernel = VirtualKernel()

        def looper():
            while True:
                kernel.sleep(1.0)

        procs = [kernel.spawn(looper) for _ in range(5)]
        kernel.run(until=10.0)
        threads = [p._thread for p in procs]
        assert all(t.is_alive() for t in threads)
        kernel.shutdown()
        assert all(not t.is_alive() for t in threads)

    def test_idempotent(self):
        kernel = VirtualKernel()
        kernel.spawn(lambda: kernel.sleep(100.0))
        kernel.run(until=1.0)
        kernel.shutdown()
        kernel.shutdown()  # no error

    def test_shutdown_does_not_mark_crashes(self):
        kernel = VirtualKernel(strict=True)

        def looper():
            while True:
                kernel.sleep(1.0)

        kernel.spawn(looper)
        kernel.run(until=5.0)
        kernel.shutdown()
        assert kernel.crashes == []

    def test_processes_blocked_on_futures_are_reaped(self):
        kernel = VirtualKernel()

        def waiter():
            kernel.create_future().result()  # blocks forever

        proc = kernel.spawn(waiter)
        kernel.run(until=1.0)
        assert proc._thread.is_alive()
        kernel.shutdown()
        assert not proc._thread.is_alive()

    def test_cannot_shutdown_running_kernel(self):
        kernel = VirtualKernel()

        def main():
            kernel.shutdown()

        proc = kernel.spawn(main)
        kernel.run(main=proc)
        with pytest.raises(KernelError):
            proc.result()


class TestRealShutdown:
    def test_loopers_exit_on_next_sleep(self):
        kernel = RealKernel(time_scale=0.01)

        def looper():
            while True:
                kernel.sleep(1.0)

        procs = [kernel.spawn(looper) for _ in range(3)]
        time.sleep(0.05)
        kernel.shutdown()
        time.sleep(0.1)
        assert all(not p._thread.is_alive() for p in procs)

    def test_shutdown_not_a_crash(self):
        kernel = RealKernel(time_scale=0.01, strict=True)

        def looper():
            while True:
                kernel.sleep(1.0)

        kernel.spawn(looper)
        time.sleep(0.05)
        kernel.shutdown()
        assert kernel.crashes == []
