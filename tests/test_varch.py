"""Tests for virtual architectures: pool, node/cluster/site/domain,
manager assignment."""

import pytest

from repro.constraints import JSConstraints
from repro.errors import AllocationError, ArchitectureError
from repro.kernel import VirtualKernel
from repro.simnet import ConstantLoad, SimWorld, build_lan, make_host
from repro.sysmon import SysParam
from repro.varch import (
    Cluster,
    Domain,
    ManagerAssignment,
    MonitoredPool,
    Node,
    Site,
    assign_cluster_managers,
    assign_hierarchy,
)


def make_world(n_fast=10, n_slow=10, fast_load=0.0, slow_load=0.0):
    world = SimWorld(VirtualKernel(strict=True), seed=42)
    build_lan(
        world,
        fast_hosts=[make_host(f"ultra{i}", "Ultra10/440", i)
                    for i in range(n_fast)],
        slow_hosts=[make_host(f"sparc{i}", "SS4/110", 100 + i)
                    for i in range(n_slow)],
        load_models={
            **{f"ultra{i}": ConstantLoad(fast_load) for i in range(n_fast)},
            **{f"sparc{i}": ConstantLoad(slow_load) for i in range(n_slow)},
        },
    )
    return world


@pytest.fixture()
def pool():
    return MonitoredPool(make_world())


class TestMonitoredPool:
    def test_acquire_prefers_fast_idle_hosts(self, pool):
        hosts = pool.acquire(3)
        assert all(h.startswith("ultra") for h in hosts)

    def test_acquire_named(self, pool):
        assert pool.acquire(name="sparc3") == ["sparc3"]

    def test_acquire_named_unknown(self, pool):
        with pytest.raises(AllocationError):
            pool.acquire(name="cray1")

    def test_acquire_with_constraints(self, pool):
        constr = JSConstraints([(SysParam.PEAK_MFLOPS, "<", 10)])
        hosts = pool.acquire(2, constraints=constr)
        assert all(h.startswith("sparc") for h in hosts)

    def test_unsatisfiable_constraints(self, pool):
        constr = JSConstraints([(SysParam.PEAK_MFLOPS, ">", 10_000)])
        with pytest.raises(AllocationError):
            pool.acquire(1, constraints=constr)

    def test_loaded_hosts_deprioritized(self):
        # Fast hosts fully loaded -> pool should prefer idle slow hosts.
        world = make_world(fast_load=0.95, slow_load=0.0)
        pool = MonitoredPool(world)
        hosts = pool.acquire(3)
        assert all(h.startswith("sparc") for h in hosts)

    def test_failed_host_not_allocated(self, pool):
        pool.world.fail_host("ultra0")
        hosts = pool.acquire(9)
        assert "ultra0" not in hosts

    def test_refcounted_sharing(self, pool):
        pool.acquire(name="ultra1")
        pool.acquire(name="ultra1")
        assert pool.allocations["ultra1"] == 2
        pool.release("ultra1")
        assert pool.allocations["ultra1"] == 1
        pool.release("ultra1")
        assert "ultra1" not in pool.allocations

    def test_release_unallocated_rejected(self, pool):
        with pytest.raises(AllocationError):
            pool.release("ultra1")

    def test_exclude(self, pool):
        hosts = pool.acquire(3, exclude=["ultra0", "ultra1"])
        assert not {"ultra0", "ultra1"} & set(hosts)

    def test_shell_membership(self, pool):
        pool.remove_host("ultra0")
        assert "ultra0" not in pool.hosts
        with pytest.raises(AllocationError):
            pool.acquire(name="ultra0")
        pool.add_host("ultra0")
        assert pool.acquire(name="ultra0") == ["ultra0"]

    def test_min_load_policy(self):
        world = make_world(fast_load=0.5, slow_load=0.0)
        pool = MonitoredPool(world, policy="min-load")
        assert pool.acquire(1)[0].startswith("sparc")

    def test_default_constraints_merged(self):
        world = make_world()
        constr = JSConstraints([(SysParam.PEAK_MFLOPS, "<", 10)])
        pool = MonitoredPool(world, default_constraints=constr)
        assert all(h.startswith("sparc") for h in pool.acquire(3))


class TestNode:
    def test_node_any(self, pool):
        node = Node(pool=pool)
        assert node.hostname.startswith("ultra")

    def test_node_named(self, pool):
        node = Node("sparc2", pool=pool)
        assert node.hostname == "sparc2"

    def test_node_constrained(self, pool):
        constr = JSConstraints([(SysParam.NODE_NAME, "==", "sparc5")])
        assert Node(constr, pool=pool).hostname == "sparc5"

    def test_node_bad_arg(self, pool):
        with pytest.raises(ArchitectureError):
            Node(3.14, pool=pool)

    def test_implicit_hierarchy(self, pool):
        node = Node(pool=pool)
        cluster = node.get_cluster()
        assert cluster.nr_nodes() == 1
        site = node.get_site()
        domain = node.get_domain()
        assert site.nr_clusters() == 1
        assert domain.nr_sites() == 1
        # The triple is stable.
        assert node.get_cluster() is cluster
        assert node.get_site() is site
        assert node.get_domain() is domain

    def test_free_node(self, pool):
        node = Node("ultra3", pool=pool)
        node.free_node()
        assert node.freed
        assert "ultra3" not in pool.allocations
        with pytest.raises(ArchitectureError):
            node.get_cluster()

    def test_get_sys_param(self, pool):
        node = Node("sparc1", pool=pool)
        assert node.get_sys_param(SysParam.NODE_NAME) == "sparc1"
        assert node.getSysParam("IDLE") > 90.0

    def test_constr_hold(self, pool):
        node = Node("ultra2", pool=pool)
        ok = JSConstraints([(SysParam.IDLE, ">=", 50)])
        bad = JSConstraints([(SysParam.IDLE, "<", 1)])
        assert node.constrHold(ok)
        assert not node.constr_hold(bad)


class TestCluster:
    def test_bulk_allocation(self, pool):
        cluster = Cluster(5, pool=pool)
        assert cluster.nr_nodes() == 5
        hosts = cluster.hostnames()
        assert len(set(hosts)) == 5  # distinct

    def test_indexing(self, pool):
        cluster = Cluster(3, pool=pool)
        assert cluster.get_node(0).hostname == cluster.hostnames()[0]
        with pytest.raises(ArchitectureError):
            cluster.get_node(3)
        with pytest.raises(ArchitectureError):
            cluster.get_node(-1)

    def test_add_individual_nodes(self, pool):
        n1, n2 = Node("ultra1", pool=pool), Node("sparc1", pool=pool)
        cluster = Cluster(pool=pool)
        cluster.add_node(n1)
        cluster.add_node(n2)
        assert cluster.nr_nodes() == 2
        assert n1.get_cluster() is cluster

    def test_node_in_two_clusters_rejected(self, pool):
        node = Node("ultra1", pool=pool)
        c1, c2 = Cluster(pool=pool), Cluster(pool=pool)
        c1.add_node(node)
        with pytest.raises(ArchitectureError):
            c2.add_node(node)

    def test_duplicate_host_rejected(self, pool):
        cluster = Cluster(pool=pool)
        cluster.add_node(Node("ultra1", pool=pool))
        with pytest.raises(ArchitectureError):
            cluster.add_node(Node("ultra1", pool=pool))

    def test_adding_node_dissolves_implicit_cluster(self, pool):
        node = Node("ultra1", pool=pool)
        implicit = node.get_cluster()
        real = Cluster(pool=pool)
        real.add_node(node)
        assert node.get_cluster() is real
        assert implicit.freed

    def test_free_node_by_index_renumbers(self, pool):
        cluster = Cluster(4, pool=pool)
        survivor = cluster.get_node(2).hostname
        cluster.free_node(1)
        assert cluster.nr_nodes() == 3
        assert cluster.get_node(1).hostname == survivor

    def test_free_node_by_object(self, pool):
        cluster = Cluster(3, pool=pool)
        node = cluster.get_node(0)
        cluster.free_node(node)
        assert node.freed
        assert cluster.nr_nodes() == 2

    def test_free_cluster_releases_everything(self, pool):
        cluster = Cluster(4, pool=pool)
        hosts = cluster.hostnames()
        cluster.free_cluster()
        assert cluster.freed
        for host in hosts:
            assert host not in pool.allocations

    def test_aggregate_sys_param_is_average(self, pool):
        c = Cluster(pool=pool)
        c.add_node(Node("ultra0", pool=pool))   # 60 MFLOPS
        c.add_node(Node("sparc0", pool=pool))   # 5.5 MFLOPS
        assert c.get_sys_param(SysParam.PEAK_MFLOPS) == pytest.approx(
            (60 + 5.5) / 2
        )

    def test_operations_after_free_rejected(self, pool):
        cluster = Cluster(2, pool=pool)
        cluster.free_cluster()
        with pytest.raises(ArchitectureError):
            cluster.nr_nodes()
        with pytest.raises(ArchitectureError):
            cluster.free_cluster()


class TestSite:
    def test_paper_shape(self, pool):
        site = Site([2, 4, 5], pool=pool)
        assert site.nr_clusters() == 3
        assert site.nr_nodes() == 11
        assert [c.nr_nodes() for c in site.clusters()] == [2, 4, 5]
        assert len(set(site.hostnames())) == 11

    def test_get_node_two_ways(self, pool):
        site = Site([2, 3], pool=pool)
        assert site.get_node(1, 2) is site.get_cluster(1).get_node(2)

    def test_add_cluster(self, pool):
        c1, c2 = Cluster(2, pool=pool), Cluster(3, pool=pool)
        site = Site(pool=pool)
        site.add_cluster(c1)
        site.add_cluster(c2)
        assert site.nr_clusters() == 2
        assert c1.get_site() is site

    def test_cluster_in_two_sites_rejected(self, pool):
        cluster = Cluster(2, pool=pool)
        s1, s2 = Site(pool=pool), Site(pool=pool)
        s1.add_cluster(cluster)
        with pytest.raises(ArchitectureError):
            s2.add_cluster(cluster)

    def test_free_cluster_by_object_and_index(self, pool):
        site = Site([2, 2, 2], pool=pool)
        c0 = site.get_cluster(0)
        site.free_cluster(c0)
        assert site.nr_clusters() == 2
        site.free_cluster(0)
        assert site.nr_clusters() == 1

    def test_free_site(self, pool):
        site = Site([2, 2], pool=pool)
        hosts = site.hostnames()
        site.free_site()
        assert site.freed
        for host in hosts:
            assert host not in pool.allocations

    def test_bad_shape(self, pool):
        with pytest.raises(ArchitectureError):
            Site([2, 0], pool=pool)
        with pytest.raises(ArchitectureError):
            Site([], pool=pool)


class TestDomain:
    def test_paper_shape(self, pool):
        # The paper's example: {{1,3,5},{6,4}}.
        domain = Domain([[1, 3, 5], [6, 4]], pool=pool)
        assert domain.nr_sites() == 2
        assert domain.nr_clusters() == 5
        assert domain.nr_nodes() == 19
        assert domain.get_site(0).nr_nodes() == 9
        assert domain.get_site(1).nr_nodes() == 10
        assert len(set(domain.hostnames())) == 19

    def test_get_node_three_ways(self, pool):
        domain = Domain([[2, 2], [2]], pool=pool)
        via_chain = domain.get_site(0).get_cluster(1).get_node(0)
        assert domain.get_node(0, 1, 0) is via_chain

    def test_add_site(self, pool):
        s1 = Site([2], pool=pool)
        domain = Domain(pool=pool)
        domain.add_site(s1)
        assert domain.nr_sites() == 1
        assert s1.get_domain() is domain

    def test_free_parts(self, pool):
        domain = Domain([[2, 2], [2]], pool=pool)
        domain.free_node(0, 0, 0)
        assert domain.nr_nodes() == 5
        domain.free_cluster(0, 1)
        assert domain.nr_clusters() == 2
        domain.free_site(1)
        assert domain.nr_sites() == 1

    def test_free_domain(self, pool):
        domain = Domain([[2], [2]], pool=pool)
        domain.free_domain()
        assert domain.freed
        assert not pool.allocations

    def test_not_enough_hosts(self, pool):
        with pytest.raises(AllocationError):
            Domain([[10, 10], [10]], pool=pool)  # pool has 20 hosts


class TestManagers:
    def test_cluster_assignment(self):
        a = assign_cluster_managers(["a", "b", "c", "d"])
        assert a.manager == "a"
        assert a.backups == ["b", "c"]

    def test_successor_on_manager_failure(self):
        a = ManagerAssignment("a", ["b", "c"])
        b = a.successor()
        assert b.manager == "b"
        assert b.backups == ["c"]

    def test_no_backup_left(self):
        with pytest.raises(ArchitectureError):
            ManagerAssignment("a", []).successor()

    def test_without_non_manager(self):
        a = ManagerAssignment("a", ["b", "c"])
        assert a.without("b").backups == ["c"]
        assert a.without("b").manager == "a"

    def test_without_manager_is_takeover(self):
        a = ManagerAssignment("a", ["b"])
        assert a.without("a").manager == "b"

    def test_hierarchy_nesting_rule(self):
        layout = {
            "vienna": {"ultras": ["u0", "u1"], "sparcs": ["s0", "s1"]},
            "linz": {"lab": ["l0", "l1"]},
        }
        managers = assign_hierarchy(layout)
        # Site manager is a cluster manager; domain manager a site manager.
        assert managers.site_managers["vienna"] == "u0"
        assert managers.site_managers["linz"] == "l0"
        assert managers.domain_manager == "u0"
        assert managers.is_manager("u0")
        assert managers.is_manager("s0")
        assert not managers.is_manager("s1")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ArchitectureError):
            assign_cluster_managers([])
