"""End-to-end tests for the cluster telemetry plane: NAS heartbeat
piggyback, SLO alerts, the flight recorder, and the Prometheus view."""

import json

import pytest

from repro.agents.nas import NASConfig
from repro.apps.matmul import MatmulConfig, run_matmul
from repro.cluster import TestbedConfig, vienna_testbed
from repro.obs import (
    FlightRecorder,
    Tracer,
    events as ev,
    load_bundle,
    merge_snapshots,
    render_incident,
    render_prom,
    tracing,
)


def run_traced_matmul(config, n=64, nodes=4, kill=None, after=0.0):
    """Matmul on a fresh traced testbed; optionally kill a host mid-run
    and keep the world going ``after`` extra simulated seconds."""
    with tracing(Tracer()) as tracer:
        runtime = vienna_testbed(config)
        if kill is not None:
            runtime.world.schedule_failure(*kill)
        try:
            runtime.run_app(
                lambda: run_matmul(
                    MatmulConfig(n=n, nr_nodes=nodes, real_compute=False)
                )
            )
        except Exception:
            if kill is None:
                raise
        if after:
            runtime.world.kernel.run(until=runtime.world.now() + after)
    return tracer, runtime


class TestHeartbeatPiggyback:
    def test_deltas_reach_domain_manager(self):
        config = TestbedConfig(
            load_profile="dedicated", seed=5,
            nas=NASConfig(monitor_period=0.02, probe_period=5.0),
        )
        tracer, runtime = run_traced_matmul(config)
        cluster = runtime.nas.cluster_metrics()
        assert cluster is not None and cluster.ingested > 0
        # Every live host ships windows (empty deltas included).
        assert set(cluster.hosts()) == set(runtime.nas.known_hosts())
        merged = cluster.merged_snapshot()
        assert any(name.startswith("rpc.latency:")
                   for name in merged["histograms"])

    def test_aggregate_matches_per_host_registries(self):
        """What the NAS assembled from deltas equals the tracer's own
        per-host registries for everything that was shipped: the delta
        protocol loses nothing, bucket for bucket."""
        config = TestbedConfig(
            load_profile="dedicated", seed=5,
            nas=NASConfig(monitor_period=0.02, probe_period=5.0),
        )
        tracer, runtime = run_traced_matmul(config, after=0.2)
        cluster = runtime.nas.cluster_metrics()
        for host in cluster.hosts():
            shipped = cluster.host_snapshot(host)
            live = tracer.host_metrics[host].snapshot() \
                if host in tracer.host_metrics \
                else {"counters": {}, "histograms": {}}
            for name, hist in shipped["histograms"].items():
                # Shipped view is a prefix of the live view: a final
                # partial window may not have been collected yet.
                assert name in live["histograms"]
                assert hist["count"] <= live["histograms"][name]["count"]
            for name, value in shipped["counters"].items():
                assert value <= live["counters"][name] + 1e-9

    def test_telemetry_off_ships_nothing(self):
        config = TestbedConfig(
            load_profile="dedicated", seed=5,
            nas=NASConfig(monitor_period=0.02, telemetry=False),
        )
        tracer, runtime = run_traced_matmul(config)
        assert runtime.nas.cluster_metrics() is None
        assert runtime.nas.slo is None
        assert "nas.telemetry.windows" not in \
            tracer.metrics.snapshot()["counters"]


class TestPromExposition:
    def test_p99_matches_hand_merged_histograms(self):
        """Acceptance: the exposition's rpc latency histogram equals the
        merge of the per-host histograms done by hand, bucket for
        bucket — hence identical p99."""
        from repro.obs.metrics import Histogram

        config = TestbedConfig(
            load_profile="dedicated", seed=5,
            nas=NASConfig(monitor_period=0.02, probe_period=5.0),
        )
        tracer, runtime = run_traced_matmul(config)
        doc = runtime.metrics_document()
        assert doc["source"] == "nas"
        # Hand-merge the per-host snapshots the document is built from.
        by_hand = merge_snapshots(
            runtime.nas.cluster_metrics().host_snapshot(h)
            for h in runtime.nas.cluster_metrics().hosts())
        lat_names = [n for n in by_hand["histograms"]
                     if n.startswith("rpc.latency:")]
        assert lat_names
        for name in lat_names:
            want = by_hand["histograms"][name]
            got = doc["merged"]["histograms"][name]
            assert got["count"] == want["count"]
            assert got["p99"] == pytest.approx(want["p99"])
            assert {int(k): v for k, v in got["buckets"].items()} == \
                want["buckets"]
        # And the prom text carries the same bucket table, cumulative.
        text = render_prom(doc["merged"])
        name = lat_names[0]
        variant = name.split(":", 1)[1]
        want = by_hand["histograms"][name]
        prefix = f'repro_rpc_latency_bucket{{variant="{variant}",le='
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith(prefix)]
        cumulative, expect = 0, []
        for idx in sorted(want["buckets"]):
            cumulative += want["buckets"][idx]
            expect.append(cumulative)
        expect.append(want["count"])  # the +Inf bucket
        assert counts == expect
        assert f'repro_rpc_latency_count{{variant="{variant}"}} ' \
            f'{want["count"]}' in text

    def test_exposition_shape(self):
        from repro.obs.metrics import Metrics

        m = Metrics()
        m.count("rpc.calls:X", 3)
        m.observe("lat", 0.5)
        text = render_prom(m.snapshot())
        assert "# TYPE repro_rpc_calls_total counter" in text
        assert 'repro_rpc_calls_total{variant="X"} 3' in text
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")


class TestFlightRecorder:
    def _tracer_with_recorder(self, **kwargs):
        tracer = Tracer()
        recorder = FlightRecorder(tracer, **kwargs)
        recorder.attach()
        return tracer, recorder

    def test_trigger_event_captures_bundle(self):
        tracer, recorder = self._tracer_with_recorder()
        tracer.emit(ev.RPC_REQUEST, ts=0.5, host="a", kind="X")
        tracer.host_failed("a", 1.0)
        assert len(recorder.incidents) == 1
        bundle = recorder.incidents[0]
        assert bundle["trigger"] == ev.HOST_FAILED
        assert bundle["failed_hosts"] == ["a"]
        assert any(e["etype"] == ev.RPC_REQUEST for e in bundle["events"])
        # Capturing emitted a flight.record marker, which must not
        # re-trigger a capture.
        assert tracer.events_of(ev.FLIGHT_RECORD)
        assert len(recorder.incidents) == 1

    def test_debounce_per_trigger_type(self):
        tracer, recorder = self._tracer_with_recorder(min_interval=1.0)
        tracer.emit(ev.RPC_TIMEOUT, ts=1.0, host="a", kind="X")
        tracer.emit(ev.RPC_TIMEOUT, ts=1.2, host="a", kind="X")
        assert len(recorder.incidents) == 1
        assert recorder.suppressed == 1
        # A different trigger type is not debounced by the first.
        tracer.host_failed("a", 1.3)
        assert len(recorder.incidents) == 2
        # And past the interval the same type fires again.
        tracer.emit(ev.RPC_TIMEOUT, ts=2.5, host="b", kind="Y")
        assert len(recorder.incidents) == 3

    def test_bundle_written_and_rendered(self, tmp_path):
        tracer, recorder = self._tracer_with_recorder(
            incident_dir=str(tmp_path))
        tracer.observe("rpc.latency:X", 0.25, host="a")
        tracer.host_failed("a", 2.0)
        bundle = recorder.incidents[0]
        assert bundle["path"].endswith(".json")
        loaded = load_bundle(bundle["path"])
        assert loaded["incident_id"] == bundle["incident_id"]
        text = render_incident(loaded)
        assert bundle["incident_id"] in text
        assert "failed hosts: a" in text

    def test_detach_stops_captures(self):
        tracer, recorder = self._tracer_with_recorder()
        recorder.detach()
        tracer.host_failed("a", 1.0)
        assert not recorder.incidents


class TestSanitizerTriggers:
    def test_failure_hooks_fire_outside_lock(self):
        from repro.sanitizer import Sanitizer

        san = Sanitizer()
        seen = []
        san.failure_hooks.append(seen.append)
        san._emit("san-migrate-pending", "test finding", ("x.py", 1),
                  symbol="obj-1")
        assert len(seen) == 1
        assert seen[0].rule == "san-migrate-pending"

    def test_runtime_maps_findings_to_flight_triggers(self):
        from repro.obs.flight import (
            TRIGGER_DEADLOCK,
            TRIGGER_MIGRATE_PENDING,
        )
        from repro.sanitizer.core import Finding

        with tracing(Tracer()):
            runtime = vienna_testbed(
                TestbedConfig(load_profile="dedicated", seed=5)
            )
            for rule, trigger in (
                ("san-lock-deadlock", TRIGGER_DEADLOCK),
                ("san-migrate-pending", TRIGGER_MIGRATE_PENDING),
                ("san-unrelated", None),
            ):
                before = len(runtime.flight.incidents)
                runtime._on_sanitizer_finding(Finding(
                    rule=rule, severity="error", path="x.py", line=1,
                    col=0, message="m", symbol="s"))
                grew = len(runtime.flight.incidents) - before
                assert grew == (1 if trigger else 0)
            triggers = [b["trigger"] for b in runtime.flight.incidents]
            assert triggers == [TRIGGER_DEADLOCK, TRIGGER_MIGRATE_PENDING]


class TestHostKillAcceptance:
    def test_host_kill_during_matmul_yields_incident_bundle(self, tmp_path):
        """The issue's acceptance scenario: kill a worker mid-matmul;
        the incident bundle carries merged cluster metrics at bucket
        level, the dead host's force-closed spans marked host_failed,
        and an SLO alert."""
        config = TestbedConfig(
            load_profile="dedicated", seed=5,
            nas=NASConfig(
                monitor_period=0.02, probe_period=0.2,
                failure_timeout=0.1,
                # A threshold any real RPC breaches: guarantees an SLO
                # alert from the first ingested latency window.
                slo_rules=("rpc-p99: p99(rpc.latency:*) <= 1e-9 over 1",),
            ),
            incident_dir=str(tmp_path),
        )
        config.shell.rpc_timeout = 5.0
        tracer, runtime = run_traced_matmul(
            config, kill=("rachel", 0.06), after=1.0)

        assert "rachel" in tracer.failed_hosts
        bundles = [b for b in runtime.flight.incidents
                   if b["trigger"] == ev.HOST_FAILED]
        assert len(bundles) == 1
        bundle = bundles[0]
        assert bundle["failed_hosts"] == ["rachel"]

        # Merged cluster metrics, bucket-level.
        metrics = bundle["metrics"]
        assert metrics["source"] in ("nas", "tracer")
        assert metrics["merged"]["histograms"]
        some_hist = next(iter(metrics["merged"]["histograms"].values()))
        assert some_hist["buckets"]
        assert metrics["hosts"]

        # The dead host's spans were force-closed and marked.
        marked = [e for e in bundle["events"]
                  if e["host"] == "rachel"
                  and e["fields"].get("host_failed")]
        assert marked

        # An SLO alert fired before (or at) the capture...
        assert bundle["slo_alerts"]
        assert bundle["slo_alerts"][0]["rule"] == "rpc-p99"
        # ...and also produced its own trace event + incident.
        assert tracer.events_of(ev.SLO_ALERT)
        assert any(b["trigger"] == ev.SLO_ALERT
                   for b in runtime.flight.incidents)

        # Bundles landed on disk as loadable JSON.
        written = sorted(tmp_path.glob("*.json"))
        assert written
        loaded = load_bundle(str(written[0]))
        json.dumps(loaded)  # plain data
        assert render_incident(loaded)

    def test_shell_metrics_and_incidents_verbs(self):
        config = TestbedConfig(
            load_profile="dedicated", seed=5,
            nas=NASConfig(monitor_period=0.02, probe_period=0.2,
                          failure_timeout=0.1),
        )
        config.shell.rpc_timeout = 5.0
        tracer, runtime = run_traced_matmul(
            config, kill=("rachel", 0.06), after=1.0)
        prom = runtime.shell.metrics()
        assert "# TYPE repro_rpc_latency histogram" in prom
        doc = json.loads(runtime.shell.metrics(fmt="json"))
        assert doc["source"] in ("nas", "tracer")
        assert runtime.shell.incidents()
        kinds = [k for _, k, _ in runtime.shell.log]
        assert "metrics" in kinds and "incidents" in kinds
