"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_testbed_listing(self, capsys):
        assert main(["testbed"]) == 0
        out = capsys.readouterr().out
        assert "milena" in out
        assert "Ultra10/440" in out
        assert "manager" in out

    def test_grid_listing(self, capsys):
        assert main(["grid"]) == 0
        out = capsys.readouterr().out
        assert "vienna" in out
        assert "budapest" in out
        assert "domain manager" in out

    def test_matmul_real_verifies(self, capsys):
        assert main(["matmul", "--n", "64", "--nodes", "3",
                     "--real", "--profile", "dedicated"]) == 0
        out = capsys.readouterr().out
        assert "verified    : True" in out

    def test_matmul_nominal(self, capsys):
        assert main(["matmul", "--n", "500", "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "simulated seconds" in out

    def test_fig5_small_series(self, capsys):
        assert main(["fig5", "--n", "400", "--nodes", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "night speedup" in out
        assert "Figure 5" in out

    def test_bad_node_list_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig5", "--nodes", "0,99"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTraceCommand:
    def test_trace_matmul_writes_chrome_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "matmul", "--n", "64", "--nodes", "3",
                     "--profile", "dedicated",
                     "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and str(out_path) in out
        data = json.loads(out_path.read_text())
        events = data["traceEvents"]
        # RPC spans with microsecond timestamps and metadata records.
        assert any(e.get("ph") == "X" and e.get("cat") == "rpc"
                   for e in events)
        assert any(e.get("ph") == "M" for e in events)

    def test_trace_summary_sections(self, capsys):
        assert main(["trace", "matmul", "--n", "64", "--nodes", "3",
                     "--profile", "dedicated"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "simulated" in out
        assert "RPC" in out

    def test_trace_script_target(self, capsys, tmp_path):
        script = tmp_path / "tiny_app.py"
        script.write_text(
            "from repro import JSObj, JSRegistration, JSCodebase, "
            "TestbedConfig, jsclass, vienna_testbed\n"
            "@jsclass\n"
            "class Pinger:\n"
            "    def ping(self):\n"
            "        return 'pong'\n"
            "def app():\n"
            "    reg = JSRegistration()\n"
            "    cb = JSCodebase(); cb.add(Pinger); cb.load(['rachel'])\n"
            "    obj = JSObj('Pinger', 'rachel')\n"
            "    assert obj.sinvoke('ping') == 'pong'\n"
            "    obj.free(); reg.unregister()\n"
            "rt = vienna_testbed(TestbedConfig(load_profile='dedicated'))\n"
            "rt.run_app(app)\n"
        )
        assert main(["trace", str(script), "--no-summary"]) == 0
        assert capsys.readouterr().out == ""

    def test_trace_unknown_target_exits_2(self, capsys):
        assert main(["trace", "no/such/script.py"]) == 2
        assert "no such trace target" in capsys.readouterr().err


class TestSpansCommand:
    def test_spans_matmul_prints_tree_and_critical_path(self, capsys):
        assert main(["spans", "matmul", "--n", "32", "--nodes", "3",
                     "--profile", "dedicated",
                     "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "app" in out
        assert "rpc.request" in out
        assert "Critical path" in out
        assert "makespan" in out

    def test_spans_json_document(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "spans.json"
        assert main(["spans", "matmul", "--n", "32", "--nodes", "3",
                     "--profile", "dedicated", "--critical-path",
                     "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["span_count"] == len(doc["spans"])
        segs = doc["critical_path"]["segments"]
        total = sum(s["dur"] for s in segs)
        assert abs(total - doc["makespan"]) <= 0.01 * doc["makespan"]

    def test_spans_unknown_target_exits_2(self, capsys):
        assert main(["spans", "no/such/script.py"]) == 2
        assert "no such trace target" in capsys.readouterr().err


class TestTopCommand:
    def test_top_matmul_renders_frames(self, capsys):
        assert main(["top", "matmul", "--n", "32", "--nodes", "3",
                     "--profile", "dedicated", "--frames", "4"]) == 0
        out = capsys.readouterr().out
        assert "js-top" in out
        assert "in-flight" in out
        assert "milena" in out
        # NAS samples land inside the run (default --monitor-period),
        # so the idle column is populated.
        assert "%" in out

    def test_top_unknown_target_exits_2(self, capsys):
        assert main(["top", "no/such/script.py"]) == 2
        assert "no such trace target" in capsys.readouterr().err

class TestMetricsCommand:
    def test_metrics_prom_exposition(self, capsys):
        assert main(["metrics", "matmul", "--n", "64", "--nodes", "3",
                     "--profile", "dedicated", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_rpc_latency histogram" in out
        assert 'le="+Inf"' in out
        assert "repro_rpc_latency_count" in out

    def test_metrics_json_document(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(["metrics", "matmul", "--n", "64", "--nodes", "3",
                     "--profile", "dedicated",
                     "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["source"] in ("nas", "tracer")
        assert doc["merged"]["histograms"]
        assert doc["hosts"]

    def test_metrics_kill_writes_incident_bundles(self, capsys, tmp_path):
        import json

        assert main(["metrics", "matmul", "--n", "64", "--nodes", "4",
                     "--profile", "dedicated",
                     "--kill", "greta@0.1",
                     "--incident-dir", str(tmp_path), "--prom"]) == 0
        err = capsys.readouterr().err
        assert "incident" in err
        bundles = sorted(tmp_path.glob("*.json"))
        assert bundles
        doc = json.loads(bundles[0].read_text())
        assert doc["trigger"]
        assert doc["metrics"]["merged"]

    def test_metrics_bad_kill_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["metrics", "matmul", "--kill", "nonsense"])

    def test_metrics_unknown_target_exits_2(self, capsys):
        assert main(["metrics", "no/such/script.py"]) == 2
        assert "no such trace target" in capsys.readouterr().err


class TestIncidentsCommand:
    def _make_bundles(self, tmp_path):
        from repro.obs import FlightRecorder, Tracer
        from repro.obs import events as ev

        tracer = Tracer()
        recorder = FlightRecorder(tracer, incident_dir=str(tmp_path))
        recorder.attach()
        tracer.emit(ev.RPC_TIMEOUT, ts=1.0, host="a", kind="X")
        tracer.host_failed("b", 3.0)
        return sorted(tmp_path.glob("*.json"))

    def test_incidents_renders_directory(self, capsys, tmp_path):
        paths = self._make_bundles(tmp_path)
        assert len(paths) == 2
        assert main(["incidents", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "rpc.timeout" in out
        assert "host.failed" in out

    def test_incidents_renders_single_file(self, capsys, tmp_path):
        paths = self._make_bundles(tmp_path)
        assert main(["incidents", str(paths[0])]) == 0
        out = capsys.readouterr().out
        assert "incident" in out

    def test_incidents_missing_target_exits_2(self, capsys):
        assert main(["incidents", "/no/such/dir"]) == 2
        assert capsys.readouterr().err

    def test_incidents_empty_dir_exits_1(self, tmp_path):
        assert main(["incidents", str(tmp_path)]) == 1
