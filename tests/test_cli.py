"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_testbed_listing(self, capsys):
        assert main(["testbed"]) == 0
        out = capsys.readouterr().out
        assert "milena" in out
        assert "Ultra10/440" in out
        assert "manager" in out

    def test_grid_listing(self, capsys):
        assert main(["grid"]) == 0
        out = capsys.readouterr().out
        assert "vienna" in out
        assert "budapest" in out
        assert "domain manager" in out

    def test_matmul_real_verifies(self, capsys):
        assert main(["matmul", "--n", "64", "--nodes", "3",
                     "--real", "--profile", "dedicated"]) == 0
        out = capsys.readouterr().out
        assert "verified    : True" in out

    def test_matmul_nominal(self, capsys):
        assert main(["matmul", "--n", "500", "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "simulated seconds" in out

    def test_fig5_small_series(self, capsys):
        assert main(["fig5", "--n", "400", "--nodes", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "night speedup" in out
        assert "Figure 5" in out

    def test_bad_node_list_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig5", "--nodes", "0,99"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
