"""Each symlint checker finds exactly the findings seeded in its fixture.

Fixture files under ``tests/fixtures/symlint/`` carry ``# <<MARKER>>``
comments on the seeded lines; the tests resolve markers to line numbers
instead of hardcoding them.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Severity, analyze_paths, render_json
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures" / "symlint"


def marker_line(fixture: str, marker: str) -> int:
    text = (FIXTURES / fixture).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if f"<<{marker}>>" in line:
            return lineno
    raise AssertionError(f"marker {marker} not found in {fixture}")


def run(*fixtures: str):
    return analyze_paths([str(FIXTURES / f) for f in fixtures])


def by_rule(report, rule: str):
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# lock discipline
# ---------------------------------------------------------------------------


def test_unguarded_write_race_detected():
    report = run("seeded_race.py")
    races = by_rule(report, "unguarded-write")
    assert len(races) == 1
    finding = races[0]
    assert finding.severity is Severity.ERROR
    assert finding.path.endswith("seeded_race.py")
    assert finding.line == marker_line("seeded_race.py", "RACE")
    assert finding.symbol == "RacyCounter.count"
    assert "_lock" in finding.message


def test_unlocked_container_mutation_flagged():
    report = run("seeded_race.py")
    mutations = by_rule(report, "unlocked-mutation")
    assert len(mutations) == 1
    finding = mutations[0]
    assert finding.severity is Severity.WARNING
    assert finding.line == marker_line("seeded_race.py", "MUTATION")
    assert finding.symbol == "RacyCounter.log"


def test_guarded_code_produces_no_lock_findings():
    report = run("seeded_race.py")
    # guarded_increment (line with the locked `+= 1`) is never flagged
    flagged_lines = {f.line for f in report.findings}
    text = (FIXTURES / "seeded_race.py").read_text().splitlines()
    locked_line = next(
        i for i, line in enumerate(text, 1)
        if "with self._lock" in line
    )
    assert locked_line + 1 not in flagged_lines


def test_lock_order_cycle_detected():
    report = run("seeded_deadlock.py")
    cycles = by_rule(report, "lock-order-cycle")
    assert len(cycles) == 1
    finding = cycles[0]
    assert finding.severity is Severity.ERROR
    assert finding.path.endswith("seeded_deadlock.py")
    assert finding.line in {
        marker_line("seeded_deadlock.py", "ORDER-AB"),
        marker_line("seeded_deadlock.py", "ORDER-BA"),
    }
    assert "_lock_a" in finding.message and "_lock_b" in finding.message
    assert "deadlock" in finding.message
    # the consistent-order fixture part produced nothing else
    assert report.findings == cycles


# ---------------------------------------------------------------------------
# protocol completeness
# ---------------------------------------------------------------------------


@pytest.fixture()
def protocol_report():
    return run("messages.py", "seeded_protocol.py")


def test_unhandled_kind_reported_at_send_site(protocol_report):
    unhandled = by_rule(protocol_report, "unhandled-kind")
    assert [f.symbol for f in unhandled] == ["LOST"]
    finding = unhandled[0]
    assert finding.severity is Severity.ERROR
    assert finding.path.endswith("seeded_protocol.py")
    assert finding.line == marker_line("seeded_protocol.py", "LOST")


def test_dead_kind_reported_at_declaration(protocol_report):
    dead = by_rule(protocol_report, "dead-kind")
    assert [f.symbol for f in dead] == ["RETIRED"]
    finding = dead[0]
    assert finding.severity is Severity.WARNING
    assert finding.path.endswith("messages.py")
    assert finding.line == marker_line("messages.py", "DEAD")


def test_raw_kind_literal_flagged(protocol_report):
    raw = by_rule(protocol_report, "raw-kind-literal")
    assert [f.symbol for f in raw] == ["WORK"]
    finding = raw[0]
    assert finding.severity is Severity.ERROR
    assert finding.line == marker_line("seeded_protocol.py", "RAW")


def test_handled_and_sent_kinds_are_clean(protocol_report):
    symbols = {f.symbol for f in protocol_report.findings}
    assert "PING" not in symbols  # sent + registered
    assert "WORK" in symbols  # only via the raw literal finding


# ---------------------------------------------------------------------------
# migration / serialization safety
# ---------------------------------------------------------------------------


def test_unserializable_attrs_detected():
    report = run("seeded_unserializable.py")
    findings = by_rule(report, "unserializable-attr")
    assert {f.symbol for f in findings} == {
        "LeakyWorker._guard",
        "LeakyWorker.stream",
    }
    lines = {f.symbol: f.line for f in findings}
    assert lines["LeakyWorker._guard"] == marker_line(
        "seeded_unserializable.py", "LOCK"
    )
    assert lines["LeakyWorker.stream"] == marker_line(
        "seeded_unserializable.py", "GEN"
    )
    assert all(f.severity is Severity.ERROR for f in findings)
    # the guarded append in work() is not a lock-discipline finding
    assert report.findings == sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )


# ---------------------------------------------------------------------------
# blocking handlers
# ---------------------------------------------------------------------------


def test_blocking_calls_in_handlers_detected():
    report = run("seeded_blocking.py")
    sleeps = by_rule(report, "blocking-sleep-in-handler")
    rpcs = by_rule(report, "blocking-rpc-in-handler")
    assert len(sleeps) == 1 and len(rpcs) == 1
    assert sleeps[0].severity is Severity.ERROR
    assert sleeps[0].line == marker_line("seeded_blocking.py", "SLEEP")
    assert sleeps[0].symbol == "SlowAgent._h_throttle"
    assert rpcs[0].severity is Severity.WARNING
    assert rpcs[0].line == marker_line("seeded_blocking.py", "RPC")
    assert rpcs[0].symbol == "SlowAgent._h_relay"


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


def test_pragma_suppresses_seeded_race():
    report = run("suppressed.py")
    assert report.findings == []
    assert report.suppressed == 1


def test_rules_filter():
    report = analyze_paths(
        [str(FIXTURES)], rules={"lock-order-cycle"}
    )
    assert {f.rule for f in report.findings} == {"lock-order-cycle"}


# ---------------------------------------------------------------------------
# obs discipline
# ---------------------------------------------------------------------------


def test_tracer_call_under_lock_flagged():
    report = run("seeded_tracer_lock.py")
    findings = by_rule(report, "tracer-call-under-lock")
    assert {f.line for f in findings} == {
        marker_line("seeded_tracer_lock.py", "EMIT_UNDER_LOCK"),
        marker_line("seeded_tracer_lock.py", "COUNT_UNDER_LOCK"),
        marker_line("seeded_tracer_lock.py", "SPAN_UNDER_LOCK"),
        marker_line("seeded_tracer_lock.py", "END_SPAN_UNDER_LOCK"),
    }
    for finding in findings:
        assert finding.severity is Severity.WARNING
        assert "_lock" in finding.message


def test_tracer_outside_lock_and_nested_def_not_flagged():
    report = run("seeded_tracer_lock.py")
    flagged_symbols = {
        f.symbol for f in by_rule(report, "tracer-call-under-lock")
    }
    # store_good/span_good (after the with), deferred_ok (nested def) and
    # unrelated_observe_ok (histogram, not a tracer) must stay clean.
    assert flagged_symbols == {
        "store_bad", "count_bad", "span_bad", "end_span_bad",
    }


def test_registry_call_under_lock_flagged():
    report = run("seeded_registry_lock.py")
    findings = by_rule(report, "registry-call-under-lock")
    assert {f.line for f in findings} == {
        marker_line("seeded_registry_lock.py", "INGEST_UNDER_LOCK"),
        marker_line("seeded_registry_lock.py", "OBSERVE_UNDER_LOCK"),
        marker_line("seeded_registry_lock.py", "RECORD_UNDER_LOCK"),
        marker_line("seeded_registry_lock.py", "MERGE_UNDER_LOCK"),
    }
    for finding in findings:
        assert finding.severity is Severity.WARNING
        assert "_lock" in finding.message


def test_registry_rule_clean_twins_and_tracer_precedence():
    report = run("seeded_registry_lock.py")
    registry = by_rule(report, "registry-call-under-lock")
    # ingest_good (after the with), deferred_ok (nested def) and
    # unrelated_receiver_ok (no telemetry keyword) stay clean.
    assert {f.symbol for f in registry} == {
        "ingest_bad", "observe_bad", "record_bad", "merge_bad",
    }
    # tracer.metrics.count under lock is exactly one finding, owned by
    # the tracer rule.
    tracer = by_rule(report, "tracer-call-under-lock")
    assert [f.symbol for f in tracer] == ["tracer_rule_wins"]
    assert tracer[0].line == marker_line(
        "seeded_registry_lock.py", "TRACER_WINS"
    )
    assert len(report.findings) == 5


# ---------------------------------------------------------------------------
# retry discipline
# ---------------------------------------------------------------------------


def test_unbounded_retry_in_handler_helper_flagged():
    report = run("seeded_unbounded_retry.py")
    findings = by_rule(report, "unbounded-retry")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.severity is Severity.ERROR
    assert finding.line == marker_line(
        "seeded_unbounded_retry.py", "UNBOUNDED_RETRY"
    )
    assert finding.symbol == "Syncer._pull"
    # the message names the handler the loop is reachable from
    assert "Syncer._h_sync" in finding.message


def test_bounded_retry_twin_stays_clean():
    report = run("seeded_unbounded_retry.py")
    assert {f.symbol for f in by_rule(report, "unbounded-retry")} == {
        "Syncer._pull"
    }  # BoundedSyncer._pull (for-range + re-raise) produces nothing


# ---------------------------------------------------------------------------
# whole-directory run: the acceptance-criteria shape
# ---------------------------------------------------------------------------

EXPECTED_DIR_FINDINGS = {
    ("unguarded-write", "seeded_race.py", "RACE"),
    ("unlocked-mutation", "seeded_race.py", "MUTATION"),
    ("lock-order-cycle", "seeded_deadlock.py", None),
    ("dead-kind", "messages.py", "DEAD"),
    ("unhandled-kind", "seeded_protocol.py", "LOST"),
    ("raw-kind-literal", "seeded_protocol.py", "RAW"),
    ("unserializable-attr", "seeded_unserializable.py", "LOCK"),
    ("unserializable-attr", "seeded_unserializable.py", "GEN"),
    ("blocking-sleep-in-handler", "seeded_blocking.py", "SLEEP"),
    ("blocking-rpc-in-handler", "seeded_blocking.py", "RPC"),
    ("tracer-call-under-lock", "seeded_tracer_lock.py", "EMIT_UNDER_LOCK"),
    ("tracer-call-under-lock", "seeded_tracer_lock.py", "COUNT_UNDER_LOCK"),
    ("tracer-call-under-lock", "seeded_tracer_lock.py", "SPAN_UNDER_LOCK"),
    ("tracer-call-under-lock", "seeded_tracer_lock.py",
     "END_SPAN_UNDER_LOCK"),
    ("registry-call-under-lock", "seeded_registry_lock.py",
     "INGEST_UNDER_LOCK"),
    ("registry-call-under-lock", "seeded_registry_lock.py",
     "OBSERVE_UNDER_LOCK"),
    ("registry-call-under-lock", "seeded_registry_lock.py",
     "RECORD_UNDER_LOCK"),
    ("registry-call-under-lock", "seeded_registry_lock.py",
     "MERGE_UNDER_LOCK"),
    ("tracer-call-under-lock", "seeded_registry_lock.py", "TRACER_WINS"),
    ("rpc-under-lock", "seeded_rpc_under_lock.py", "RPC_UNDER_LOCK"),
    ("kernel-block-transitive", "seeded_kernel_block.py",
     "TRANSITIVE_SLEEP"),
    ("unbounded-retry", "seeded_unbounded_retry.py", "UNBOUNDED_RETRY"),
}


def test_fixture_directory_reports_every_seeded_finding():
    report = analyze_paths([str(FIXTURES)])
    got = {
        (f.rule, Path(f.path).name, f.line) for f in report.findings
    }
    for rule, fixture, marker in EXPECTED_DIR_FINDINGS:
        if marker is None:
            assert any(g[0] == rule and g[1] == fixture for g in got), \
                (rule, fixture)
        else:
            assert (rule, fixture, marker_line(fixture, marker)) in got
    assert len(report.findings) == len(EXPECTED_DIR_FINDINGS)
    assert report.suppressed == 1


def test_json_output_round_trips():
    report = analyze_paths([str(FIXTURES)])
    data = json.loads(render_json(report))
    assert data["version"] == 1
    assert data["summary"]["error"] == sum(
        1 for f in report.findings if f.severity is Severity.ERROR
    )
    assert len(data["findings"]) == len(report.findings)
    for entry in data["findings"]:
        assert set(entry) == {
            "rule", "severity", "path", "line", "col", "message", "symbol"
        }


def test_cli_lint_fixture_dir(capsys):
    code = cli_main(["lint", str(FIXTURES), "--format", "json"])
    assert code == 1  # seeded errors present
    data = json.loads(capsys.readouterr().out)
    assert data["summary"]["error"] > 0


def test_cli_lint_unknown_rule(capsys):
    assert cli_main(["lint", str(FIXTURES), "--rules", "nope"]) == 2


def test_cli_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("unguarded-write", "lock-order-cycle", "unhandled-kind",
                 "dead-kind", "raw-kind-literal", "unserializable-attr",
                 "blocking-sleep-in-handler", "tracer-call-under-lock",
                 "registry-call-under-lock", "unbounded-retry",
                 "parse-error"):
        assert rule in out
