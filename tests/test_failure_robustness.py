"""Failure robustness: protocols must degrade gracefully, never corrupt
tables, when nodes die at awkward moments."""

import pytest

from repro.agents.nas import NASConfig
from repro.cluster import TestbedConfig as TBConfig
from repro.cluster import vienna_testbed
from repro.core import JSCodebase, JSObj, JSRegistration
from repro.errors import (
    RemoteInvocationError,
    RPCTimeoutError,
)
from tests.conftest import Counter  # noqa: F401


def make_runtime():
    config = TBConfig(
        load_profile="dedicated",
        seed=29,
        nas=NASConfig(monitor_period=2.0, probe_period=2.0,
                      failure_timeout=1.0),
    )
    config.shell.rpc_timeout = 5.0
    return vienna_testbed(config)


class TestMigrationUnderFailure:
    def test_migrate_to_dead_target_fails_cleanly(self):
        rt = make_runtime()

        def app():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Counter)
            cb.load(["johanna", "greta"])
            obj = JSObj("Counter", "johanna")
            assert obj.sinvoke("incr", [4]) == 4
            rt.world.fail_host("greta")
            with pytest.raises(
                (RemoteInvocationError, RPCTimeoutError)
            ):
                obj.migrate("greta")
            # The object is still intact and usable at the source.
            assert obj.get_node() == "johanna"
            assert obj.sinvoke("get") == 4
            # And it can still migrate elsewhere afterwards.
            obj.migrate("theresa")
            assert obj.sinvoke("get") == 4
            reg.unregister()

        rt.run_app(app)

    def test_source_dies_during_migration_request(self):
        rt = make_runtime()

        def app():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Counter)
            cb.load(["johanna", "greta"])
            obj = JSObj("Counter", "johanna")
            rt.world.fail_host("johanna")
            with pytest.raises(RPCTimeoutError):
                obj.migrate("greta")
            reg.unregister()

        rt.run_app(app)


class TestOperationsOnDeadNodes:
    def test_codebase_load_to_dead_node_times_out(self):
        rt = make_runtime()

        def app():
            reg = JSRegistration()
            rt.world.fail_host("ida")
            cb = JSCodebase(); cb.add(Counter)
            with pytest.raises(RPCTimeoutError):
                cb.load("ida")
            reg.unregister()

        rt.run_app(app)

    def test_create_on_dead_node_times_out(self):
        rt = make_runtime()

        def app():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Counter); cb.load("franz")
            rt.world.fail_host("franz")
            with pytest.raises(RPCTimeoutError):
                JSObj("Counter", "franz")
            reg.unregister()

        rt.run_app(app)

    def test_unregister_with_dead_holder_still_completes(self):
        rt = make_runtime()

        def app():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Counter); cb.load("franz")
            JSObj("Counter", "franz")
            JSObj("Counter", "local")
            rt.world.fail_host("franz")
            reg.unregister()  # best-effort cleanup must not raise
            assert reg.app.closed

        rt.run_app(app)

    def test_allocation_skips_dead_nodes_after_release(self):
        rt = make_runtime()
        rt.world.kernel.run(until=3.0)
        rt.world.fail_host("rachel")
        rt.world.kernel.run(until=rt.world.now() + 15.0)

        def app():
            reg = JSRegistration()
            from repro.varch import Cluster

            cluster = Cluster(6)
            assert "rachel" not in cluster.hostnames()
            reg.unregister()

        rt.run_app(app)


class TestFailureDuringInFlightInvocations:
    def test_pending_async_handles_time_out(self):
        from tests.conftest import Spinner  # noqa: F401

        rt = make_runtime()

        def app():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Spinner); cb.load("johanna")
            obj = JSObj("Spinner", "johanna")
            handle = obj.ainvoke("spin", [420e6])  # 10 s
            rt.world.kernel.sleep(1.0)
            rt.world.fail_host("johanna")
            with pytest.raises((RPCTimeoutError, RemoteInvocationError)):
                handle.get_result(timeout=30.0)
            reg.unregister()

        rt.run_app(app)

    def test_other_nodes_unaffected_by_one_failure(self):
        rt = make_runtime()

        def app():
            reg = JSRegistration()
            cb = JSCodebase(); cb.add(Counter)
            cb.load(["johanna", "theresa"])
            healthy = JSObj("Counter", "theresa")
            doomed = JSObj("Counter", "johanna")
            doomed.sinvoke("incr")
            rt.world.fail_host("johanna")
            # The healthy object keeps working throughout.  Each call is
            # deliberately synchronous: the per-iteration reply is the
            # liveness probe while johanna is down.
            for i in range(1, 6):
                # symlint: disable-next-line=remote-invoke-in-loop
                assert healthy.sinvoke("incr") == i
            reg.unregister()

        rt.run_app(app)
